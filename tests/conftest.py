"""Shared fixtures: a tiny synthetic world reused across test modules.

Compute-dtype forcing
---------------------
Setting ``REPRO_COMPUTE_DTYPE=float32`` (the CI mixed-precision leg)
runs the whole suite on the float32 compute substrate
(:func:`repro.nn.set_compute_dtype`).  Tests that assert float64-grade
contracts — finite-difference gradient checks, 1e-10 fused-vs-stepwise
equivalences, cross-representation value comparisons tighter than
float32 resolution — carry the ``float64_only`` marker and are skipped
under forcing; everything else (shapes, argmax/bitwise same-dtype
determinism, serial-vs-parallel identity, behavioural contracts) must
pass at both precisions.  The ``float_tol`` fixture gives
dtype-appropriate tolerances to tests that run at either precision.

Backend forcing
---------------
Setting ``REPRO_BACKEND=workspace`` (the CI backend leg) runs the whole
suite through the workspace array backend
(:func:`repro.nn.set_backend`), which is bitwise-identical to the
reference backend — no test needs a skip marker for it.

Fault-plan forcing
------------------
Setting ``REPRO_FAULT_PLAN`` (the CI fault-injection leg, e.g.
``crash=0.08,dropout=0.08,straggler=0.05,corrupt=0.08,seed=1013``)
injects that deterministic fault schedule into every
:class:`~repro.federated.trainer.FederatedTrainer` that was not given
an explicit plan, so the degraded paths — retries, per-client drops,
upload rejection, partial aggregation — run under the whole federated
suite.  Tests that assert every-client-uploads behaviour (exact ledger
byte counts, full survivor sets) carry the ``fault_free`` marker and
are skipped under forcing; everything else must pass with faults
active.  See docs/ROBUSTNESS.md.

Exchange-codec forcing
----------------------
Setting ``REPRO_EXCHANGE_CODEC`` (the CI int8-exchange leg, e.g.
``int8``) routes every :class:`~repro.federated.trainer.FederatedTrainer`
that was not given an explicit codec through that wire codec
(:func:`repro.federated.set_exchange_codec`), so quantised broadcast /
upload payloads, error-feedback residuals and the payload byte
accounting run under the whole federated suite.  Tests that assert
lossless-float64 wire contracts — exact ledger byte counts, bitwise
sync-vs-isolated parities that only hold for the identity codec —
carry the ``identity_exchange`` marker and are skipped under forcing;
everything else must pass with quantisation active.  See
docs/PERFORMANCE.md.

Lazy-clients forcing
--------------------
Setting ``REPRO_LAZY_CLIENTS=1`` (the CI lazy-clients leg) runs every
:class:`~repro.federated.trainer.FederatedTrainer` that did not pin
``lazy_clients`` explicitly through the shard + model-arena substrate
(:func:`repro.federated.set_lazy_clients`), which is bit-identical to
eager clients — round histories, checkpoints, and ledgers match
exactly.  The few tests that *mutate* live-client internals (sabotage
via ``trainer.clients[i].x = ...``) carry the ``eager_clients`` marker
and are skipped under forcing: a lazy ``clients[i]`` read materialises
a fresh throwaway view, so in-place sabotage cannot reach the round
loop.  See docs/PERFORMANCE.md "Client scale".
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder, RecoveryModelConfig
from repro.data import TrajectoryDataset, geolife_like
from repro.spatial import grid_city

_FORCED_DTYPE = os.environ.get("REPRO_COMPUTE_DTYPE")
if _FORCED_DTYPE:
    nn.set_compute_dtype(_FORCED_DTYPE)

# Backend forcing (the CI workspace-backend leg): REPRO_BACKEND is
# honoured by repro.nn.backend itself at import, but re-asserting here
# keeps the forcing explicit and fails fast on an unknown name.
_FORCED_BACKEND = os.environ.get("REPRO_BACKEND")
if _FORCED_BACKEND:
    nn.set_backend(_FORCED_BACKEND)


_FORCED_FAULT_PLAN = os.environ.get("REPRO_FAULT_PLAN")

# Exchange-codec forcing (the CI int8-exchange leg): validate the name
# eagerly so a typo fails collection, not the first federated test.
_FORCED_CODEC = os.environ.get("REPRO_EXCHANGE_CODEC")
if _FORCED_CODEC:
    from repro.federated import set_exchange_codec

    set_exchange_codec(_FORCED_CODEC)

# Lazy-clients forcing (the CI lazy-clients leg): validate the value
# eagerly so a typo fails collection, not the first federated test.
_FORCED_LAZY = os.environ.get("REPRO_LAZY_CLIENTS")
if _FORCED_LAZY:
    from repro.federated import set_lazy_clients

    set_lazy_clients(_FORCED_LAZY)


def pytest_collection_modifyitems(config, items):
    if _FORCED_FAULT_PLAN:
        skip_faulty = pytest.mark.skip(
            reason=f"fault-free contract (REPRO_FAULT_PLAN forces "
                   f"{_FORCED_FAULT_PLAN!r}; see docs/ROBUSTNESS.md)")
        for item in items:
            if "fault_free" in item.keywords:
                item.add_marker(skip_faulty)
    if _FORCED_CODEC and _FORCED_CODEC != "identity":
        skip_lossy = pytest.mark.skip(
            reason=f"identity-exchange contract (REPRO_EXCHANGE_CODEC "
                   f"forces {_FORCED_CODEC!r}; see docs/PERFORMANCE.md)")
        for item in items:
            if "identity_exchange" in item.keywords:
                item.add_marker(skip_lossy)
    if _FORCED_LAZY:
        from repro.federated import get_lazy_clients

        if get_lazy_clients():
            skip_live = pytest.mark.skip(
                reason=f"live-client contract (REPRO_LAZY_CLIENTS forces "
                       f"{_FORCED_LAZY!r}; see docs/PERFORMANCE.md)")
            for item in items:
                if "eager_clients" in item.keywords:
                    item.add_marker(skip_live)
    if np.dtype(_FORCED_DTYPE or "float64") == np.dtype(np.float64):
        return
    skip = pytest.mark.skip(
        reason=f"float64-only contract (compute dtype forced to "
               f"{_FORCED_DTYPE}; see docs/PERFORMANCE.md)")
    for item in items:
        if "float64_only" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def compute_dtype():
    """The active compute dtype (honours REPRO_COMPUTE_DTYPE forcing)."""
    return nn.get_compute_dtype()


@pytest.fixture(scope="session")
def float_tol(compute_dtype):
    """Audited absolute tolerance for value comparisons at the active
    compute dtype: float64 keeps the historical 1e-10 contract; float32
    gets 1e-5 (~100 ULP at unit scale — log-softmax chains accumulate a
    few ULP per op, verified against the float64 reference)."""
    return 1e-10 if compute_dtype == np.dtype(np.float64) else 1e-5


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_network():
    """A small strongly-connected road network."""
    return grid_city(nx=5, ny=5, spacing=200.0, drop_prob=0.0,
                     rng=np.random.default_rng(3))


@pytest.fixture(scope="session")
def tiny_world():
    """A small synthetic dataset (network + trajectories)."""
    return geolife_like(num_drivers=6, trajectories_per_driver=4,
                        points_per_trajectory=17, seed=9)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_world):
    """Encoded recovery dataset at keep ratio 25%."""
    return TrajectoryDataset.from_matched(
        tiny_world.matched, tiny_world.grid, tiny_world.network, keep_ratio=0.25
    )


@pytest.fixture(scope="session")
def tiny_config(tiny_dataset, tiny_world):
    return RecoveryModelConfig(
        num_cells=tiny_dataset.num_cells,
        num_segments=tiny_dataset.num_segments,
        cell_emb_dim=8,
        seg_emb_dim=8,
        hidden_size=16,
        num_st_blocks=2,
        dropout=0.0,
        bbox=tiny_world.network.bounding_box(),
    )


@pytest.fixture(scope="session")
def tiny_mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


@pytest.fixture()
def fresh_rng():
    """Per-test generator (independent of the session fixture)."""
    return np.random.default_rng(777)
