"""Shared fixtures: a tiny synthetic world reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, RecoveryModelConfig
from repro.data import TrajectoryDataset, geolife_like
from repro.spatial import grid_city


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_network():
    """A small strongly-connected road network."""
    return grid_city(nx=5, ny=5, spacing=200.0, drop_prob=0.0,
                     rng=np.random.default_rng(3))


@pytest.fixture(scope="session")
def tiny_world():
    """A small synthetic dataset (network + trajectories)."""
    return geolife_like(num_drivers=6, trajectories_per_driver=4,
                        points_per_trajectory=17, seed=9)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_world):
    """Encoded recovery dataset at keep ratio 25%."""
    return TrajectoryDataset.from_matched(
        tiny_world.matched, tiny_world.grid, tiny_world.network, keep_ratio=0.25
    )


@pytest.fixture(scope="session")
def tiny_config(tiny_dataset, tiny_world):
    return RecoveryModelConfig(
        num_cells=tiny_dataset.num_cells,
        num_segments=tiny_dataset.num_segments,
        cell_emb_dim=8,
        seg_emb_dim=8,
        hidden_size=16,
        num_st_blocks=2,
        dropout=0.0,
        bbox=tiny_world.network.bounding_box(),
    )


@pytest.fixture(scope="session")
def tiny_mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


@pytest.fixture()
def fresh_rng():
    """Per-test generator (independent of the session fixture)."""
    return np.random.default_rng(777)
