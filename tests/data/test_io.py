"""Tests for trajectory I/O (Geolife/T-Drive parsers, CSV round trip)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    load_trajectories_csv,
    parse_geolife_plt,
    parse_tdrive_txt,
    save_trajectories_csv,
)
from repro.spatial import haversine_m

GEOLIFE_SAMPLE = """Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.906631,116.385564,0,492,39882.1,2009-03-10,02:24:00
39.906554,116.385625,0,492,39882.1,2009-03-10,02:25:00
39.906478,116.385683,0,492,39882.1,2009-03-10,02:26:00
bad,line,should,be,skipped,xx,yy
39.906400,116.385740,0,492,39882.1,2009-03-10,02:27:00
"""

TDRIVE_SAMPLE = """1131,2008-02-02 13:33:52,116.36421,39.88781
1131,2008-02-02 13:38:52,116.37481,39.88782
1131,2008-02-02 13:38:52,116.37481,39.88782
1131,2008-02-02 13:43:52,116.38541,39.88723
not,a,valid
1131,2008-02-02 13:48:52,116.39601,39.88664
"""


class TestGeolifeParser:
    def test_parses_points_and_skips_bad_lines(self):
        traj = parse_geolife_plt(GEOLIFE_SAMPLE, traj_id=7, driver_id=3)
        assert len(traj) == 4
        assert traj.traj_id == 7
        assert traj.driver_id == 3

    def test_timestamps_minute_spaced(self):
        traj = parse_geolife_plt(GEOLIFE_SAMPLE)
        deltas = np.diff([p.t for p in traj.points])
        np.testing.assert_allclose(deltas, 60.0)

    def test_planar_distances_match_haversine(self):
        traj = parse_geolife_plt(GEOLIFE_SAMPLE)
        p0, p1 = traj.points[0], traj.points[1]
        planar = np.hypot(p1.x - p0.x, p1.y - p0.y)
        true = haversine_m(39.906631, 116.385564, 39.906554, 116.385625)
        assert abs(planar - true) / true < 0.02

    def test_too_few_points_raise(self):
        header = "\n".join(["h"] * 6)
        with pytest.raises(ValueError):
            parse_geolife_plt(header + "\n39.9,116.4,0,0,0,2009-01-01,00:00:00\n")


class TestTDriveParser:
    def test_parses_and_dedupes_timestamps(self):
        traj = parse_tdrive_txt(TDRIVE_SAMPLE, traj_id=1)
        assert len(traj) == 4  # duplicate timestamp dropped
        assert traj.driver_id == 1131  # taxi id from the file

    def test_driver_override(self):
        traj = parse_tdrive_txt(TDRIVE_SAMPLE, driver_id=9)
        assert traj.driver_id == 9

    def test_monotone_time(self):
        traj = parse_tdrive_txt(TDRIVE_SAMPLE)
        times = [p.t for p in traj.points]
        assert times == sorted(times)
        assert len(set(times)) == len(times)


class TestCsvRoundTrip:
    def test_round_trip_preserves_everything(self, tiny_world, tmp_path):
        path = str(tmp_path / "trajs.csv")
        original = tiny_world.raw[:5]
        save_trajectories_csv(original, path)
        loaded = load_trajectories_csv(path)
        assert len(loaded) == 5
        for a, b in zip(original, loaded):
            assert a.traj_id == b.traj_id
            assert a.driver_id == b.driver_id
            assert len(a) == len(b)
            for pa, pb in zip(a.points, b.points):
                assert pa.x == pb.x and pa.y == pb.y and pa.t == pb.t

    def test_missing_columns_rejected(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as handle:
            handle.write("traj_id,x,y\n1,0,0\n")
        with pytest.raises(ValueError):
            load_trajectories_csv(path)

    def test_pipeline_from_csv_to_matching(self, tiny_world, tmp_path):
        """Loaded CSV trajectories feed straight into the HMM matcher."""
        from repro.mapmatch import HMMMapMatcher
        path = str(tmp_path / "trajs.csv")
        save_trajectories_csv(tiny_world.raw[:2], path)
        loaded = load_trajectories_csv(path)
        matcher = HMMMapMatcher(tiny_world.network)
        matched = matcher.match(loaded[0])
        assert len(matched) == len(loaded[0])
