"""Tests for the synthetic trajectory generator (Geolife/T-Drive stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset, geolife_like, tdrive_like


class TestGeneration:
    def test_counts(self):
        config = SyntheticConfig(num_drivers=4, trajectories_per_driver=3,
                                 points_per_trajectory=9)
        ds = generate_dataset(config, seed=0)
        assert len(ds.matched) == 12
        assert len(ds.raw) == 12
        assert len(ds.drivers) == 4

    def test_deterministic(self):
        config = SyntheticConfig(num_drivers=3, trajectories_per_driver=2,
                                 points_per_trajectory=9)
        a = generate_dataset(config, seed=5)
        b = generate_dataset(config, seed=5)
        assert a.matched[0].segment_ids() == b.matched[0].segment_ids()
        assert a.raw[0].points[0].x == b.raw[0].points[0].x

    def test_different_seeds_differ(self):
        config = SyntheticConfig(num_drivers=3, trajectories_per_driver=2,
                                 points_per_trajectory=9)
        a = generate_dataset(config, seed=1)
        b = generate_dataset(config, seed=2)
        assert a.raw[0].points[0].x != b.raw[0].points[0].x

    def test_ground_truth_is_on_network(self):
        ds = geolife_like(num_drivers=2, trajectories_per_driver=2,
                          points_per_trajectory=9, seed=1)
        for traj in ds.matched:
            for p in traj.points:
                assert 0 <= p.segment_id < ds.network.num_segments
                assert 0.0 <= p.ratio <= 1.0

    def test_tids_are_sequential(self):
        ds = geolife_like(num_drivers=2, trajectories_per_driver=1,
                          points_per_trajectory=9, seed=1)
        assert [p.tid for p in ds.matched[0].points] == list(range(9))

    def test_consecutive_points_reachable(self):
        """The walker moves along the network: consecutive matched points
        are within plausible route distance (speed * epsilon * slack)."""
        ds = geolife_like(num_drivers=2, trajectories_per_driver=2,
                          points_per_trajectory=9, seed=3)
        max_speed = 20.0
        for traj in ds.matched:
            for a, b in zip(traj.points, traj.points[1:]):
                d = ds.network.route_distance(a.segment_id, a.ratio,
                                              b.segment_id, b.ratio)
                assert d <= max_speed * traj.epsilon * 2.0

    def test_gps_noise_magnitude(self):
        config = SyntheticConfig(num_drivers=3, trajectories_per_driver=4,
                                 points_per_trajectory=17, gps_noise_std=10.0)
        ds = generate_dataset(config, seed=0)
        errors = []
        for raw, matched in zip(ds.raw, ds.matched):
            for rp, mp in zip(raw.points, matched.points):
                pos = mp.position(ds.network)
                errors.append(np.hypot(rp.x - pos.x, rp.y - pos.y))
        # Mean of |N(0,10)| 2-D error is ~12.5 m.
        assert 5.0 < np.mean(errors) < 25.0

    def test_grid_covers_all_raw_points(self):
        ds = tdrive_like(num_drivers=3, trajectories_per_driver=2,
                         points_per_trajectory=9, seed=2)
        from repro.spatial import Point
        for raw in ds.raw:
            for p in raw.points:
                assert 0 <= ds.grid.cell_id(Point(p.x, p.y)) < ds.grid.num_cells

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_drivers=0)
        with pytest.raises(ValueError):
            SyntheticConfig(points_per_trajectory=2)
        with pytest.raises(ValueError):
            SyntheticConfig(home_concentration=1.5)


class TestPresets:
    def test_tdrive_noisier_than_geolife(self):
        geo = geolife_like(num_drivers=2, trajectories_per_driver=1,
                           points_per_trajectory=9)
        td = tdrive_like(num_drivers=2, trajectories_per_driver=1,
                         points_per_trajectory=9)
        assert td.config.gps_noise_std > geo.config.gps_noise_std

    def test_names(self):
        assert geolife_like(num_drivers=2, trajectories_per_driver=1,
                            points_per_trajectory=9).name == "geolife_like"
        assert tdrive_like(num_drivers=2, trajectories_per_driver=1,
                           points_per_trajectory=9).name == "tdrive_like"

    def test_trajectories_of_driver(self, tiny_world):
        for driver in tiny_world.drivers:
            trajs = tiny_world.trajectories_of(driver.driver_id)
            assert all(t.driver_id == driver.driver_id for t in trajs)
