"""Property-based tests on dataset encoding invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TrajectoryDataset, downsample, encode_example, geolife_like

WORLD = geolife_like(num_drivers=4, trajectories_per_driver=3,
                     points_per_trajectory=17, seed=77)


@settings(max_examples=20, deadline=None)
@given(
    traj_index=st.integers(0, len(WORLD.matched) - 1),
    keep=st.sampled_from([0.125, 0.25, 0.5]),
)
def test_property_guide_within_observed_hull(traj_index, keep):
    """Guide positions are convex combinations of neighbouring observed
    positions, so they stay inside the observed bounding box."""
    example = encode_example(downsample(WORLD.matched[traj_index], keep),
                             WORLD.grid, WORLD.network)
    lo = example.obs_xy.min(axis=0) - 1e-9
    hi = example.obs_xy.max(axis=0) + 1e-9
    assert (example.guide_xy >= lo).all()
    assert (example.guide_xy <= hi).all()


@settings(max_examples=20, deadline=None)
@given(
    traj_index=st.integers(0, len(WORLD.matched) - 1),
    keep=st.sampled_from([0.125, 0.25]),
)
def test_property_encoding_consistency(traj_index, keep):
    """Observed flags, counts, and label ranges are mutually consistent."""
    traj = WORLD.matched[traj_index]
    example = encode_example(downsample(traj, keep), WORLD.grid, WORLD.network)
    assert example.observed_flags.sum() == example.num_observed
    assert example.full_length == len(traj)
    assert example.tgt_segments.min() >= 0
    assert example.tgt_segments.max() < WORLD.network.num_segments
    assert (example.tgt_ratios >= 0).all() and (example.tgt_ratios <= 1).all()
    assert example.observed_flags[0] and example.observed_flags[-1]


@settings(max_examples=15, deadline=None)
@given(
    batch_size=st.integers(1, 7),
    seed=st.integers(0, 1000),
)
def test_property_batching_partitions_dataset(batch_size, seed):
    """Shuffled batching covers every example exactly once."""
    dataset = TrajectoryDataset.from_matched(WORLD.matched, WORLD.grid,
                                             WORLD.network, 0.25)
    seen = []
    for batch in dataset.batches(batch_size, rng=np.random.default_rng(seed)):
        seen.extend(batch.traj_ids.tolist())
    assert sorted(seen) == sorted(e.traj_id for e in dataset.examples)
