"""Collation cache: padded batches are memoised per chunk key."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.data.dataset import _BATCH_CACHE_CAP


class TestCollationCache:
    def test_full_batch_is_cached(self, tiny_dataset):
        assert tiny_dataset.full_batch() is tiny_dataset.full_batch()

    def test_unshuffled_batches_are_cached_across_epochs(self, tiny_dataset):
        first = list(tiny_dataset.batches(4))
        second = list(tiny_dataset.batches(4))
        assert all(a is b for a, b in zip(first, second))

    def test_shuffled_batches_match_fresh_collation(self, tiny_dataset):
        """A shuffled epoch produces new chunk keys; contents must equal
        an uncached collation of the same chunks."""
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        shuffled = list(tiny_dataset.batches(4, rng=rng1))
        tiny_dataset.clear_batch_cache()
        recollated = list(tiny_dataset.batches(4, rng=rng2))
        assert len(shuffled) == len(recollated)
        for a, b in zip(shuffled, recollated):
            np.testing.assert_array_equal(a.obs_cells, b.obs_cells)
            np.testing.assert_array_equal(a.tgt_segments, b.tgt_segments)
            np.testing.assert_array_equal(a.guide_xy, b.guide_xy)
            np.testing.assert_array_equal(a.traj_ids, b.traj_ids)

    def test_clear_batch_cache_invalidates(self, tiny_dataset):
        cached = tiny_dataset.full_batch()
        tiny_dataset.clear_batch_cache()
        fresh = tiny_dataset.full_batch()
        assert cached is not fresh
        np.testing.assert_array_equal(cached.tgt_segments, fresh.tgt_segments)

    def test_split_datasets_start_with_empty_caches(self, tiny_dataset):
        tiny_dataset.full_batch()  # warm the parent cache
        train, valid, test = tiny_dataset.split(rng=np.random.default_rng(0))
        for part in (train, valid, test):
            assert len(part._batch_cache) == 0

    def test_cached_batches_are_read_only(self, tiny_dataset):
        batch = tiny_dataset.full_batch()
        with pytest.raises(ValueError):
            batch.tgt_segments[0, 0] = 99
        # The documented escape hatch: deepcopy yields writable arrays.
        clone = copy.deepcopy(batch)
        clone.tgt_segments[0, 0] = 99
        assert clone.tgt_segments[0, 0] == 99

    def test_cache_is_bounded(self, tiny_dataset):
        tiny_dataset.clear_batch_cache()
        rng = np.random.default_rng(0)
        for _ in range(200):  # many shuffled epochs: fresh keys each time
            list(tiny_dataset.batches(3, rng=rng))
        assert len(tiny_dataset._batch_cache) <= _BATCH_CACHE_CAP
        tiny_dataset.clear_batch_cache()
