"""Tests for federated data partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import partition_dataset, partition_trajectories


class TestByDriver:
    def test_covers_all_trajectories(self, tiny_world):
        shards = partition_dataset(tiny_world, 3)
        total = sum(len(s) for s in shards)
        assert total == len(tiny_world.matched)

    def test_no_overlap(self, tiny_world):
        shards = partition_dataset(tiny_world, 3)
        ids = [t.traj_id for s in shards for t in s]
        assert len(ids) == len(set(ids))

    def test_drivers_not_split_across_clients(self, tiny_world):
        shards = partition_dataset(tiny_world, 3)
        seen: dict[int, int] = {}
        for i, shard in enumerate(shards):
            for traj in shard:
                if traj.driver_id in seen:
                    assert seen[traj.driver_id] == i
                seen[traj.driver_id] = i

    def test_too_many_clients(self, tiny_world):
        with pytest.raises(ValueError):
            partition_dataset(tiny_world, len(tiny_world.drivers) + 1)

    def test_unknown_scheme(self, tiny_world):
        with pytest.raises(ValueError):
            partition_dataset(tiny_world, 2, scheme="dirichlet")

    def test_non_iid_regional_structure(self, tiny_world):
        """By-driver shards should concentrate spatially: the mean
        pairwise home distance within a client is below the global one."""
        shards = partition_dataset(tiny_world, 3)
        homes = {d.driver_id: tiny_world.network.nodes[d.home_node]
                 for d in tiny_world.drivers}

        def mean_pairwise(points):
            if len(points) < 2:
                return 0.0
            ds = [a.distance_to(b) for i, a in enumerate(points)
                  for b in points[i + 1:]]
            return float(np.mean(ds))

        all_homes = list(homes.values())
        within = []
        for shard in shards:
            shard_homes = list({homes[t.driver_id] for t in shard})
            if len(shard_homes) >= 2:
                within.append(mean_pairwise(shard_homes))
        if within:  # degenerate shards may have one driver
            assert np.mean(within) <= mean_pairwise(all_homes) + 1e-9


class TestIID:
    def test_even_sizes(self, tiny_world, fresh_rng):
        shards = partition_trajectories(tiny_world.matched, 4, fresh_rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_clients_than_trajectories(self, tiny_world, fresh_rng):
        with pytest.raises(ValueError):
            partition_trajectories(tiny_world.matched[:2], 5, fresh_rng)

    def test_iid_scheme_through_dataset_api(self, tiny_world):
        shards = partition_dataset(tiny_world, 4, scheme="iid")
        assert sum(len(s) for s in shards) == len(tiny_world.matched)
