"""Tests for keep-ratio downsampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    KEEP_RATIOS,
    MatchedPoint,
    MatchedTrajectory,
    downsample,
    downsample_random,
    stride_for_keep_ratio,
)


def make_traj(n):
    points = tuple(MatchedPoint(0, 0.1, t=float(i), tid=i) for i in range(n))
    return MatchedTrajectory(0, 0, epsilon=1.0, points=points)


class TestStride:
    def test_paper_keep_ratios(self):
        assert stride_for_keep_ratio(0.0625) == 16
        assert stride_for_keep_ratio(0.125) == 8
        assert stride_for_keep_ratio(0.25) == 4
        assert stride_for_keep_ratio(1.0) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            stride_for_keep_ratio(0.0)
        with pytest.raises(ValueError):
            stride_for_keep_ratio(1.5)

    def test_keep_ratios_constant(self):
        assert KEEP_RATIOS == (0.0625, 0.125, 0.25)


class TestDeterministic:
    def test_stride_indices(self):
        inc = downsample(make_traj(17), keep_ratio=0.25)
        assert inc.observed_indices == (0, 4, 8, 12, 16)

    def test_last_point_always_kept(self):
        inc = downsample(make_traj(18), keep_ratio=0.25)
        assert inc.observed_indices[-1] == 17

    def test_keep_all(self):
        inc = downsample(make_traj(5), keep_ratio=1.0)
        assert inc.observed_indices == (0, 1, 2, 3, 4)
        assert inc.missing_indices == []

    def test_six_points_restored_at_12_5_percent(self):
        """Paper: ~six-seven missing points between observations at 12.5%."""
        inc = downsample(make_traj(33), keep_ratio=0.125)
        gaps = np.diff(inc.observed_indices)
        assert set(gaps.tolist()) == {8}  # 7 missing between each pair


class TestRandom:
    def test_endpoints_always_kept(self, fresh_rng):
        inc = downsample_random(make_traj(20), 0.1, fresh_rng)
        assert inc.observed_indices[0] == 0
        assert inc.observed_indices[-1] == 19

    def test_keep_ratio_statistics(self):
        rng = np.random.default_rng(0)
        total_interior = 0
        kept = 0
        for _ in range(50):
            inc = downsample_random(make_traj(102), 0.3, rng)
            total_interior += 100
            kept += len(inc.observed_indices) - 2
        assert abs(kept / total_interior - 0.3) < 0.05

    def test_invalid_ratio(self, fresh_rng):
        with pytest.raises(ValueError):
            downsample_random(make_traj(5), 0.0, fresh_rng)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(3, 60), ratio=st.sampled_from(KEEP_RATIOS))
def test_property_downsample_invariants(n, ratio):
    """Strided downsampling keeps endpoints, stays sorted, and keeps
    roughly keep_ratio of the points."""
    inc = downsample(make_traj(n), ratio)
    idx = inc.observed_indices
    assert idx[0] == 0 and idx[-1] == n - 1
    assert list(idx) == sorted(set(idx))
    assert len(idx) <= max(2, int(np.ceil(n * ratio)) + 1)
