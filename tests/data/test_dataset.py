"""Tests for example encoding, splits, and batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TrajectoryDataset, downsample, encode_example


class TestEncoding:
    def test_shapes(self, tiny_world):
        traj = tiny_world.matched[0]
        inc = downsample(traj, 0.25)
        ex = encode_example(inc, tiny_world.grid, tiny_world.network)
        n_obs = len(inc.observed_indices)
        n_full = len(traj)
        assert ex.obs_cells.shape == (n_obs,)
        assert ex.obs_tids.shape == (n_obs,)
        assert ex.obs_xy.shape == (n_obs, 2)
        assert ex.tgt_segments.shape == (n_full,)
        assert ex.tgt_ratios.shape == (n_full,)
        assert ex.guide_xy.shape == (n_full, 2)
        assert ex.observed_flags.sum() == n_obs

    def test_guide_matches_observed_positions(self, tiny_world):
        traj = tiny_world.matched[1]
        inc = downsample(traj, 0.25)
        ex = encode_example(inc, tiny_world.grid, tiny_world.network)
        for k, idx in enumerate(inc.observed_indices):
            np.testing.assert_allclose(ex.guide_xy[idx], ex.obs_xy[k])

    def test_guide_interpolates_between_observations(self, tiny_world):
        traj = tiny_world.matched[2]
        inc = downsample(traj, 0.25)
        ex = encode_example(inc, tiny_world.grid, tiny_world.network)
        i0, i1 = inc.observed_indices[0], inc.observed_indices[1]
        mid = (i0 + i1) // 2
        expected = ex.obs_xy[0] + (ex.obs_xy[1] - ex.obs_xy[0]) * (
            (mid - i0) / (i1 - i0)
        )
        np.testing.assert_allclose(ex.guide_xy[mid], expected, atol=1e-9)

    def test_cells_in_vocabulary(self, tiny_dataset):
        for ex in tiny_dataset.examples:
            assert ex.obs_cells.max() < tiny_dataset.num_cells
            assert ex.obs_cells.min() >= 0


class TestSplit:
    def test_fractions(self, tiny_dataset, fresh_rng):
        train, valid, test = tiny_dataset.split((0.7, 0.2, 0.1), rng=fresh_rng)
        n = len(tiny_dataset)
        assert len(train) + len(valid) + len(test) == n
        assert len(train) == round(0.7 * n)

    def test_disjoint(self, tiny_dataset, fresh_rng):
        train, valid, test = tiny_dataset.split(rng=fresh_rng)
        ids = [e.traj_id for part in (train, valid, test) for e in part.examples]
        assert len(ids) == len(set(ids))

    def test_bad_fractions(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split((0.5, 0.5, 0.5))

    def test_split_preserves_world(self, tiny_dataset, fresh_rng):
        train, _, _ = tiny_dataset.split(rng=fresh_rng)
        assert train.network is tiny_dataset.network
        assert train.grid is tiny_dataset.grid
        assert train.keep_ratio == tiny_dataset.keep_ratio


class TestBatching:
    def test_batch_shapes_consistent(self, tiny_dataset):
        batch = next(tiny_dataset.batches(4))
        b = batch.size
        t = batch.steps
        assert batch.obs_cells.shape[0] == b
        assert batch.tgt_segments.shape == (b, t)
        assert batch.guide_xy.shape == (b, t, 2)
        assert batch.obs_feats.shape[2] == 2

    def test_all_examples_covered(self, tiny_dataset):
        seen = 0
        for batch in tiny_dataset.batches(5):
            seen += batch.size
        assert seen == len(tiny_dataset)

    def test_shuffling_changes_order(self, tiny_dataset):
        first = next(tiny_dataset.batches(len(tiny_dataset)))
        shuffled = next(tiny_dataset.batches(len(tiny_dataset),
                                             rng=np.random.default_rng(3)))
        assert not np.array_equal(first.traj_ids, shuffled.traj_ids)
        assert sorted(first.traj_ids) == sorted(shuffled.traj_ids)

    def test_padding_masks(self, tiny_world):
        # Mix two trajectory lengths to force padding.
        from repro.data.dataset import TrajectoryDataset as TDS
        short = [t for t in tiny_world.matched][:2]
        trimmed = []
        for t in short:
            from repro.data import MatchedTrajectory
            trimmed.append(MatchedTrajectory(t.traj_id, t.driver_id, t.epsilon,
                                             t.points[:9]))
        mixed = TDS.from_matched(trimmed + list(tiny_world.matched[2:4]),
                                 tiny_world.grid, tiny_world.network, 0.25)
        batch = mixed.full_batch()
        lengths = batch.tgt_mask.sum(axis=1)
        assert set(lengths.tolist()) == {9, 17}
        # Padded steps must be masked out everywhere.
        for i in range(batch.size):
            assert not batch.observed_flags[i, int(lengths[i]):].any()

    def test_full_batch_empty_raises(self, tiny_world):
        empty = TrajectoryDataset([], tiny_world.grid, tiny_world.network, 0.25)
        with pytest.raises(ValueError):
            empty.full_batch()

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            next(tiny_dataset.batches(0))

    def test_obs_feats_normalised(self, tiny_dataset):
        batch = tiny_dataset.full_batch()
        assert batch.obs_feats[batch.obs_mask].max() <= 1.0 + 1e-9
        assert batch.obs_feats[batch.obs_mask].min() >= 0.0
