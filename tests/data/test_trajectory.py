"""Tests for trajectory data types and their validation."""

from __future__ import annotations

import pytest

from repro.data import (
    IncompleteTrajectory,
    MatchedPoint,
    MatchedTrajectory,
    RawPoint,
    RawTrajectory,
)


def make_matched(n=8, epsilon=15.0):
    points = tuple(MatchedPoint(segment_id=i % 3, ratio=0.5, t=i * epsilon, tid=i)
                   for i in range(n))
    return MatchedTrajectory(traj_id=1, driver_id=2, epsilon=epsilon, points=points)


class TestRawTrajectory:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            RawTrajectory(0, 0, (RawPoint(0, 0, 0.0),))

    def test_rejects_non_increasing_time(self):
        pts = (RawPoint(0, 0, 0.0), RawPoint(1, 1, 0.0))
        with pytest.raises(ValueError):
            RawTrajectory(0, 0, pts)

    def test_len(self):
        pts = (RawPoint(0, 0, 0.0), RawPoint(1, 1, 1.0), RawPoint(2, 2, 2.0))
        assert len(RawTrajectory(0, 0, pts)) == 3


class TestMatchedTrajectory:
    def test_accessors(self):
        traj = make_matched(5)
        assert traj.segment_ids() == [0, 1, 2, 0, 1]
        assert traj.ratios() == [0.5] * 5
        assert len(traj) == 5

    def test_positive_epsilon_required(self):
        points = make_matched(3).points
        with pytest.raises(ValueError):
            MatchedTrajectory(0, 0, epsilon=0.0, points=points)

    def test_positions_on_network(self, tiny_world):
        traj = tiny_world.matched[0]
        positions = traj.positions(tiny_world.network)
        assert len(positions) == len(traj)


class TestIncompleteTrajectory:
    def test_valid_construction(self):
        traj = make_matched(9)
        inc = IncompleteTrajectory(traj, observed_indices=(0, 4, 8))
        assert inc.full_length == 9
        assert inc.missing_indices == [1, 2, 3, 5, 6, 7]
        assert len(inc.observed_points) == 3

    def test_observed_flags(self):
        traj = make_matched(5)
        inc = IncompleteTrajectory(traj, observed_indices=(0, 2, 4))
        assert inc.observed_flags() == [True, False, True, False, True]

    def test_endpoints_must_be_observed(self):
        traj = make_matched(6)
        with pytest.raises(ValueError):
            IncompleteTrajectory(traj, observed_indices=(1, 5))
        with pytest.raises(ValueError):
            IncompleteTrajectory(traj, observed_indices=(0, 3))

    def test_indices_strictly_increasing(self):
        traj = make_matched(6)
        with pytest.raises(ValueError):
            IncompleteTrajectory(traj, observed_indices=(0, 3, 3, 5))

    def test_needs_two_observations(self):
        traj = make_matched(4)
        with pytest.raises(ValueError):
            IncompleteTrajectory(traj, observed_indices=(0,))
