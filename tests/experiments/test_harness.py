"""Tests for the experiment harness (tiny-scale runs of each entry point)."""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    ExperimentContext,
    run_ablation,
    run_case_study,
    run_centralized_comparison,
    run_client_count_sweep,
    run_convergence,
    run_fault_tolerance_sweep,
    run_fraction_sweep,
    run_overall_comparison,
    run_sensitivity,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(SCALES["tiny"])


class TestContext:
    def test_dataset_cached(self, context):
        assert context.dataset("geolife") is context.dataset("geolife")

    def test_unknown_dataset(self, context):
        with pytest.raises(ValueError):
            context.dataset("porto")

    def test_federation_cached(self, context):
        a = context.federation("geolife", 0.25)
        b = context.federation("geolife", 0.25)
        assert a is b

    def test_model_config_matches_world(self, context):
        config = context.model_config("geolife")
        ds = context.dataset("geolife")
        assert config.num_segments == ds.network.num_segments
        assert config.num_cells == ds.grid.num_cells

    def test_run_method_returns_complete_run(self, context):
        run = context.run_method("FC+FL", "geolife", 0.25)
        assert run.method == "FC+FL"
        assert run.comm_bytes > 0
        assert run.elapsed_seconds > 0
        assert len(run.history) == SCALES["tiny"].rounds
        row = run.as_row()
        assert set(row) >= {"method", "dataset", "recall", "mae", "comm_mb"}

    def test_checkpoint_dirs_scoped_per_run(self, tmp_path):
        """Different methods must checkpoint into different
        subdirectories: their models disagree on parameter count, so a
        shared directory would hand one method another's weights on
        resume."""
        scale = dataclasses.replace(
            SCALES["tiny"], checkpoint_every=1, checkpoint_dir=str(tmp_path))
        scoped = ExperimentContext(scale)
        scoped.run_method("FC+FL", "geolife", 0.25)
        scoped.run_method("RNN+FL", "geolife", 0.25)
        subdirs = sorted(os.listdir(tmp_path))
        assert len(subdirs) == 2
        assert all(entry.startswith(("FC-FL", "RNN-FL")) for entry in subdirs)
        # Resuming re-resolves the same tagged subdirectory and must
        # reproduce the straight run exactly.
        resume = dataclasses.replace(
            SCALES["tiny"], resume_from=str(tmp_path))
        resumed = ExperimentContext(resume)
        straight = scoped.run_method("FC+FL", "geolife", 0.25)
        again = resumed.run_method("FC+FL", "geolife", 0.25)
        assert again.history == straight.history
        assert again.metrics == straight.metrics


class TestEntryPoints:
    def test_overall_comparison_row_count(self, context):
        runs = run_overall_comparison(context, datasets=("geolife",),
                                      keep_ratios=(0.25,),
                                      methods=("FC+FL", "LightTR"))
        assert len(runs) == 2

    def test_client_count_sweep(self, context):
        runs = run_client_count_sweep(context, datasets=("geolife",),
                                      client_counts=(2, 3), keep_ratio=0.25)
        assert [r.method for r in runs] == ["LightTR@2clients", "LightTR@3clients"]

    def test_fraction_sweep(self, context):
        runs = run_fraction_sweep(context, datasets=("geolife",),
                                  fractions=(0.5, 1.0), keep_ratio=0.25)
        assert len(runs) == 2

    def test_centralized_comparison_pairs(self, context):
        runs = run_centralized_comparison(context, datasets=("geolife",),
                                          keep_ratios=(0.25,))
        methods = [r.method for r in runs]
        assert "MTrajRec(centralized)" in methods
        assert "LightTR" in methods

    def test_ablation_variants(self, context):
        runs = run_ablation(context, datasets=("geolife",), keep_ratio=0.25)
        assert [r.method for r in runs] == ["w/o FL", "w/o LS", "w/o Meta",
                                            "LightTR"]

    def test_sensitivity_sweep(self, context):
        runs = run_sensitivity(context, datasets=("geolife",),
                               lambdas=(1.0,), thresholds=(0.4,), keep_ratio=0.25)
        assert [r.method for r in runs] == ["lambda=1.0", "lt=0.4"]

    def test_case_study_outputs(self, context):
        result = run_case_study(context, dataset_name="geolife",
                                keep_ratio=0.25, methods=("LightTR",))
        assert result["ground_truth"].ndim == 2
        assert result["observed"].shape[1] == 2
        assert "LightTR" in result["predictions"]
        assert len(result["predictions"]["LightTR"]) == len(result["ground_truth"])

    def test_convergence_curves(self, context):
        curves = run_convergence(context, dataset_name="geolife",
                                 keep_ratio=0.25, methods=("RNN+FL",), rounds=2)
        assert len(curves["RNN+FL"]) == 2

    @pytest.mark.fault_free  # the 0% leg asserts zero failed client-rounds
    def test_fault_tolerance_sweep_rows(self, context):
        rows = run_fault_tolerance_sweep(context, dataset_name="geolife",
                                         keep_ratio=0.25,
                                         dropout_rates=(0.0, 0.5))
        assert [row["dropout"] for row in rows] == [0.0, 0.5]
        assert rows[0]["failed_client_rounds"] == 0
        assert rows[1]["failed_client_rounds"] > 0
        assert all(row["rounds"] == SCALES["tiny"].rounds for row in rows)
        assert all(np.isfinite(row["accuracy"]) for row in rows)
