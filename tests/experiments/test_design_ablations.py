"""Tests for the design-choice ablation harness entry point."""

from __future__ import annotations

import pytest

from repro.experiments import SCALES, ExperimentContext, run_design_ablations


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(SCALES["tiny"])


class TestDesignAblations:
    def test_three_variants_per_dataset(self, context):
        runs = run_design_ablations(context, datasets=("geolife",),
                                    keep_ratio=0.25)
        assert [r.method for r in runs] == [
            "LightTR (full)", "fixed lambda", "no constraint mask",
        ]

    def test_mask_removal_degrades_recall(self, context):
        runs = run_design_ablations(context, datasets=("geolife",),
                                    keep_ratio=0.25)
        by_method = {r.method: r.metrics for r in runs}
        assert (by_method["LightTR (full)"].recall
                > by_method["no constraint mask"].recall)

    def test_identity_mask_builder_cached_separately(self, context):
        normal = context.mask_builder("geolife")
        identity = context.mask_builder("geolife", identity=True)
        assert normal is not identity
        assert identity.identity
        assert context.mask_builder("geolife", identity=True) is identity
