"""Tests for the ``python -m repro.experiments`` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_fig9_runs(self, capsys):
        assert main(["fig9", "--scale", "tiny", "--datasets", "geolife"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_table5_runs(self, capsys):
        assert main(["table5", "--scale", "tiny", "--datasets", "geolife"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "LightTR@" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--scale", "tiny", "--datasets", "geolife"]) == 0
        out = capsys.readouterr().out
        assert "FLOPs" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_experiment_list_covers_paper(self):
        assert set(EXPERIMENTS) == {"table4", "table5", "table6", "fig5",
                                    "fig6", "fig7", "fig8", "fig9", "fig10",
                                    "faults"}

    def test_faults_runs(self, capsys):
        assert main(["faults", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Fault tolerance" in out
        assert "dropout" in out
