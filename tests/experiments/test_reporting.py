"""Tests for the text reporting helpers."""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    MethodRun,
    ascii_scatter,
    format_comparison_table,
    format_curves,
    format_table,
)
from repro.metrics import MetricRow


def make_run(method="LightTR", dataset="geolife", keep=0.125):
    return MethodRun(
        method=method, dataset=dataset, keep_ratio=keep,
        metrics=MetricRow(recall=0.7, precision=0.68, mae=0.33, rmse=0.44,
                          accuracy=0.6),
        elapsed_seconds=1.5, comm_bytes=1_000_000,
    )


class TestTables:
    def test_format_table_contains_values(self):
        text = format_table([make_run()], title="Table IV")
        assert "Table IV" in text
        assert "LightTR" in text
        assert "0.700" in text
        assert "0.330" in text

    def test_comparison_table_groups_by_dataset(self):
        runs = [make_run(dataset="geolife"), make_run(dataset="tdrive")]
        text = format_comparison_table(runs, title="Overall")
        assert "[geolife]" in text and "[tdrive]" in text
        assert "R@12.5%" in text

    def test_missing_cells_dashed(self):
        runs = [make_run(keep=0.125), make_run(method="FC+FL", keep=0.25)]
        text = format_comparison_table(runs)
        assert "-" in text


class TestFigures:
    def test_ascii_scatter_markers(self):
        points = {
            "truth": np.array([[0.0, 0.0], [1.0, 1.0]]),
            "pred": np.array([[0.5, 0.5]]),
        }
        art = ascii_scatter(points, width=20, height=10, title="Case")
        assert "Case" in art
        assert "t" in art and "p" in art
        assert "t=truth" in art

    def test_format_curves_sparkline(self):
        text = format_curves({"LightTR": [0.1, 0.3, 0.5]}, title="Convergence")
        assert "Convergence" in text
        assert "first=0.100" in text
        assert "last=0.500" in text

    def test_empty_curve_handled(self):
        text = format_curves({"x": []})
        assert "no data" in text
