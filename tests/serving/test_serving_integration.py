"""Serving-layer call sites: recovery, evaluation, and fallbacks.

The packed decode engine must be invisible to downstream consumers:
identical recoveries and metric rows whether packed or padded, chunked
or not — and models without a decode program (FC) keep working through
the fallback path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.baselines.fc import FCRecoveryModel
from repro.core import LTEModel, TrajectoryRecovery
from repro.core.training import model_segment_accuracy
from repro.data import TrajectoryDataset
from repro.data.trajectory import MatchedTrajectory
from repro.metrics import evaluate_model
from repro.serving import decode_model


@pytest.fixture(scope="module")
def ragged_dataset(tiny_world):
    lengths = (5, 9, 17, 12, 7, 15, 4, 11)
    trimmed = [
        MatchedTrajectory(t.traj_id, t.driver_id, t.epsilon,
                          t.points[:lengths[i % len(lengths)]])
        for i, t in enumerate(tiny_world.matched)
    ]
    return TrajectoryDataset.from_matched(trimmed, tiny_world.grid,
                                          tiny_world.network, keep_ratio=0.25)


@pytest.fixture(scope="module")
def recovery(tiny_config, tiny_mask, ragged_dataset):
    """Recovery over a briefly-trained model: real decision margins, so
    different request batchings agree exactly instead of riding 1-ULP
    argmax ties of random weights."""
    from repro.core.training import LocalTrainer, TrainingConfig

    model = LTEModel(tiny_config, np.random.default_rng(0))
    trainer = LocalTrainer(model, tiny_mask, TrainingConfig(epochs=2, batch_size=8),
                           np.random.default_rng(1))
    trainer.train_epochs(ragged_dataset)
    return TrajectoryRecovery(model, tiny_mask)


class TestRecoverySite:
    def test_predict_batch_packed_equals_padded(self, recovery, ragged_dataset):
        batch = ragged_dataset.full_batch()
        packed = recovery.predict_batch(batch)
        with nn.use_packed_decode(False):
            padded = recovery.predict_batch(batch)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(packed[0][valid], padded[0][valid])
        np.testing.assert_array_equal(packed[1][valid], padded[1][valid])

    def test_recover_dataset_chunked_equals_unchunked(self, recovery,
                                                      ragged_dataset):
        """decode_batch chunks the *decode* inside one collated batch
        (never the collation, which would change the step-feature
        geometry), so it is a pure memory knob: results are identical."""
        whole = recovery.recover_dataset(ragged_dataset)
        chunked = recovery.recover_dataset(ragged_dataset, decode_batch=3)
        assert len(whole) == len(chunked) == len(ragged_dataset)
        for a, b in zip(whole, chunked):
            assert a.traj_id == b.traj_id
            assert a.recovered_indices == b.recovered_indices
            assert [p.segment_id for p in a.trajectory.points] == \
                [p.segment_id for p in b.trajectory.points]
            assert [p.ratio for p in a.trajectory.points] == \
                [p.ratio for p in b.trajectory.points]

    def test_recover_dataset_reuses_collation_cache(self, recovery,
                                                    ragged_dataset):
        """Repeated recovery passes must hit the memoised full-batch
        collation, not re-pad: a second pass adds no cache entries."""
        ragged_dataset.clear_batch_cache()
        recovery.recover_dataset(ragged_dataset, decode_batch=3)
        cached = set(ragged_dataset._batch_cache)
        assert cached, "first pass must populate the collation cache"
        recovery.recover_dataset(ragged_dataset, decode_batch=3)
        recovery.recover_dataset(ragged_dataset)
        assert set(ragged_dataset._batch_cache) == cached

    def test_recover_empty_dataset(self, recovery, ragged_dataset):
        empty = TrajectoryDataset([], ragged_dataset.grid,
                                  ragged_dataset.network,
                                  ragged_dataset.keep_ratio)
        assert recovery.recover_dataset(empty, decode_batch=4) == []


class TestEvaluationSite:
    def test_evaluate_model_packed_equals_padded(self, tiny_config, tiny_mask,
                                                 ragged_dataset):
        model = LTEModel(tiny_config, np.random.default_rng(3))
        packed = evaluate_model(model, tiny_mask, ragged_dataset)
        with nn.use_packed_decode(False):
            padded = evaluate_model(model, tiny_mask, ragged_dataset)
        assert packed == padded

    def test_evaluate_model_decode_batch_is_neutral(self, tiny_config,
                                                    tiny_mask, ragged_dataset):
        model = LTEModel(tiny_config, np.random.default_rng(3))
        whole = evaluate_model(model, tiny_mask, ragged_dataset)
        chunked = evaluate_model(model, tiny_mask, ragged_dataset,
                                 decode_batch=2)
        assert whole == chunked

    def test_segment_accuracy_packed_equals_padded(self, tiny_config, tiny_mask,
                                                   ragged_dataset):
        model = LTEModel(tiny_config, np.random.default_rng(4))
        packed = model_segment_accuracy(model, tiny_mask, ragged_dataset)
        with nn.use_packed_decode(False):
            padded = model_segment_accuracy(model, tiny_mask, ragged_dataset)
        assert packed == padded


class TestFallbacks:
    def test_fc_has_no_program_and_falls_back(self, tiny_config, tiny_mask,
                                              ragged_dataset):
        model = FCRecoveryModel(tiny_config, np.random.default_rng(5))
        model.eval()
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        assert model.decode_program(batch, log_mask) is None
        with nn.no_grad():
            engine = decode_model(model, batch, log_mask)
            direct = model(batch, log_mask, teacher_forcing=False)
        np.testing.assert_array_equal(engine.segments, direct.segments)
        np.testing.assert_array_equal(engine.ratios.data, direct.ratios.data)

    def test_grad_mode_keeps_tape_decode(self, tiny_config, tiny_mask,
                                         ragged_dataset):
        """With gradients enabled the packed path must not engage — the
        tape decode is the only differentiable one."""
        model = LTEModel(tiny_config, np.random.default_rng(6))
        batch = ragged_dataset.full_batch()
        with nn.use_sparse_masks(False):
            log_mask = tiny_mask.build_for(batch, model)
        output = model(batch, log_mask, teacher_forcing=False)
        assert output.log_probs.requires_grad
        output.log_probs.sum().backward()  # must not raise
