"""Ragged-length decode equivalence: the packed engine vs every reference.

The serving contract (see ``repro/serving/engine.py``): packed decode
is bit-identical to the padded full-length decode on every valid
timestep under *any* packing — including single-row working sets,
which since the self-ballast upgrade run the same GEMM kernels as
packed ones (the older 1e-10/argmax assertions below remain as the
weaker historical contract; equality satisfies them).  Covered matrix:
uneven lengths, empty-radius fallback mask rows, sparse/dense masks,
fused kernels on/off, float32 exchange mode, all autoregressive
models, and the decode_batch chunking knob.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.baselines.mtrajrec import MTrajRecModel
from repro.baselines.rnn import RNNRecoveryModel
from repro.baselines.rntrajrec import RNTrajRecModel
from repro.core import ConstraintMaskBuilder, LTEModel
from repro.data import TrajectoryDataset
from repro.data.trajectory import MatchedTrajectory
from repro.serving import DecodeSession, GreedyEmission, decode_model

#: Uneven trajectory lengths, with a strictly longest one so the packed
#: working set eventually compacts all the way down to a single row
#: (exercising the single-row BLAS guard).
RAGGED_LENGTHS = (5, 9, 17, 12, 7, 15, 4, 11)


@pytest.fixture(scope="module")
def ragged_dataset(tiny_world):
    trimmed = []
    for i, traj in enumerate(tiny_world.matched):
        n = RAGGED_LENGTHS[i % len(RAGGED_LENGTHS)]
        trimmed.append(MatchedTrajectory(traj.traj_id, traj.driver_id,
                                         traj.epsilon, traj.points[:n]))
    return TrajectoryDataset.from_matched(trimmed, tiny_world.grid,
                                          tiny_world.network, keep_ratio=0.25)


@pytest.fixture(scope="module")
def lte(tiny_config, ragged_dataset, tiny_mask):
    """A briefly-trained model: real decision margins, so argmax
    contracts are exercised away from degenerate 1-ULP ties."""
    from repro.core.training import LocalTrainer, TrainingConfig

    model = LTEModel(tiny_config, np.random.default_rng(0))
    trainer = LocalTrainer(model, tiny_mask, TrainingConfig(epochs=2, batch_size=8),
                           np.random.default_rng(1))
    trainer.train_epochs(ragged_dataset)
    model.eval()
    return model


def _decode(model, batch, log_mask, *, packed, decode_batch=None):
    with nn.use_packed_decode(packed), nn.no_grad():
        return decode_model(model, batch, log_mask, decode_batch=decode_batch)


def _assert_valid_steps_bitwise(packed, padded, batch):
    valid = batch.tgt_mask
    np.testing.assert_array_equal(packed.segments[valid],
                                  padded.segments[valid])
    np.testing.assert_array_equal(packed.ratios.data[valid],
                                  padded.ratios.data[valid])
    np.testing.assert_array_equal(packed.log_probs.data[valid],
                                  padded.log_probs.data[valid])


class TestPackedVsPadded:
    @pytest.mark.parametrize("sparse", [True, False])
    def test_lte_bitwise_on_valid_steps(self, lte, ragged_dataset, tiny_mask,
                                        sparse):
        batch = ragged_dataset.full_batch()
        with nn.use_sparse_masks(sparse):
            log_mask = tiny_mask.build_for(batch, lte)
        packed = _decode(lte, batch, log_mask, packed=True)
        padded = _decode(lte, batch, log_mask, packed=False)
        _assert_valid_steps_bitwise(packed, padded, batch)

    def test_padding_steps_are_zero_filled(self, lte, ragged_dataset, tiny_mask):
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        packed = _decode(lte, batch, log_mask, packed=True)
        padding = ~batch.tgt_mask
        assert padding.any(), "the ragged fixture must produce padding"
        assert (packed.segments[padding] == 0).all()
        assert (packed.ratios.data[padding] == 0.0).all()
        assert (packed.log_probs.data[padding] == 0.0).all()

    @pytest.mark.parametrize("model_cls", [RNNRecoveryModel, MTrajRecModel,
                                           RNTrajRecModel])
    def test_baselines_bitwise_on_valid_steps(self, model_cls, tiny_config,
                                              tiny_world, ragged_dataset,
                                              tiny_mask):
        if model_cls is RNTrajRecModel:
            model = model_cls(tiny_config, np.random.default_rng(1),
                              tiny_world.network)
        else:
            model = model_cls(tiny_config, np.random.default_rng(1))
        model.eval()
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build(batch)  # baselines are dense-mask models
        packed = _decode(model, batch, log_mask, packed=True)
        program = model.decode_program(batch, log_mask)
        with nn.no_grad():
            padded = DecodeSession().run(program, batch)  # full lengths
        valid = batch.tgt_mask
        np.testing.assert_array_equal(packed.segments[valid],
                                      padded.segments[valid])
        np.testing.assert_array_equal(packed.ratios.data[valid],
                                      padded.ratios[valid])
        np.testing.assert_array_equal(packed.log_probs.data[valid],
                                      padded.log_probs[valid])

    @pytest.mark.parametrize("model_cls", [RNNRecoveryModel, MTrajRecModel,
                                           RNTrajRecModel])
    def test_baselines_match_tape_reference(self, model_cls, tiny_config,
                                            tiny_world, ragged_dataset,
                                            tiny_mask, float_tol):
        """The engine vs the per-step tape loop: same fusion-style
        contract as the LTE kernels — argmax segments identical, values
        to 1e-10 (the engine's packing-stable single-output heads agree
        with the tape's BLAS mat-vecs to ~1 ULP, not bit-for-bit)."""
        if model_cls is RNTrajRecModel:
            model = model_cls(tiny_config, np.random.default_rng(1),
                              tiny_world.network)
        else:
            model = model_cls(tiny_config, np.random.default_rng(1))
        model.eval()
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        packed = _decode(model, batch, log_mask, packed=True)
        tape = _decode(model, batch, log_mask, packed=False)  # tape loop
        valid = batch.tgt_mask
        np.testing.assert_array_equal(packed.segments[valid],
                                      tape.segments[valid])
        tol = max(float_tol, 1e-10)  # 1e-10 contract at float64 compute
        np.testing.assert_allclose(packed.log_probs.data[valid],
                                   tape.log_probs.data[valid], atol=tol)
        np.testing.assert_allclose(packed.ratios.data[valid],
                                   tape.ratios.data[valid], atol=tol)

    def test_empty_radius_fallback_rows(self, lte, ragged_dataset, tiny_mask):
        """Empty mask rows (no segment in radius) take the sparse
        uniform-fallback leg; they must survive packing bit-exactly and
        agree with the equivalent dense all-floor rows."""
        batch = ragged_dataset.full_batch()
        sparse_mask = tiny_mask.build_sparse(batch)
        emptied = np.arange(0, sparse_mask.n_rows, 7)
        lens = np.diff(sparse_mask.indptr).copy()
        keep = np.ones(sparse_mask.nnz, dtype=bool)
        for r in emptied:
            keep[sparse_mask.indptr[r]:sparse_mask.indptr[r + 1]] = False
            lens[r] = 0
        indptr = np.zeros(sparse_mask.n_rows + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        from repro.core.mask import SparseConstraintMask
        doctored = SparseConstraintMask(
            sparse_mask.shape, indptr, sparse_mask.indices[keep],
            sparse_mask.log_values[keep], floor=sparse_mask.floor)
        assert (np.diff(doctored.indptr) == 0).any()
        packed = _decode(lte, batch, doctored, packed=True)
        padded = _decode(lte, batch, doctored, packed=False)
        _assert_valid_steps_bitwise(packed, padded, batch)
        dense = _decode(lte, batch, doctored.to_dense(), packed=True)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(packed.segments[valid],
                                      dense.segments[valid])

    def test_float32_exchange_mode(self, lte, ragged_dataset, tiny_mask):
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        with nn.use_default_dtype("float32"):
            packed = _decode(lte, batch, log_mask, packed=True)
            padded = _decode(lte, batch, log_mask, packed=False)
        _assert_valid_steps_bitwise(packed, padded, batch)

    def test_fused_off_falls_back_to_reference(self, lte, ragged_dataset,
                                               tiny_mask, float_tol):
        """Without fused kernels there is no LTE decode program; the
        serving layer must fall back to the per-step tape decode and
        still agree with the packed path at the fusion tolerance."""
        batch = ragged_dataset.full_batch()
        with nn.use_sparse_masks(False):
            log_mask = tiny_mask.build_for(batch, lte)
        packed = _decode(lte, batch, log_mask, packed=True)
        with nn.use_fused_kernels(False):
            assert lte.decode_program(batch, log_mask) is None
            reference = _decode(lte, batch, log_mask, packed=True)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(packed.segments[valid],
                                      reference.segments[valid])
        tol = max(float_tol, 1e-10)  # 1e-10 contract at float64 compute
        np.testing.assert_allclose(packed.log_probs.data[valid],
                                   reference.log_probs.data[valid], atol=tol)
        np.testing.assert_allclose(packed.ratios.data[valid],
                                   reference.ratios.data[valid], atol=tol)


class TestPerTrajectoryProperty:
    def test_per_trajectory_working_sets_match_packed(self, lte, ragged_dataset,
                                                      tiny_mask):
        """Per-trajectory decode in the serving sense — every row
        stepped in its own working set (``decode_batch=1``) over the
        same request batch — holds the argmax contract against the
        packed whole-set decode, and values to 1e-10 (a 1-row working
        set runs different BLAS kernels, so bitwise equality is not
        promised there)."""
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        packed = _decode(lte, batch, log_mask, packed=True)
        solo = _decode(lte, batch, log_mask, packed=True, decode_batch=1)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(packed.segments[valid],
                                      solo.segments[valid])
        np.testing.assert_allclose(packed.log_probs.data[valid],
                                   solo.log_probs.data[valid], atol=1e-10)
        np.testing.assert_allclose(packed.ratios.data[valid],
                                   solo.ratios.data[valid], atol=1e-10)

    def test_solo_batch_matches_packed_row(self, lte, ragged_dataset,
                                           tiny_mask):
        """Decoding a trajectory as its own one-row *batch* agrees with
        its row in the packed batch, up to numerically tied emissions.

        Restricted to full-length examples: the step-fraction feature
        normalises by the batch's padded width (a property of the
        feature definition, not the engine), so shorter rows see
        different inputs in differently-padded batches.  Where two
        candidate segments tie to ~1 ULP, the solo argmax may pick the
        twin and feedback legitimately diverges — asserted as: outputs
        match to 1e-10 until the first divergence, and any divergence
        is a sub-1e-9 tie."""
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        packed = _decode(lte, batch, log_mask, packed=True)
        full_rows = [i for i, e in enumerate(ragged_dataset.examples)
                     if e.full_length == batch.steps]
        assert full_rows, "the ragged fixture needs max-length examples"
        ties = 0
        for i in full_rows:
            example = ragged_dataset.examples[i]
            single = TrajectoryDataset([example], ragged_dataset.grid,
                                       ragged_dataset.network,
                                       ragged_dataset.keep_ratio)
            sb = single.full_batch()
            sm = tiny_mask.build_for(sb, lte)
            solo = _decode(lte, sb, sm, packed=True)
            for t in range(example.full_length):
                ps = int(packed.segments[i, t])
                ss = int(solo.segments[0, t])
                if ps != ss:
                    lp = solo.log_probs.data[0, t]
                    assert abs(lp[ps] - lp[ss]) < 1e-9, (
                        f"example {i} step {t}: packed chose {ps}, solo "
                        f"chose {ss}, and they are not numerically tied")
                    ties += 1
                    break  # feedback diverges legitimately from here
                np.testing.assert_allclose(
                    packed.log_probs.data[i, t], solo.log_probs.data[0, t],
                    atol=1e-10, err_msg=f"example {i} step {t}")
                np.testing.assert_allclose(
                    packed.ratios.data[i, t], solo.ratios.data[0, t],
                    atol=1e-10, err_msg=f"example {i} step {t}")
        assert ties <= max(1, len(full_rows) // 2)


class TestDecodeBatchChunking:
    @pytest.mark.parametrize("decode_batch", [2, 3, 5])
    def test_chunked_is_bitwise(self, lte, ragged_dataset, tiny_mask,
                                decode_batch):
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        whole = _decode(lte, batch, log_mask, packed=True)
        chunked = _decode(lte, batch, log_mask, packed=True,
                          decode_batch=decode_batch)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(whole.segments[valid],
                                      chunked.segments[valid])
        np.testing.assert_array_equal(whole.log_probs.data[valid],
                                      chunked.log_probs.data[valid])
        np.testing.assert_array_equal(whole.ratios.data[valid],
                                      chunked.ratios.data[valid])

    def test_trailing_one_row_chunk_is_folded(self, lte, ragged_dataset,
                                              tiny_mask):
        """A decode_batch that leaves a one-row remainder must not drop
        that row into GEMV kernels: the engine folds it into the
        previous chunk, keeping the bitwise contract."""
        batch = ragged_dataset.full_batch()
        assert batch.size % (batch.size - 1) == 1  # remainder of exactly 1
        log_mask = tiny_mask.build_for(batch, lte)
        whole = _decode(lte, batch, log_mask, packed=True)
        folded = _decode(lte, batch, log_mask, packed=True,
                         decode_batch=batch.size - 1)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(whole.segments[valid],
                                      folded.segments[valid])
        np.testing.assert_array_equal(whole.log_probs.data[valid],
                                      folded.log_probs.data[valid])
        np.testing.assert_array_equal(whole.ratios.data[valid],
                                      folded.ratios.data[valid])

    def test_single_row_chunks_are_bitwise(self, lte, ragged_dataset,
                                           tiny_mask):
        """Contract upgrade: decode_batch=1 working sets carry a
        duplicated-row self-ballast, so each trajectory runs the same
        GEMM kernels as inside the packed set — bit-identical, not
        merely 1e-10-close (what lets the continuous batcher prove
        solo-vs-batched equality)."""
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        whole = _decode(lte, batch, log_mask, packed=True)
        single = _decode(lte, batch, log_mask, packed=True, decode_batch=1)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(whole.segments[valid],
                                      single.segments[valid])
        np.testing.assert_array_equal(whole.log_probs.data[valid],
                                      single.log_probs.data[valid])
        np.testing.assert_array_equal(whole.ratios.data[valid],
                                      single.ratios.data[valid])

    def test_single_row_chunks_hold_argmax_contract(self, lte, ragged_dataset,
                                                    tiny_mask):
        """The weaker historical decode_batch=1 contract (argmax +
        1e-10 values), kept as a regression canary."""
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        whole = _decode(lte, batch, log_mask, packed=True)
        single = _decode(lte, batch, log_mask, packed=True, decode_batch=1)
        valid = batch.tgt_mask
        np.testing.assert_array_equal(whole.segments[valid],
                                      single.segments[valid])
        np.testing.assert_allclose(whole.log_probs.data[valid],
                                   single.log_probs.data[valid], atol=1e-10)
        np.testing.assert_allclose(whole.ratios.data[valid],
                                   single.ratios.data[valid], atol=1e-10)


class TestEngineMechanics:
    def test_packed_does_less_work_on_ragged_lengths(self, lte, ragged_dataset,
                                                     tiny_mask):
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        program = lte.decode_program(batch, log_mask)
        lengths = batch.tgt_mask.sum(axis=1)
        with nn.no_grad():
            result = DecodeSession().run(program, batch, lengths=lengths)
        assert result.work_rows < result.dense_rows
        # Ballast rows may pad the true minimum, but never by more than
        # one row per step.
        assert result.work_rows >= int(lengths.sum())
        assert result.work_rows <= int(lengths.sum()) + batch.steps

    def test_full_lengths_equal_dense_work(self, lte, ragged_dataset, tiny_mask):
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        program = lte.decode_program(batch, log_mask)
        with nn.no_grad():
            result = DecodeSession().run(program, batch)
        assert result.work_rows == result.dense_rows

    def test_length_validation(self, lte, ragged_dataset, tiny_mask):
        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        program = lte.decode_program(batch, log_mask)
        with pytest.raises(ValueError):
            DecodeSession().run(program, batch,
                                lengths=np.array([1]))  # wrong shape
        too_long = np.full(batch.size, batch.steps + 1)
        with pytest.raises(ValueError):
            DecodeSession().run(program, batch, lengths=too_long)
        with pytest.raises(ValueError):
            DecodeSession(decode_batch=0)

    def test_emission_policy_is_pluggable(self, lte, ragged_dataset, tiny_mask):
        """A non-greedy policy changes what is emitted without touching
        the engine loop — the beam-ready seam."""

        class SecondBest(GreedyEmission):
            def select(self, log_probs):
                order = np.argsort(log_probs, axis=-1)
                return order[:, -2].astype(np.int64)

        batch = ragged_dataset.full_batch()
        log_mask = tiny_mask.build_for(batch, lte)
        greedy = _decode(lte, batch, log_mask, packed=True)
        program = lte.decode_program(batch, log_mask)
        with nn.no_grad():
            second = DecodeSession(policy=SecondBest()).run(
                program, batch, lengths=batch.tgt_mask.sum(axis=1))
        valid = batch.tgt_mask
        assert (greedy.segments[valid] != second.segments[valid]).any()

    def test_sparse_step_row_slicing(self, ragged_dataset, tiny_mask):
        batch = ragged_dataset.full_batch()
        sparse = tiny_mask.build_sparse(batch)
        dense = sparse.to_dense()
        rows = np.array([4, 1, 3])
        for t in (0, 2):
            sliced = sparse.step(t, rows)
            assert sliced.shape == (rows.size, dense.shape[-1])
            np.testing.assert_array_equal(sliced.to_dense(), dense[rows, t, :])
