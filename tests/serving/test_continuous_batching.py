"""Continuous batching vs solo decode: the bitwise equivalence property.

The scheduler's contract (``repro/serving/scheduler.py``): every
request admitted into the live working set — whenever it arrives,
whatever else is co-resident, however the set compacts around it —
produces outputs **bit-identical** to a solo
:func:`~repro.serving.decode_model` call on the same request batch
under the same flags.  This suite proves it property-style: 100
randomized seeded scenarios (25 seeds x the sparse/fused flag grid)
with random request sets, arrival times, and working-set budgets,
plus directed tests for the scheduler invariants (capacity, FIFO,
drain, deadlines) and the single-row-ballast/admission seam.

Backend and compute-dtype coverage comes from the environment forcing
in the root conftest: CI's ``tier1-serving`` leg re-runs this file
under ``REPRO_BACKEND=workspace`` + ``REPRO_COMPUTE_DTYPE=float32``.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro import nn
from repro.baselines.mtrajrec import MTrajRecModel
from repro.nn.flops import estimate_decode_flops
from repro.serving import (
    ContinuousBatcher,
    DeadlineExceededError,
    DecodeSession,
    GreedyEmission,
    MuxError,
    decode_model,
)

#: The flag grid each seed runs under.  fused=False exercises the
#: solo-fallback path (LTE builds no decode program without fused
#: kernels), sparse toggles the constraint-mask representation.
FLAG_GRID = [(True, True), (True, False), (False, True), (False, False)]


def _assert_request_bitwise(result, batch, output, label=""):
    valid = batch.tgt_mask
    np.testing.assert_array_equal(result.segments[valid],
                                  output.segments[valid], err_msg=label)
    np.testing.assert_array_equal(result.ratios[valid],
                                  output.ratios.data[valid], err_msg=label)
    np.testing.assert_array_equal(result.log_probs[valid],
                                  output.log_probs.data[valid], err_msg=label)


def _drive(batcher, schedule, data):
    """Run a batcher through an arrival ``schedule``.

    ``schedule`` is a list of ``(arrival_step, key)`` (sorted);
    ``data[key]`` is ``(batch, log_mask)``.  Checks the capacity
    invariant every step; returns ``{key: outcome}``.
    """
    outcomes = {}
    handles = {}
    pending = deque(schedule)
    step = 0
    while pending or not batcher.idle:
        while pending and pending[0][0] <= step:
            _, key = pending.popleft()
            batch, log_mask = data[key]
            handles[batcher.submit(batch, log_mask)] = key
        for handle, outcome in batcher.step():
            outcomes[handles[handle]] = outcome
        assert batcher.live_rows <= batcher.max_batch
        step += 1
        assert step < 10_000, "scheduler failed to make progress"
    assert batcher.idle and batcher.queue_depth == 0
    return outcomes


class TestSoloEquivalenceProperty:
    """100 randomized scenarios: arrivals, lengths, budgets, flags."""

    @pytest.mark.parametrize("sparse,fused", FLAG_GRID)
    @pytest.mark.parametrize("seed", range(25))
    def test_random_arrivals_are_bitwise(self, served_lte, serving_dataset,
                                         solo_reference, seed, sparse, fused):
        rng = np.random.default_rng(10_000 + seed)
        n_requests = int(rng.integers(2, 7))
        picks = rng.integers(0, len(serving_dataset.examples),
                             size=n_requests)
        arrivals = np.sort(rng.integers(0, 20, size=n_requests))
        max_batch = int(rng.integers(2, 6))

        data = {}
        refs = {}
        for j, idx in enumerate(picks):
            batch, log_mask, output = solo_reference(
                served_lte, [int(idx)], sparse=sparse, fused=fused)
            data[j] = (batch, log_mask)
            refs[j] = (batch, output)

        with nn.use_sparse_masks(sparse), nn.use_fused_kernels(fused):
            batcher = ContinuousBatcher(served_lte, max_batch=max_batch)
            outcomes = _drive(batcher,
                              list(zip(arrivals.tolist(), range(n_requests))),
                              data)

        assert sorted(outcomes) == list(range(n_requests))
        for j, outcome in outcomes.items():
            batch, output = refs[j]
            _assert_request_bitwise(
                outcome, batch, output,
                label=f"seed={seed} request={j} traj={picks[j]} "
                      f"sparse={sparse} fused={fused}")
            if not fused:  # no decode program: served by the solo fallback
                assert outcome.solo_fallback

    def test_multi_row_requests_are_bitwise(self, served_lte, solo_reference):
        """Requests are whole batches, not single rows: multi-trajectory
        request batches hold the same contract."""
        groups = [[0, 1], [2, 3, 4], [5], [6, 7]]
        data, refs = {}, {}
        for j, group in enumerate(groups):
            batch, log_mask, output = solo_reference(served_lte, group)
            data[j] = (batch, log_mask)
            refs[j] = (batch, output)
        batcher = ContinuousBatcher(served_lte, max_batch=4)
        outcomes = _drive(batcher, [(0, 0), (2, 1), (3, 2), (5, 3)], data)
        for j, outcome in outcomes.items():
            batch, output = refs[j]
            _assert_request_bitwise(outcome, batch, output, label=f"group {j}")


class TestSchedulerInvariants:
    def test_capacity_validation_at_submit(self, served_lte, make_request):
        batch, log_mask = make_request([0, 1, 2], served_lte)
        batcher = ContinuousBatcher(served_lte, max_batch=2)
        with pytest.raises(ValueError, match="max_batch"):
            batcher.submit(batch, log_mask)
        with pytest.raises(ValueError):
            ContinuousBatcher(served_lte, max_batch=0)

    def test_fifo_admission_order(self, served_lte, make_request):
        """No request is overtaken: under continuous arrivals into a
        tiny working set, admission order equals submission order."""
        batcher = ContinuousBatcher(served_lte, max_batch=2)
        data = {j: make_request([j % 8], served_lte) for j in range(10)}
        submit_order = []
        step = 0
        while not batcher.idle or step == 0:
            if step < 10:  # one new arrival per step: constant pressure
                handle = batcher.submit(*data[step])
                submit_order.append(handle)
            batcher.step()
            step += 1
        assert batcher.admission_log == submit_order

    def test_drain_completes_with_empty_queue(self, served_lte, make_request):
        batcher = ContinuousBatcher(served_lte, max_batch=3)
        handles = [batcher.submit(*make_request([j], served_lte))
                   for j in range(6)]
        outcomes = dict(batcher.drain())
        assert sorted(outcomes) == sorted(handles)
        assert batcher.idle
        assert batcher.queue_depth == 0
        assert batcher.live_rows == 0

    def test_expired_requests_reject_cleanly(self, served_lte, make_request,
                                             solo_reference):
        """A queued request whose deadline passes is rejected with a
        clear error and never enters (or perturbs) the working set:
        the co-resident requests still decode bit-identically."""
        clock = _FakeClock()
        batcher = ContinuousBatcher(served_lte, max_batch=2, clock=clock)
        a = batcher.submit(*make_request([2], served_lte))  # length 17
        b = batcher.submit(*make_request([1], served_lte))  # length 9
        batcher.step()  # both admitted: the set is now full
        late = batcher.submit(*make_request([3], served_lte),
                              deadline=clock.now + 0.5)
        clock.now = 1.0  # the deadline passes while `late` is queued
        outcomes = dict(batcher.drain())
        assert isinstance(outcomes[late], DeadlineExceededError)
        assert "deadline" in str(outcomes[late])
        for handle, idx in ((a, 2), (b, 1)):
            batch, _, output = solo_reference(served_lte, [idx])
            _assert_request_bitwise(outcomes[handle], batch, output)

    def test_unexpired_deadline_is_served(self, served_lte, make_request):
        clock = _FakeClock()
        batcher = ContinuousBatcher(served_lte, max_batch=2, clock=clock)
        handle = batcher.submit(*make_request([0], served_lte),
                                deadline=clock.now + 10.0)
        outcomes = dict(batcher.drain())
        assert not isinstance(outcomes[handle], Exception)

    def test_mux_incompatible_requests_wait_for_drain(self, tiny_config,
                                                      solo_reference,
                                                      make_request):
        """Attention requests with different padded encoder widths can
        never share a working set (zero-extending the key axis is not
        bitwise-stable); the head blocks until the set drains, then
        re-keys it — both decode bit-identically."""
        model = MTrajRecModel(tiny_config, np.random.default_rng(3))
        model.eval()
        ref_a = solo_reference(model, [2])  # length 17
        ref_b = solo_reference(model, [0])  # length 5: different widths
        assert ref_a[0].steps != ref_b[0].steps
        batcher = ContinuousBatcher(model, max_batch=4)
        data = {0: ref_a[:2], 1: ref_b[:2]}
        outcomes = _drive(batcher, [(0, 0), (0, 1)], data)
        for j, ref in ((0, ref_a), (1, ref_b)):
            _assert_request_bitwise(outcomes[j], ref[0], ref[2],
                                    label=f"request {j}")

    def test_mixed_flag_requests_never_share_a_set(self, served_lte,
                                                   solo_reference):
        """Requests captured under different flags are admitted into
        different working-set generations, each served under its own
        flags bit-identically."""
        ref_sparse = solo_reference(served_lte, [0], sparse=True)
        ref_dense = solo_reference(served_lte, [1], sparse=False)
        batcher = ContinuousBatcher(served_lte, max_batch=4)
        with nn.use_sparse_masks(True):
            a = batcher.submit(ref_sparse[0], ref_sparse[1])
        with nn.use_sparse_masks(False):
            b = batcher.submit(ref_dense[0], ref_dense[1])
        outcomes = dict(batcher.drain())
        _assert_request_bitwise(outcomes[a], ref_sparse[0], ref_sparse[2])
        _assert_request_bitwise(outcomes[b], ref_dense[0], ref_dense[2])

    def test_per_request_decode_flops(self, served_lte, make_request):
        """Cost accounting prices true decode lengths, not padding."""
        batch, log_mask = make_request([0, 2], served_lte)
        lengths = batch.tgt_mask.sum(axis=1)
        assert lengths.min() < batch.steps  # genuinely ragged
        batcher = ContinuousBatcher(served_lte, max_batch=2)
        handle = batcher.submit(batch, log_mask)
        outcomes = dict(batcher.drain())
        expected = sum(
            estimate_decode_flops(served_lte, int(batch.steps),
                                  decode_len=int(n))
            for n in lengths)
        assert outcomes[handle].decode_flops == pytest.approx(expected)
        padded = estimate_decode_flops(served_lte, int(batch.steps), batch=2)
        assert outcomes[handle].decode_flops < padded


class TestBallastAdmissionSeam:
    """The single-live-row BLAS ballast x admission interaction."""

    def test_admission_into_ballasted_set_is_bitwise(self, served_lte,
                                                     solo_reference):
        """A request admitted while the sole live row is carrying its
        transient self-ballast must join cleanly: the ballast row is
        dropped, both requests keep GEMM bit-patterns throughout."""
        ref_long = solo_reference(served_lte, [2])   # length 17
        ref_short = solo_reference(served_lte, [1])  # length 9
        data = {0: ref_long[:2], 1: ref_short[:2]}
        batcher = ContinuousBatcher(served_lte, max_batch=2)
        # Arrival at step 5: request 0 has been stepping alone (with
        # ballast) for 5 steps when request 1 joins.
        outcomes = _drive(batcher, [(0, 0), (5, 1)], data)
        _assert_request_bitwise(outcomes[0], ref_long[0], ref_long[2])
        _assert_request_bitwise(outcomes[1], ref_short[0], ref_short[2])

    def test_ballast_rows_are_not_double_counted(self, served_lte,
                                                 solo_reference):
        """Per-request work accounting excludes ballast rows: a
        single-trajectory request's ``work_rows`` equals its true
        length even when it decoded alone (ballasted) for part or all
        of its life."""
        ref_long = solo_reference(served_lte, [2])
        ref_short = solo_reference(served_lte, [1])
        long_len = int(ref_long[0].tgt_mask.sum())
        short_len = int(ref_short[0].tgt_mask.sum())
        batcher = ContinuousBatcher(served_lte, max_batch=2)
        outcomes = _drive(batcher, [(0, 0), (5, 1)],
                          {0: ref_long[:2], 1: ref_short[:2]})
        assert outcomes[0].work_rows == long_len
        assert outcomes[1].work_rows == short_len

    def test_single_request_alone_is_bitwise(self, served_lte,
                                             solo_reference):
        """The degenerate case: one request, never co-resident — the
        live set self-ballasts every step and still matches solo."""
        batch, log_mask, output = solo_reference(served_lte, [4])
        batcher = ContinuousBatcher(served_lte, max_batch=2)
        outcomes = _drive(batcher, [(0, 0)], {0: (batch, log_mask)})
        _assert_request_bitwise(outcomes[0], batch, output)
        assert outcomes[0].work_rows == int(batch.tgt_mask.sum())


class TestLiveDecodeSetEngine:
    """Engine-level admission primitives under the scheduler."""

    def _program(self, model, batch, log_mask):
        with nn.no_grad():
            return model.decode_program(batch, log_mask)

    def test_admit_validates(self, served_lte, make_request):
        batch, log_mask = make_request([0, 1], served_lte)
        program = self._program(served_lte, batch, log_mask)
        live = DecodeSession().open(max_batch=1)
        with pytest.raises(ValueError, match="max_batch"):
            live.admit(program, batch)
        with pytest.raises(ValueError, match="lengths"):
            DecodeSession().open().admit(program, batch,
                                         lengths=np.array([1]))
        with pytest.raises(ValueError):
            DecodeSession().open().admit(
                program, batch, lengths=np.full(batch.size, batch.steps + 1))
        with pytest.raises(ValueError):
            DecodeSession().open(max_batch=0)

    def test_non_program_is_a_mux_error(self):
        live = DecodeSession().open()
        with pytest.raises(MuxError, match="protocol"):
            live.admit(object(), None)

    def test_cross_model_admission_is_a_mux_error(self, served_lte,
                                                  tiny_config, make_request):
        other = MTrajRecModel(tiny_config, np.random.default_rng(3))
        other.eval()
        batch_a, mask_a = make_request([0], served_lte)
        with nn.use_sparse_masks(False):
            batch_b, mask_b = make_request([0], other)
        live = DecodeSession().open()
        live.admit(self._program(served_lte, batch_a, mask_a), batch_a)
        with pytest.raises(MuxError, match="mux-compatible"):
            live.admit(self._program(other, batch_b, mask_b), batch_b)
        # Draining the set re-keys it: the other model is admissible.
        with nn.no_grad():
            while not live.empty:
                live.step()
        live.admit(self._program(other, batch_b, mask_b), batch_b)

    def test_zero_length_admission_finishes_next_step(self, served_lte,
                                                      make_request):
        batch, log_mask = make_request([0], served_lte)
        program = self._program(served_lte, batch, log_mask)
        live = DecodeSession().open()
        handle = live.admit(program, batch,
                            lengths=np.zeros(batch.size, dtype=np.int64))
        assert not live.empty
        with nn.no_grad():
            results = live.step()
        assert [r.handle for r in results] == [handle]
        assert results[0].work_rows == 0
        assert live.empty

    def test_emission_policy_extension_hooks(self, served_lte, make_request):
        """Admission calls ``extend`` with the admitted row count and
        retirement calls ``compact`` with the kept positions — the seam
        a stateful (e.g. beam) policy needs to track the working set."""

        class Recording(GreedyEmission):
            def __init__(self):
                self.events = []

            def extend(self, rows):
                self.events.append(("extend", rows))

            def compact(self, keep):
                self.events.append(("compact", len(keep)))

        policy = Recording()
        batch_a, mask_a = make_request([2], served_lte)  # length 17
        batch_b, mask_b = make_request([1], served_lte)  # length 9
        live = DecodeSession(policy=policy).open(max_batch=2)
        with nn.no_grad():
            live.admit(self._program(served_lte, batch_a, mask_a), batch_a,
                       lengths=batch_a.tgt_mask.sum(axis=1))
            live.step()
            live.admit(self._program(served_lte, batch_b, mask_b), batch_b,
                       lengths=batch_b.tgt_mask.sum(axis=1))
            while not live.empty:
                live.step()
        assert policy.events.count(("extend", 1)) == 2
        # Two retirements: request b (9 steps), then request a (17) —
        # each compaction keeps the surviving rows only.
        compacts = [e for e in policy.events if e[0] == "compact"]
        assert compacts == [("compact", 1), ("compact", 0)]


class _FakeClock:
    """Deterministic injectable clock for deadline tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now
