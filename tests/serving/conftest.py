"""Shared fixtures for the serving-layer suites.

One briefly-trained LTE model plus a ragged-length dataset and
single-trajectory request builders — the raw material of the
continuous-batching and service tests.  Kept in a conftest so the
scheduler, service, and property suites share one training run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import LTEModel
from repro.core.training import LocalTrainer, TrainingConfig
from repro.data import TrajectoryDataset
from repro.data.trajectory import MatchedTrajectory
from repro.serving import decode_model

#: Uneven trajectory lengths so working sets retire rows at staggered
#: steps (the continuous-batching admission opportunity).
SERVING_LENGTHS = (5, 9, 17, 12, 7, 15, 4, 11)


@pytest.fixture(scope="package")
def serving_dataset(tiny_world):
    trimmed = []
    for i, traj in enumerate(tiny_world.matched):
        n = SERVING_LENGTHS[i % len(SERVING_LENGTHS)]
        trimmed.append(MatchedTrajectory(traj.traj_id, traj.driver_id,
                                         traj.epsilon, traj.points[:n]))
    return TrajectoryDataset.from_matched(trimmed, tiny_world.grid,
                                          tiny_world.network, keep_ratio=0.25)


@pytest.fixture(scope="package")
def served_lte(tiny_config, serving_dataset, tiny_mask):
    """A briefly-trained model: real decision margins, so bitwise
    contracts are exercised away from degenerate 1-ULP ties."""
    model = LTEModel(tiny_config, np.random.default_rng(0))
    trainer = LocalTrainer(model, tiny_mask,
                           TrainingConfig(epochs=2, batch_size=8),
                           np.random.default_rng(1))
    trainer.train_epochs(serving_dataset)
    model.eval()
    return model


@pytest.fixture(scope="package")
def make_request(serving_dataset, tiny_mask):
    """Build one request: ``(batch, log_mask)`` for a subset of the
    dataset's trajectories, with the mask in the ambient representation
    (call under ``nn.use_sparse_masks`` to pick)."""

    def build(indices, model):
        examples = [serving_dataset.examples[i] for i in indices]
        batch = TrajectoryDataset(examples, serving_dataset.grid,
                                  serving_dataset.network,
                                  serving_dataset.keep_ratio).full_batch()
        return batch, tiny_mask.build_for(batch, model)

    return build


@pytest.fixture(scope="package")
def solo_reference(make_request):
    """Memoised solo :func:`decode_model` references.

    ``get(model, indices, sparse=..., fused=...)`` returns
    ``(batch, log_mask, output)`` decoded under exactly those flags —
    the ground truth every continuous-batching result must match
    bit-for-bit.
    """
    cache: dict = {}

    def get(model, indices, *, sparse=True, fused=True):
        # Keyed on the model object itself (not id()): the reference
        # pins the model, so a recycled id can never alias the cache.
        key = (model, tuple(indices), sparse, fused)
        if key not in cache:
            with nn.use_sparse_masks(sparse), nn.use_fused_kernels(fused):
                batch, log_mask = build_args = make_request(indices, model)
                with nn.no_grad():
                    output = decode_model(model, batch, log_mask)
            cache[key] = (build_args[0], build_args[1], output)
        return cache[key]

    return get
