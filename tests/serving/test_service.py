"""DecodeService: the async front-end over the continuous batcher.

Covers the future-based submit/result API (results bitwise-equal to
solo decodes), per-caller flag capture, queue-depth backpressure,
admission deadlines, graceful drain/shutdown, and the FastAPI import
gate — the suite runs hermetically with FastAPI absent (the numba
pattern: optional dependency, never a test dependency) and smoke-tests
the HTTP app when it happens to be installed.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import nn
from repro.serving import (
    DeadlineExceededError,
    DecodeService,
    QueueFullError,
    ServiceClosedError,
    create_app,
    fastapi_available,
)

HAVE_FASTAPI = fastapi_available()


def _assert_request_bitwise(result, batch, output):
    valid = batch.tgt_mask
    np.testing.assert_array_equal(result.segments[valid],
                                  output.segments[valid])
    np.testing.assert_array_equal(result.ratios[valid],
                                  output.ratios.data[valid])
    np.testing.assert_array_equal(result.log_probs[valid],
                                  output.log_probs.data[valid])


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSubmitResult:
    def test_results_match_solo_decodes(self, served_lte, solo_reference):
        refs = {i: solo_reference(served_lte, [i]) for i in range(6)}
        with DecodeService(served_lte, max_batch=3) as service:
            handles = {i: service.submit(ref[0], ref[1])
                       for i, ref in refs.items()}
            for i, handle in handles.items():
                result = service.result(handle, timeout=30)
                _assert_request_bitwise(result, refs[i][0], refs[i][2])
            assert service.drain(timeout=10)
            stats = service.stats
        assert stats["submitted"] == 6
        assert stats["completed"] == 6
        assert stats["rejected"] == 0

    def test_flags_captured_per_caller(self, served_lte, solo_reference):
        """Two callers with different ambient flags each get results
        under their own configuration, from the same service."""
        ref_sparse = solo_reference(served_lte, [0], sparse=True)
        ref_dense = solo_reference(served_lte, [1], sparse=False)
        with DecodeService(served_lte, max_batch=4) as service:
            with nn.use_sparse_masks(True):
                a = service.submit(ref_sparse[0], ref_sparse[1])
            with nn.use_sparse_masks(False):
                b = service.submit(ref_dense[0], ref_dense[1])
            _assert_request_bitwise(service.result(a, timeout=30),
                                    ref_sparse[0], ref_sparse[2])
            _assert_request_bitwise(service.result(b, timeout=30),
                                    ref_dense[0], ref_dense[2])

    def test_unknown_handle(self, served_lte):
        with DecodeService(served_lte) as service:
            with pytest.raises(KeyError):
                service.result(12345, timeout=1)

    def test_concurrent_submitters(self, served_lte, solo_reference):
        """Many threads submitting at once: every request resolves to
        its own bitwise-correct result."""
        refs = {i: solo_reference(served_lte, [i % 8]) for i in range(12)}
        errors = []

        def client(service, i):
            try:
                handle = service.submit(refs[i][0], refs[i][1])
                result = service.result(handle, timeout=30)
                _assert_request_bitwise(result, refs[i][0], refs[i][2])
            except Exception as error:  # surfaced after join
                errors.append((i, error))

        with DecodeService(served_lte, max_batch=4, max_queue=32) as service:
            threads = [threading.Thread(target=client, args=(service, i))
                       for i in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert errors == []


class TestBackpressure:
    def test_queue_full_rejects_at_the_door(self, served_lte, make_request):
        data = make_request([0], served_lte)
        service = DecodeService(served_lte, max_batch=2, max_queue=1)
        try:
            # Holding the service condition keeps the worker parked, so
            # the first submission stays pending deterministically.
            with service._cond:
                first = service.submit(*data)
                with pytest.raises(QueueFullError, match="max_queue"):
                    service.submit(*data)
            assert not isinstance(service.result(first, timeout=30),
                                  Exception)
            assert service.stats["rejected"] == 0  # shed, never counted
        finally:
            service.shutdown()

    def test_max_queue_validation(self, served_lte):
        with pytest.raises(ValueError):
            DecodeService(served_lte, max_queue=0)

    def test_deadline_rejects_queued_request(self, served_lte, make_request,
                                             solo_reference):
        """A request that cannot be admitted before its timeout fails
        with DeadlineExceededError; co-resident work is unaffected."""
        clock = _FakeClock()
        ref = solo_reference(served_lte, [2])
        service = DecodeService(served_lte, max_batch=1, max_queue=8,
                                clock=clock)
        try:
            with service._cond:  # park the worker
                occupant = service.submit(ref[0], ref[1])
                late = service.submit(*make_request([1], served_lte),
                                      timeout=0.5)
                clock.now = 1.0  # expires `late` before any admission
            with pytest.raises(DeadlineExceededError):
                service.result(late, timeout=30)
            _assert_request_bitwise(service.result(occupant, timeout=30),
                                    ref[0], ref[2])
            assert service.stats["rejected"] == 1
        finally:
            service.shutdown()


class TestShutdown:
    def test_submit_after_shutdown_raises(self, served_lte, make_request):
        service = DecodeService(served_lte)
        service.shutdown()
        with pytest.raises(ServiceClosedError):
            service.submit(*make_request([0], served_lte))
        service.shutdown()  # idempotent

    def test_shutdown_drains_pending_work(self, served_lte, solo_reference):
        refs = {i: solo_reference(served_lte, [i]) for i in range(4)}
        service = DecodeService(served_lte, max_batch=2)
        handles = {i: service.submit(ref[0], ref[1])
                   for i, ref in refs.items()}
        service.shutdown(drain=True, timeout=60)
        for i, handle in handles.items():
            _assert_request_bitwise(service.result(handle, timeout=1),
                                    refs[i][0], refs[i][2])

    def test_abandon_fails_queued_futures(self, served_lte, make_request):
        data = make_request([0], served_lte)
        service = DecodeService(served_lte)
        with service._cond:  # park the worker before it can admit
            handle = service.submit(*data)
            # join() cannot finish while we hold the lock; the flag is
            # set, and the worker abandons the queue once we release.
            service.shutdown(drain=False, timeout=0.05)
        service._worker.join(timeout=10)
        with pytest.raises(ServiceClosedError):
            service.result(handle, timeout=5)
        assert service.stats["rejected"] == 1

    def test_context_manager_drains(self, served_lte, make_request):
        with DecodeService(served_lte, max_batch=2) as service:
            handle = service.submit(*make_request([3], served_lte))
        # __exit__ ran shutdown(drain=True): the result must be ready.
        assert service.result(handle, timeout=1) is not None


# ----------------------------------------------------------------------
# FastAPI import gating (the numba pattern: optional, never required)
# ----------------------------------------------------------------------
class TestApiGating:
    def test_availability_probe_matches_importability(self):
        try:
            import fastapi  # noqa: F401
            importable = True
        except ImportError:
            importable = False
        assert fastapi_available() == importable

    @pytest.mark.skipif(HAVE_FASTAPI, reason="fastapi installed: app builds")
    def test_create_app_raises_without_fastapi(self, served_lte):
        with DecodeService(served_lte) as service:
            with pytest.raises(RuntimeError, match="fastapi"):
                create_app(service, lambda payload: None)

    @pytest.mark.skipif(not HAVE_FASTAPI, reason="fastapi not installed")
    def test_http_smoke(self, served_lte, make_request):
        from fastapi.testclient import TestClient

        data = make_request([0], served_lte)
        with DecodeService(served_lte, max_batch=2) as service:
            app = create_app(service, lambda payload: data)
            client = TestClient(app)
            health = client.get("/healthz")
            assert health.status_code == 200
            assert health.json()["status"] == "ok"
            response = client.post("/decode", json={})
            assert response.status_code == 200
            body = response.json()
            assert len(body["segments"]) == int(data[0].size)
            assert body["work_rows"] > 0
