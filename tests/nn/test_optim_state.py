"""Flat optimiser-state shipping (``state_flat``/``load_state_flat``).

The parallel round runner carries each federated client's optimiser
moments between processes; the contract is that a restored optimiser
continues *bit-identically*.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def make_params(rng):
    return [Parameter(rng.standard_normal((3, 4)), name="w"),
            Parameter(rng.standard_normal(4), name="b")]


def run_steps(optimizer, params, grads):
    for grad_pair in grads:
        for p, g in zip(params, grad_pair):
            p.grad = g.copy()
        optimizer.step()
    return [p.data.copy() for p in params]


def grad_stream(rng, steps):
    return [(rng.standard_normal((3, 4)), rng.standard_normal(4))
            for _ in range(steps)]


@pytest.mark.parametrize("factory", [
    lambda params: nn.Adam(params, lr=1e-2),
    lambda params: nn.SGD(params, lr=1e-2, momentum=0.9),
], ids=["adam", "sgd-momentum"])
def test_restored_state_continues_bit_identically(factory):
    rng = np.random.default_rng(0)
    params = make_params(rng)
    optimizer = factory(params)
    warmup = grad_stream(np.random.default_rng(1), 3)
    tail = grad_stream(np.random.default_rng(2), 3)

    run_steps(optimizer, params, warmup)
    snapshot_params = [p.data.copy() for p in params]
    snapshot_state = optimizer.state_flat()
    reference = run_steps(optimizer, params, tail)

    # Fresh optimiser + restored state: the tail must replay exactly.
    params2 = [Parameter(d.copy(), name=p.name)
               for d, p in zip(snapshot_params, params)]
    optimizer2 = factory(params2)
    optimizer2.load_state_flat(snapshot_state)
    replay = run_steps(optimizer2, params2, tail)
    for ref, rep in zip(reference, replay):
        np.testing.assert_array_equal(ref, rep)


def test_state_flat_returns_copies():
    params = [Parameter(np.ones(4), name="w")]
    optimizer = nn.Adam(params, lr=1e-2)
    state = optimizer.state_flat()
    state["m"][...] = 123.0
    assert not np.any(optimizer._m_flat == 123.0)


def test_load_state_flat_validates_keys_and_sizes():
    params = [Parameter(np.ones(4), name="w")]
    adam = nn.Adam(params, lr=1e-2)
    with pytest.raises(ValueError):
        adam.load_state_flat({"m": np.zeros(4)})  # missing keys
    with pytest.raises(ValueError):
        adam.load_state_flat({"m": np.zeros(3), "v": np.zeros(4), "t": 1})
    sgd = nn.SGD(params, lr=1e-2, momentum=0.9)
    with pytest.raises(ValueError):
        sgd.load_state_flat({"momentum": np.zeros(4)})


def test_load_preserves_internal_views():
    """Restoring must copy in place: the per-parameter views created at
    construction still alias the flat buffers afterwards."""
    params = [Parameter(np.ones((2, 2)), name="w")]
    adam = nn.Adam(params, lr=1e-2)
    view = adam._m[0]
    adam.load_state_flat({"m": np.full(4, 7.0), "v": np.zeros(4), "t": 2})
    assert np.shares_memory(view, adam._m_flat)
    np.testing.assert_array_equal(view, np.full((2, 2), 7.0))
    assert adam._t == 2
