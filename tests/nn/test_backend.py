"""The pluggable array-backend seam: selection API, hot-kernel registry
fallback, reference-vs-workspace bitwise equivalence, cache keying, and
federated shipping.

The workspace backend's contract is the strong one: it re-runs the same
operations in the same order writing into pooled scratch, so **every**
output — forward activations, gradients, decode log-probs, whole
federated round histories — must be bit-identical to the reference
backend, across fused on/off, sparse/dense masks, packed/padded decode,
and both compute dtypes.  (The tier-1 suite additionally re-runs end to
end under ``REPRO_BACKEND=workspace`` in CI.)  The ``numba`` backend is
optional and import-gated: when the package is missing it simply never
registers, and every kernel falls back to reference per the
:func:`repro.nn.call_kernel` contract exercised below.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.core.training import LocalTrainer, model_segment_accuracy
from repro.federated import FederatedConfig, FederatedTrainer, build_federation
from repro.nn import backend as backend_mod
from repro.serving import decode_model

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="no fork start method on this platform",
)

HAVE_NUMBA = "numba" in nn.available_backends()


# ----------------------------------------------------------------------
# selection API
# ----------------------------------------------------------------------
class TestBackendConfig:
    def test_reference_is_the_default(self):
        # The suite may run under REPRO_BACKEND forcing, so assert the
        # default through a fresh scope instead of globally.
        with nn.use_backend("reference"):
            assert nn.get_backend() == "reference"

    def test_set_returns_previous_and_context_restores(self):
        before = nn.get_backend()
        previous = nn.set_backend("workspace")
        assert previous == before
        assert nn.get_backend() == "workspace"
        nn.set_backend(previous)
        assert nn.get_backend() == before

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            nn.set_backend("cuda")

    def test_builtin_backends_are_registered(self):
        names = nn.available_backends()
        assert "reference" in names
        assert "workspace" in names

    def test_generation_moves_only_on_real_switches(self):
        with nn.use_backend("reference"):
            start = nn.backend_generation()
            assert nn.set_backend("reference") == "reference"
            assert nn.backend_generation() == start  # no-op switch
            with nn.use_backend("workspace"):
                assert nn.backend_generation() == start + 1
            assert nn.backend_generation() == start + 2  # restored

    def test_reference_ops_bind_numpy_directly(self):
        """Dispatch overhead by construction: under the reference
        backend the ops attributes *are* the NumPy functions."""
        with nn.use_backend("reference"):
            assert backend_mod.ops.exp is np.exp
            assert backend_mod.ops.matmul is np.matmul
            # np.add.at is a fresh bound-method object per access, so
            # compare the underlying ufunc instead of identity.
            assert backend_mod.ops.add_at.__self__ is np.add

    def test_ops_namespace_rejects_non_op_names(self):
        with pytest.raises(AttributeError):
            backend_mod.ops.not_an_op = np.exp

    def test_backend_validates_op_overrides(self):
        with pytest.raises(ValueError, match="unknown op names"):
            nn.ArrayBackend("bad", op_overrides={"not_an_op": np.exp})


# ----------------------------------------------------------------------
# hot-kernel registry + fallback contract
# ----------------------------------------------------------------------
class TestKernelRegistry:
    def test_missing_kernel_runs_reference(self):
        nn.register_backend(nn.ArrayBackend("t-empty"))
        calls = []

        def reference(a, b):
            calls.append("ref")
            return a + b

        with nn.use_backend("t-empty"):
            assert nn.call_kernel("nope", reference, 1, 2) == 3
        assert calls == ["ref"]

    def test_registered_kernel_is_used(self):
        nn.register_backend(nn.ArrayBackend("t-impl"))
        nn.register_kernel("t-impl", "double", lambda x: x * 2)
        with nn.use_backend("t-impl"):
            assert nn.call_kernel("double", lambda x: -x, 21) == 42
        with nn.use_backend("reference"):
            assert nn.call_kernel("double", lambda x: -x, 21) == -21

    def test_raising_kernel_falls_back_and_is_disabled(self):
        nn.register_backend(nn.ArrayBackend("t-boom"))
        raises = []

        def broken(x):
            raises.append("boom")
            raise RuntimeError("kernel exploded")

        nn.register_kernel("t-boom", "k", broken)
        with nn.use_backend("t-boom"):
            assert nn.call_kernel("k", lambda x: x + 1, 1) == 2
            # Disabled after the first raise: the broken impl never
            # runs again in this process.
            assert nn.call_kernel("k", lambda x: x + 1, 5) == 6
        assert raises == ["boom"]

    def test_register_kernel_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            nn.register_kernel("no-such-backend", "k", lambda: None)

    def test_workspace_registers_the_hot_kernels(self):
        kernels = backend_mod._BACKENDS["workspace"].kernels
        for name in ("rnn_scan_forward", "rnn_scan_backward",
                     "gru_scan_forward", "gru_scan_backward",
                     "sparse_mask_step", "st_decode_step"):
            assert name in kernels, name

    def test_lstm_scan_falls_back_to_reference_on_workspace(self):
        """No workspace LSTM kernels are registered — the seam's
        fallback covers them, and outputs stay bitwise identical."""
        kernels = backend_mod._BACKENDS["workspace"].kernels
        assert "lstm_scan_forward" not in kernels
        rng = np.random.default_rng(5)
        x = rng.standard_normal((3, 6, 4))
        results = []
        for name in ("reference", "workspace"):
            with nn.use_backend(name):
                lstm = nn.LSTM(4, 8, np.random.default_rng(2))
                outputs, _last = lstm(nn.Tensor(x, requires_grad=True))
                outputs.sum().backward()
                results.append((outputs.data.copy(),
                                lstm.cell.w_i.grad.copy()))
        np.testing.assert_array_equal(results[0][0], results[1][0])
        np.testing.assert_array_equal(results[0][1], results[1][1])


# ----------------------------------------------------------------------
# reference vs workspace: bitwise equivalence
# ----------------------------------------------------------------------
def _forward_backward(backend, tiny_config, tiny_dataset, tiny_world,
                      fused=True, sparse=True):
    with nn.use_backend(backend), nn.use_fused_kernels(fused), \
            nn.use_sparse_masks(sparse):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        log_mask = builder.build_for(batch, model)
        output = model(batch, log_mask, teacher_forcing=True)
        loss, _ = model.loss(output, batch)
        loss.backward()
        grads = {name: p.grad.copy()
                 for name, p in model.named_parameters()}
        return output, loss.item(), grads


class TestReferenceVsWorkspaceBitwise:
    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("sparse", [True, False])
    def test_forward_loss_and_gradients(self, tiny_config, tiny_dataset,
                                        tiny_world, fused, sparse):
        out_ref, loss_ref, grads_ref = _forward_backward(
            "reference", tiny_config, tiny_dataset, tiny_world, fused, sparse)
        out_ws, loss_ws, grads_ws = _forward_backward(
            "workspace", tiny_config, tiny_dataset, tiny_world, fused, sparse)
        np.testing.assert_array_equal(out_ws.log_probs.data,
                                      out_ref.log_probs.data)
        np.testing.assert_array_equal(out_ws.segments, out_ref.segments)
        assert loss_ws == loss_ref
        for name, g_ref in grads_ref.items():
            np.testing.assert_array_equal(grads_ws[name], g_ref, err_msg=name)

    @pytest.mark.parametrize("packed", [True, False])
    @pytest.mark.parametrize("sparse", [True, False])
    def test_decode(self, tiny_config, tiny_dataset, tiny_world, packed,
                    sparse):
        results = []
        for backend in ("reference", "workspace"):
            with nn.use_backend(backend), nn.use_packed_decode(packed), \
                    nn.use_sparse_masks(sparse):
                model = LTEModel(tiny_config, np.random.default_rng(11))
                model.eval()
                builder = ConstraintMaskBuilder(tiny_world.network,
                                                radius=400.0)
                batch = tiny_dataset.full_batch()
                log_mask = builder.build_for(batch, model)
                with nn.no_grad():
                    result = decode_model(model, batch, log_mask)
                results.append(result)
        ref, ws = results
        np.testing.assert_array_equal(ws.segments, ref.segments)
        np.testing.assert_array_equal(ws.log_probs.data, ref.log_probs.data)
        np.testing.assert_array_equal(ws.ratios.data, ref.ratios.data)

    def test_one_epoch_bitwise(self, tiny_config, tiny_dataset, tiny_world):
        results = {}
        for backend in ("reference", "workspace"):
            with nn.use_backend(backend):
                model = LTEModel(tiny_config, np.random.default_rng(3))
                builder = ConstraintMaskBuilder(tiny_world.network,
                                                radius=400.0)
                trainer = LocalTrainer(model, builder,
                                       TrainingConfig(batch_size=8, lr=1e-3),
                                       np.random.default_rng(4))
                loss = trainer.train_epoch(tiny_dataset)
                acc = model_segment_accuracy(model, builder, tiny_dataset)
                flat = np.concatenate([p.data.ravel() for p in
                                       model.parameters()])
                results[backend] = (loss, acc, flat)
        assert results["workspace"][0] == results["reference"][0]
        assert results["workspace"][1] == results["reference"][1]
        np.testing.assert_array_equal(results["workspace"][2],
                                      results["reference"][2])

    def test_float32_epoch_and_decode_bitwise(self, tiny_config, tiny_dataset,
                                              tiny_world):
        """The workspace contract is dtype-independent: at float32 the
        same (float32) ops run into pooled buffers, so results match the
        float32 reference bit for bit."""
        results = {}
        for backend in ("reference", "workspace"):
            with nn.use_compute_dtype("float32"), nn.use_backend(backend):
                model = LTEModel(tiny_config, np.random.default_rng(3))
                builder = ConstraintMaskBuilder(tiny_world.network,
                                                radius=400.0)
                trainer = LocalTrainer(model, builder,
                                       TrainingConfig(batch_size=8, lr=1e-3),
                                       np.random.default_rng(4))
                loss = trainer.train_epoch(tiny_dataset)
                model.eval()
                batch = tiny_dataset.full_batch()
                log_mask = builder.build_for(batch, model)
                with nn.no_grad():
                    decoded = decode_model(model, batch, log_mask)
                results[backend] = (loss, decoded.segments,
                                    decoded.log_probs.data)
        assert results["workspace"][0] == results["reference"][0]
        np.testing.assert_array_equal(results["workspace"][1],
                                      results["reference"][1])
        np.testing.assert_array_equal(results["workspace"][2],
                                      results["reference"][2])


# ----------------------------------------------------------------------
# numba backend (present only when the package imports)
# ----------------------------------------------------------------------
class TestNumbaGating:
    def test_numba_registration_matches_importability(self):
        try:
            import numba  # noqa: F401
            importable = True
        except Exception:
            importable = False
        assert HAVE_NUMBA == importable

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed: selectable")
    def test_missing_numba_is_not_selectable(self):
        with pytest.raises(ValueError, match="unknown backend"):
            nn.set_backend("numba")

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_scan_tracks_reference(self, tiny_config, tiny_dataset,
                                         tiny_world):
        out_ref, loss_ref, _ = _forward_backward(
            "reference", tiny_config, tiny_dataset, tiny_world)
        out_nb, loss_nb, _ = _forward_backward(
            "numba", tiny_config, tiny_dataset, tiny_world)
        # Jitted activations (numba's own exp/tanh, fused chains) are
        # not bitwise: tolerance, well inside float32 resolution.
        np.testing.assert_allclose(out_nb.log_probs.data,
                                   out_ref.log_probs.data, atol=1e-6)
        np.testing.assert_array_equal(out_nb.segments, out_ref.segments)
        assert abs(loss_nb - loss_ref) / abs(loss_ref) < 1e-6


# ----------------------------------------------------------------------
# backend switches invalidate lazily-built caches
# ----------------------------------------------------------------------
class TestBackendCacheKeying:
    def test_collation_cache_is_backend_keyed(self, tiny_dataset):
        with nn.use_backend("reference"):
            b_ref = tiny_dataset.full_batch()
        with nn.use_backend("workspace"):
            b_ws = tiny_dataset.full_batch()
        assert b_ref is not b_ws  # distinct cache entries per backend
        np.testing.assert_array_equal(b_ref.tgt_segments, b_ws.tgt_segments)
        with nn.use_backend("reference"):
            assert tiny_dataset.full_batch() is b_ref  # still cached

    def test_sparse_value_mirror_rebuilds_on_backend_switch(self, tiny_world,
                                                            tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        with nn.use_compute_dtype("float32"):
            with nn.use_backend("reference"):
                builder.build_sparse(batch)
                mirror_ref = builder._sp_values_cast
            with nn.use_backend("workspace"):
                sparse_ws = builder.build_sparse(batch)
                mirror_ws = builder._sp_values_cast
        assert mirror_ref is not None
        assert mirror_ws is not mirror_ref  # re-materialised per backend
        np.testing.assert_array_equal(mirror_ws, mirror_ref)
        assert sparse_ws.log_values.dtype == np.float32

    def test_dense_row_matrix_rebuilds_on_backend_switch(self, tiny_world,
                                                         tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        with nn.use_backend("reference"):
            dense_ref = builder.build(batch)
            matrix_ref = builder._row_matrix
        with nn.use_backend("workspace"):
            dense_ws = builder.build(batch)
            matrix_ws = builder._row_matrix
        assert matrix_ws is not matrix_ref
        np.testing.assert_array_equal(dense_ws, dense_ref)

    def test_step_plan_cache_clears_on_generation_move(self):
        from repro.core import mask as mask_mod

        indptr = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        sm = mask_mod.SparseConstraintMask(
            (2, 2, 5), indptr, np.arange(4, dtype=np.int64),
            np.linspace(-1.0, -0.1, 4))
        rows = np.arange(2, dtype=np.int64)
        key = (id(sm), rows.tobytes())
        with nn.use_backend("workspace"):
            step_ref = sm.step(0, rows)
            stepped = mask_mod._mask_step_planned(sm, 0, rows)
            assert key in mask_mod._STEP_PLANS
            np.testing.assert_array_equal(stepped.to_dense(),
                                          step_ref.to_dense())
        # A real backend switch moves the generation (a no-op switch —
        # e.g. when the ambient backend is already workspace via
        # REPRO_BACKEND — deliberately does not); after the move the
        # next planned call must rebuild rather than serve the stale
        # plan.
        with nn.use_backend("reference"):
            pass
        with nn.use_backend("workspace"):
            mask_mod._mask_step_planned(sm, 1, rows)
            assert mask_mod._STEP_PLANS[key].t0 == 1  # fresh, not the t0=0 one


# ----------------------------------------------------------------------
# federated shipping: RoundTask carries the backend
# ----------------------------------------------------------------------
class TestFederatedBackendShipping:
    def test_round_task_ships_backend(self):
        from repro.federated.runner import RoundTask

        assert RoundTask.__dataclass_fields__["backend"].default \
            == "reference"

    def _run(self, tiny_world, tiny_config, workers):
        clients, global_test = build_federation(tiny_world, num_clients=3,
                                                keep_ratio=0.25)
        config = FederatedConfig(
            rounds=2, client_fraction=1.0, local_epochs=1,
            training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
            use_meta=False, workers=workers,
        )
        trainer = FederatedTrainer(
            lambda: LTEModel(tiny_config, np.random.default_rng(33)),
            clients, ConstraintMaskBuilder(tiny_world.network, radius=400.0),
            config, global_test, seed=0,
        )
        result = trainer.run()
        return result.history, np.asarray(trainer.server.global_flat(),
                                          dtype=np.float64)

    @needs_fork
    def test_workspace_serial_and_parallel_bit_identical(self, tiny_world,
                                                         tiny_config):
        """Workers re-assert the shipped backend, so a parallel run
        under the workspace backend reproduces the serial run exactly —
        which, by the workspace contract, is also the reference run."""
        with nn.use_backend("workspace"):
            ws_serial_history, ws_serial_flat = self._run(
                tiny_world, tiny_config, workers=0)
            ws_parallel_history, ws_parallel_flat = self._run(
                tiny_world, tiny_config, workers=2)
        with nn.use_backend("reference"):
            ref_history, ref_flat = self._run(tiny_world, tiny_config,
                                              workers=0)
        assert ws_serial_history == ws_parallel_history
        np.testing.assert_array_equal(ws_serial_flat, ws_parallel_flat)
        assert ws_serial_history == ref_history
        np.testing.assert_array_equal(ws_serial_flat, ref_flat)
