"""Finite-difference verification of every autograd primitive.

Each op's analytic gradient is compared against central differences on
random inputs; hypothesis drives the shapes and values for the
broadcasting-sensitive ops.

The whole module is ``float64_only``: central differences with
``EPS=1e-6`` are meaningless at float32 resolution (``f(x ± 1e-6)``
rounds to ``f(x)``), and the 1e-10 property tolerances are
float64-grade by construction.  These tests pin the analytic gradients
against the reference substrate once; float32 gradient fidelity is
covered separately by ``tests/nn/test_compute_dtype.py``, which
compares float32 gradients against this float64 reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor

pytestmark = pytest.mark.float64_only

EPS = 1e-6
TOL = 1e-5


def finite_diff_check(fn, *arrays, tol=TOL):
    """Compare analytic grads of ``fn(*tensors).sum()`` to central differences."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = fn(*tensors)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    for tensor, array in zip(tensors, arrays):
        analytic = tensor.grad
        assert analytic is not None, "gradient was not populated"
        numeric = np.zeros_like(array, dtype=np.float64)
        flat = array.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + EPS
            plus = _scalar(fn, arrays)
            flat[i] = original - EPS
            minus = _scalar(fn, arrays)
            flat[i] = original
            numeric.reshape(-1)[i] = (plus - minus) / (2 * EPS)
        np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


def _scalar(fn, arrays):
    out = fn(*[Tensor(a) for a in arrays])
    return float(out.data.sum())


class TestElementwiseGradients:
    def test_add_broadcast(self, fresh_rng):
        finite_diff_check(lambda a, b: a + b,
                          fresh_rng.standard_normal((3, 4)),
                          fresh_rng.standard_normal((4,)))

    def test_sub_broadcast(self, fresh_rng):
        finite_diff_check(lambda a, b: a - b,
                          fresh_rng.standard_normal((2, 3, 4)),
                          fresh_rng.standard_normal((3, 1)))

    def test_mul(self, fresh_rng):
        finite_diff_check(lambda a, b: a * b,
                          fresh_rng.standard_normal((3, 4)),
                          fresh_rng.standard_normal((3, 4)))

    def test_div(self, fresh_rng):
        finite_diff_check(lambda a, b: a / b,
                          fresh_rng.standard_normal((3, 4)),
                          fresh_rng.standard_normal((3, 4)) + 3.0)

    def test_neg_pow(self, fresh_rng):
        finite_diff_check(lambda a: (-a) ** 3, fresh_rng.standard_normal((5,)))

    def test_exp_log(self, fresh_rng):
        finite_diff_check(lambda a: (a.exp() + 1.0).log(),
                          fresh_rng.standard_normal((4, 2)))

    def test_tanh_sigmoid(self, fresh_rng):
        finite_diff_check(lambda a: a.tanh() * a.sigmoid(),
                          fresh_rng.standard_normal((6,)))

    def test_relu_away_from_kink(self, fresh_rng):
        x = fresh_rng.standard_normal((10,))
        x[np.abs(x) < 0.1] = 0.5  # avoid the nondifferentiable point
        finite_diff_check(lambda a: a.relu(), x)

    def test_clip_away_from_edges(self, fresh_rng):
        x = fresh_rng.uniform(-2, 2, size=(8,))
        x[np.abs(np.abs(x) - 1.0) < 0.05] = 0.0
        finite_diff_check(lambda a: a.clip(-1.0, 1.0), x)

    def test_sqrt(self, fresh_rng):
        finite_diff_check(lambda a: a.sqrt(), fresh_rng.uniform(0.5, 3.0, size=(5,)))


class TestMatmulGradients:
    def test_mat_mat(self, fresh_rng):
        finite_diff_check(lambda a, b: a @ b,
                          fresh_rng.standard_normal((3, 4)),
                          fresh_rng.standard_normal((4, 5)))

    def test_batched(self, fresh_rng):
        finite_diff_check(lambda a, b: a @ b,
                          fresh_rng.standard_normal((2, 3, 4)),
                          fresh_rng.standard_normal((2, 4, 5)))

    def test_mat_vec(self, fresh_rng):
        finite_diff_check(lambda a, b: a @ b,
                          fresh_rng.standard_normal((3, 4)),
                          fresh_rng.standard_normal((4,)))

    def test_vec_mat(self, fresh_rng):
        finite_diff_check(lambda a, b: a @ b,
                          fresh_rng.standard_normal((4,)),
                          fresh_rng.standard_normal((4, 3)))

    def test_vec_vec(self, fresh_rng):
        finite_diff_check(lambda a, b: a @ b,
                          fresh_rng.standard_normal((4,)),
                          fresh_rng.standard_normal((4,)))

    def test_broadcast_batched(self, fresh_rng):
        finite_diff_check(lambda a, b: a @ b,
                          fresh_rng.standard_normal((2, 3, 4)),
                          fresh_rng.standard_normal((4, 5)))


class TestReductionsAndShapes:
    def test_sum_axis(self, fresh_rng):
        finite_diff_check(lambda a: a.sum(axis=1), fresh_rng.standard_normal((3, 4)))

    def test_sum_keepdims(self, fresh_rng):
        finite_diff_check(lambda a: a.sum(axis=-1, keepdims=True) * 2.0,
                          fresh_rng.standard_normal((2, 5)))

    def test_mean(self, fresh_rng):
        finite_diff_check(lambda a: a.mean(axis=0), fresh_rng.standard_normal((4, 3)))

    def test_max_no_ties(self, fresh_rng):
        x = fresh_rng.permutation(12).astype(np.float64).reshape(3, 4)
        finite_diff_check(lambda a: a.max(axis=1), x)

    def test_reshape_transpose(self, fresh_rng):
        finite_diff_check(lambda a: a.reshape(6, 2).T, fresh_rng.standard_normal((3, 4)))

    def test_getitem_slice(self, fresh_rng):
        finite_diff_check(lambda a: a[1:, :2], fresh_rng.standard_normal((3, 4)))

    def test_getitem_fancy(self, fresh_rng):
        idx = np.array([0, 2, 2])
        finite_diff_check(lambda a: a[idx], fresh_rng.standard_normal((4, 3)))


class TestEngineSemantics:
    def test_grad_accumulates_when_reused(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_double_backward_accumulates(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_detach_blocks_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * x
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0])  # only the non-detached path

    def test_no_grad_context(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with nn.no_grad():
            y = x * 3.0
        assert not y.requires_grad
        assert nn.is_grad_enabled()

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_long_chain_does_not_recurse(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).backward()
        np.testing.assert_allclose(x.grad, [7.0])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4), cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_property_mul_gradient_matches_other_operand(rows, cols, seed):
    """d(sum(a*b))/da == b exactly, for any shapes/values."""
    r = np.random.default_rng(seed)
    a = Tensor(r.standard_normal((rows, cols)), requires_grad=True)
    b_val = r.standard_normal((rows, cols))
    (a * Tensor(b_val)).sum().backward()
    np.testing.assert_allclose(a.grad, b_val)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 6), seed=st.integers(0, 10_000),
    shift=st.floats(-100, 100, allow_nan=False),
)
def test_property_softmax_shift_invariance(n, seed, shift):
    """softmax(x + c) == softmax(x) - the numerically stable property."""
    r = np.random.default_rng(seed)
    x = r.standard_normal(n)
    s1 = nn.softmax(Tensor(x)).data
    s2 = nn.softmax(Tensor(x + shift)).data
    np.testing.assert_allclose(s1, s2, atol=1e-10)
    np.testing.assert_allclose(s1.sum(), 1.0)


@settings(max_examples=25, deadline=None)
@given(
    b=st.integers(1, 3), t=st.integers(1, 5), seed=st.integers(0, 10_000)
)
def test_property_log_softmax_grad_rows_sum_zero(b, t, seed):
    """Rows of the log-softmax Jacobian-vector product sum to zero when
    the upstream gradient is one-hot (probability conservation)."""
    r = np.random.default_rng(seed)
    x = Tensor(r.standard_normal((b, t)), requires_grad=True)
    out = nn.log_softmax(x, axis=-1)
    out[np.arange(b), r.integers(0, t, size=b)].sum().backward()
    np.testing.assert_allclose(x.grad.sum(axis=-1), np.zeros(b), atol=1e-10)
