"""Tests for loss functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_matches_manual(self, fresh_rng, float_tol):
        logits = fresh_rng.standard_normal((4, 3))
        targets = np.array([0, 2, 1, 2])
        loss = nn.cross_entropy(Tensor(logits), targets).item()
        # Manual reference runs in float64; the loss inherits the
        # compute dtype's rounding.
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(4), targets]).mean()
        np.testing.assert_allclose(loss, expected,
                                   rtol=max(float_tol, 1e-10))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 0] = 100.0
        loss = nn.cross_entropy(Tensor(logits), np.array([1, 0])).item()
        assert loss < 1e-6

    def test_weights_exclude_samples(self, fresh_rng):
        logits = fresh_rng.standard_normal((3, 4))
        targets = np.array([0, 1, 2])
        weighted = nn.cross_entropy(Tensor(logits), targets,
                                    weights=np.array([1.0, 1.0, 0.0])).item()
        subset = nn.cross_entropy(Tensor(logits[:2]), targets[:2]).item()
        np.testing.assert_allclose(weighted, subset, rtol=1e-10)

    def test_invalid_targets(self, fresh_rng):
        logits = Tensor(fresh_rng.standard_normal((2, 3)))
        with pytest.raises(IndexError):
            nn.cross_entropy(logits, np.array([0, 3]))
        with pytest.raises(ValueError):
            nn.cross_entropy(logits, np.array([0]))

    def test_zero_weights_raise(self, fresh_rng):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(fresh_rng.standard_normal((2, 3))),
                             np.array([0, 1]), weights=np.zeros(2))

    def test_gradient_is_probs_minus_onehot(self, fresh_rng):
        logits = Tensor(fresh_rng.standard_normal((2, 3)), requires_grad=True)
        targets = np.array([1, 0])
        nn.cross_entropy(logits, targets).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        onehot = np.zeros((2, 3))
        onehot[np.arange(2), targets] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 2, atol=1e-10)


class TestNLL:
    def test_consistent_with_cross_entropy(self, fresh_rng):
        logits = fresh_rng.standard_normal((5, 4))
        targets = np.array([0, 1, 2, 3, 0])
        ce = nn.cross_entropy(Tensor(logits), targets).item()
        nll = nn.nll_from_log_probs(nn.log_softmax(Tensor(logits)), targets).item()
        np.testing.assert_allclose(ce, nll, rtol=1e-10)


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        loss = nn.mse_loss(pred, np.array([1.0, 0.0, 3.0])).item()
        np.testing.assert_allclose(loss, 4.0 / 3.0)

    def test_weighted(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = np.array([0.0, 0.0])
        loss = nn.mse_loss(pred, target, weights=np.array([0.0, 1.0])).item()
        np.testing.assert_allclose(loss, 4.0)

    def test_gradient(self):
        pred = Tensor(np.array([3.0]), requires_grad=True)
        nn.mse_loss(pred, np.array([1.0])).backward()
        np.testing.assert_allclose(pred.grad, [4.0])  # 2 * (3 - 1)


class TestDistillation:
    def test_zero_when_identical(self, fresh_rng):
        x = Tensor(fresh_rng.standard_normal((3, 4)))
        assert nn.distillation_loss(x, x).item() == 0.0

    def test_teacher_receives_no_gradient(self, fresh_rng):
        teacher = Tensor(fresh_rng.standard_normal((2, 3)), requires_grad=True)
        student = Tensor(fresh_rng.standard_normal((2, 3)), requires_grad=True)
        nn.distillation_loss(teacher, student).backward()
        assert teacher.grad is None
        assert student.grad is not None

    def test_pulls_student_toward_teacher(self, fresh_rng):
        teacher = Tensor(np.array([1.0, -1.0]))
        student = Tensor(np.array([0.0, 0.0]), requires_grad=True)
        nn.distillation_loss(teacher, student).backward()
        # Gradient must point away from the teacher (loss decreases by
        # moving opposite to the gradient, i.e. toward the teacher).
        assert student.grad[0] < 0
        assert student.grad[1] > 0


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 8), c=st.integers(2, 6), seed=st.integers(0, 10_000))
def test_property_cross_entropy_nonnegative_and_bounded(n, c, seed):
    """CE >= 0 always, and CE <= log(C) + margin for near-uniform logits."""
    r = np.random.default_rng(seed)
    logits = r.standard_normal((n, c)) * 0.01
    targets = r.integers(0, c, size=n)
    loss = nn.cross_entropy(Tensor(logits), targets).item()
    assert loss >= 0.0
    assert loss <= np.log(c) + 0.1
