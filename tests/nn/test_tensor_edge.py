"""Edge-case tests for Tensor semantics not covered by the FD checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestOperatorVariants:
    def test_rsub(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = 5.0 - x
        np.testing.assert_allclose(y.data, [4.0, 3.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_rtruediv(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        y = 8.0 / x
        np.testing.assert_allclose(y.data, [4.0, 2.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [-2.0, -0.5])

    def test_radd_rmul(self):
        x = Tensor(np.array([3.0]))
        assert (1.0 + x).data[0] == 4.0
        assert (2.0 * x).data[0] == 6.0

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))  # type: ignore[operator]

    def test_comparisons_return_arrays(self):
        x = Tensor(np.array([1.0, 3.0]))
        assert (x > 2.0).tolist() == [False, True]
        assert (x <= 3.0).all()
        assert (x >= Tensor(np.array([1.0, 4.0]))).tolist() == [True, False]


class TestIntrospection:
    def test_repr_flags_grad(self):
        assert "requires_grad=True" in repr(Tensor(np.ones(1), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.ones(1)))

    def test_len_size_ndim(self):
        x = Tensor(np.zeros((3, 4)))
        assert len(x) == 3
        assert x.size == 12
        assert x.ndim == 2

    def test_item_on_scalar(self):
        assert Tensor(np.array(2.5)).item() == 2.5

    def test_tensor_wrapping_tensor_shares_data(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        assert b.data is a.data


class TestGetitemBackward:
    def test_boolean_mask_indexing(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        mask = np.array([True, False, True])
        y = x[mask]
        assert y.shape == (2,)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])

    def test_repeated_fancy_index_accumulates(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = x[np.array([0, 0, 1])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0])

    def test_tuple_index(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x[1, 2]
        y.backward()
        expected = np.zeros((2, 3))
        expected[1, 2] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestFactories:
    def test_zeros_ones_shapes(self):
        assert nn.zeros(2, 3).shape == (2, 3)
        assert nn.ones((4,)).shape == (4,)
        assert nn.zeros((2, 2), requires_grad=True).requires_grad

    def test_randn_seeded(self):
        a = nn.randn(5, rng=np.random.default_rng(1))
        b = nn.randn(5, rng=np.random.default_rng(1))
        np.testing.assert_allclose(a.data, b.data)

    def test_as_tensor_idempotent(self):
        x = Tensor(np.ones(2))
        assert nn.as_tensor(x) is x
        assert isinstance(nn.as_tensor([1.0, 2.0]), Tensor)
