"""Equivalence of the fused sequence kernels with the per-step tape path.

The fused RNN/GRU/LSTM scans register one tape node with a hand-written
BPTT backward; these tests pin them to the per-step reference
implementation (outputs, input/initial-state gradients, and every
parameter gradient to atol 1e-10) and check the fused backward against
central finite differences directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor

LAYERS = [("rnn", nn.RNN), ("gru", nn.GRU), ("lstm", nn.LSTM)]


def _run_layer(layer, x_data, mask, h0_data, fused):
    """One forward + seeded backward; returns outputs and all grads."""
    with nn.use_fused_kernels(fused):
        x = Tensor(x_data, requires_grad=True)
        h0 = Tensor(h0_data, requires_grad=True) if h0_data is not None else None
        layer.zero_grad()
        outputs, last = layer(x, h0=h0, mask=mask)
        seed = np.linspace(-1.0, 1.0, outputs.size).reshape(outputs.shape)
        (outputs * Tensor(seed)).sum().backward()
    return {
        "outputs": outputs.data.copy(),
        "last": last.data.copy(),
        "x_grad": x.grad.copy(),
        "h0_grad": h0.grad.copy() if h0 is not None else None,
        "param_grads": {name: p.grad.copy()
                        for name, p in layer.named_parameters()},
    }


@pytest.mark.parametrize("name,cls", LAYERS)
@pytest.mark.parametrize("with_mask", [False, True])
@pytest.mark.parametrize("with_h0", [False, True])
def test_fused_matches_stepwise(name, cls, with_mask, with_h0, fresh_rng,
                                float_tol):
    layer = cls(3, 5, np.random.default_rng(11))
    x_data = fresh_rng.standard_normal((4, 7, 3))
    mask = fresh_rng.random((4, 7)) > 0.3 if with_mask else None
    if with_h0:
        width = 10 if name == "lstm" else 5
        h0_data = fresh_rng.standard_normal((4, width))
    else:
        h0_data = None

    fused = _run_layer(layer, x_data, mask, h0_data, fused=True)
    stepwise = _run_layer(layer, x_data, mask, h0_data, fused=False)

    # float64 keeps the historical 1e-12/1e-10 contract; at float32
    # both paths run float32 kernels but round in different op orders
    # (the fused scan accumulates bias grads in float64, the tape per
    # step), so values agree to the audited float32 tolerance instead.
    out_tol = max(float_tol, 1e-12)
    grad_tol = max(float_tol, 1e-10)
    np.testing.assert_allclose(fused["outputs"], stepwise["outputs"],
                               atol=out_tol)
    np.testing.assert_allclose(fused["last"], stepwise["last"], atol=out_tol)
    np.testing.assert_allclose(fused["x_grad"], stepwise["x_grad"],
                               atol=grad_tol)
    if with_h0:
        np.testing.assert_allclose(fused["h0_grad"], stepwise["h0_grad"],
                                   atol=grad_tol)
    for key, grad in fused["param_grads"].items():
        np.testing.assert_allclose(grad, stepwise["param_grads"][key],
                                   atol=grad_tol, err_msg=f"{name}.{key}")


@pytest.mark.parametrize("name,cls", LAYERS)
@pytest.mark.float64_only  # eps=1e-6 central differences round away
def test_fused_backward_matches_finite_differences(name, cls, fresh_rng):
    """Central finite differences over every parameter of a small scan."""
    layer = cls(2, 3, np.random.default_rng(5))
    x_data = fresh_rng.standard_normal((2, 4, 2))
    seed = np.linspace(0.5, 1.5, 2 * 4 * layer.hidden_size).reshape(
        2, 4, layer.hidden_size)

    def loss_value():
        with nn.no_grad(), nn.use_fused_kernels(True):
            outputs, _ = layer(Tensor(x_data))
        return float((outputs.data * seed).sum())

    with nn.use_fused_kernels(True):
        x = Tensor(x_data, requires_grad=True)
        layer.zero_grad()
        outputs, _ = layer(x)
        (outputs * Tensor(seed)).sum().backward()

    eps = 1e-6
    for pname, param in layer.named_parameters():
        flat = param.data.reshape(-1)
        for idx in range(0, flat.size, max(1, flat.size // 5)):
            original = flat[idx]
            flat[idx] = original + eps
            up = loss_value()
            flat[idx] = original - eps
            down = loss_value()
            flat[idx] = original
            numeric = (up - down) / (2 * eps)
            analytic = param.grad.reshape(-1)[idx]
            assert abs(numeric - analytic) < 1e-4, (
                f"{name}.{pname}[{idx}]: fd {numeric} vs grad {analytic}"
            )


def test_fused_is_default_and_flag_scopes():
    assert nn.fused_kernels_enabled()
    with nn.use_fused_kernels(False):
        assert not nn.fused_kernels_enabled()
        with nn.use_fused_kernels(True):
            assert nn.fused_kernels_enabled()
        assert not nn.fused_kernels_enabled()
    assert nn.fused_kernels_enabled()


def test_fused_scan_without_grad_records_no_tape(fresh_rng):
    gru = nn.GRU(2, 3, fresh_rng)
    with nn.no_grad():
        outputs, _ = gru(Tensor(fresh_rng.standard_normal((2, 5, 2))))
    assert not outputs.requires_grad
    assert outputs._parents == ()
