"""Tests for RNN/GRU cells and sequence wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestCells:
    def test_rnn_cell_matches_manual(self, fresh_rng, float_tol):
        cell = nn.RNNCell(3, 4, fresh_rng)
        x = fresh_rng.standard_normal((2, 3))
        h = fresh_rng.standard_normal((2, 4))
        out = cell(Tensor(x), Tensor(h)).data
        # The manual recompute upcasts to float64; the cell runs at the
        # compute dtype.
        expected = np.tanh(x @ cell.w_x.data + h @ cell.w_h.data + cell.bias.data)
        np.testing.assert_allclose(out, expected, atol=max(float_tol, 1e-12))

    def test_gru_cell_bounded(self, fresh_rng):
        cell = nn.GRUCell(3, 4, fresh_rng)
        out = cell(Tensor(fresh_rng.standard_normal((5, 3)) * 10),
                   Tensor(np.zeros((5, 4))))
        assert (np.abs(out.data) <= 1.0).all()  # convex combo of 0 and tanh

    def test_gru_zero_update_gate_keeps_state(self, fresh_rng):
        cell = nn.GRUCell(2, 3, fresh_rng)
        # Force the update gate to ~0 via a huge negative bias.
        cell.b_z.data = np.full(3, -1e3)
        h = fresh_rng.standard_normal((1, 3))
        out = cell(Tensor(fresh_rng.standard_normal((1, 2))), Tensor(h))
        np.testing.assert_allclose(out.data, h, atol=1e-6)

    def test_initial_state_shape(self, fresh_rng):
        assert nn.GRUCell(2, 7, fresh_rng).initial_state(4).shape == (4, 7)


class TestSequenceWrappers:
    def test_output_shapes(self, fresh_rng):
        gru = nn.GRU(3, 5, fresh_rng)
        outputs, last = gru(Tensor(fresh_rng.standard_normal((2, 6, 3))))
        assert outputs.shape == (2, 6, 5)
        assert last.shape == (2, 5)
        np.testing.assert_allclose(outputs.data[:, -1], last.data)

    def test_mask_freezes_padded_steps(self, fresh_rng):
        gru = nn.GRU(3, 4, fresh_rng)
        x = fresh_rng.standard_normal((2, 5, 3))
        mask = np.array([[True] * 5, [True, True, False, False, False]])
        outputs, last = gru(Tensor(x), mask=mask)
        # Second sequence's state must be frozen after step 1.
        np.testing.assert_allclose(outputs.data[1, 2], outputs.data[1, 1])
        np.testing.assert_allclose(last.data[1], outputs.data[1, 1])

    def test_mask_equivalent_to_truncation(self, fresh_rng):
        gru = nn.GRU(2, 3, fresh_rng)
        x = fresh_rng.standard_normal((1, 6, 2))
        mask = np.zeros((1, 6), dtype=bool)
        mask[0, :4] = True
        _, last_masked = gru(Tensor(x), mask=mask)
        _, last_trunc = gru(Tensor(x[:, :4]))
        np.testing.assert_allclose(last_masked.data, last_trunc.data)

    def test_rejects_2d_input(self, fresh_rng):
        with pytest.raises(ValueError):
            nn.GRU(2, 3, fresh_rng)(Tensor(np.ones((4, 2))))

    def test_gradients_reach_early_steps(self, fresh_rng):
        gru = nn.GRU(2, 3, fresh_rng)
        x = Tensor(fresh_rng.standard_normal((1, 8, 2)), requires_grad=True)
        _, last = gru(x)
        last.sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[0, 0]).sum() > 0  # BPTT reaches step 0

    def test_custom_initial_state(self, fresh_rng):
        rnn = nn.RNN(2, 3, fresh_rng)
        h0 = Tensor(fresh_rng.standard_normal((2, 3)))
        x = Tensor(np.zeros((2, 1, 2)))
        outputs, _ = rnn(x, h0=h0)
        expected = np.tanh(h0.data @ rnn.cell.w_h.data + rnn.cell.bias.data)
        np.testing.assert_allclose(outputs.data[:, 0], expected)


class TestLearnability:
    def test_gru_learns_to_memorise_first_token(self, fresh_rng):
        """A GRU should learn to output the first input element (needs
        long-range memory, which an untrained model lacks)."""
        gru = nn.GRU(1, 8, fresh_rng)
        head = nn.Linear(8, 1, fresh_rng)
        params = gru.parameters() + head.parameters()
        opt = nn.Adam(params, lr=0.02)
        rng = np.random.default_rng(0)
        losses = []
        for _ in range(120):
            x = rng.standard_normal((8, 6, 1))
            target = x[:, 0, 0:1]
            opt.zero_grad()
            _, h = gru(Tensor(x))
            loss = nn.mse_loss(head(h), target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.5
