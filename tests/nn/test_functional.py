"""Tests for multi-input functional ops (concat/stack/softmax/etc.)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor


class TestConcatStack:
    def test_concat_values_and_grad(self, fresh_rng):
        a = Tensor(fresh_rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(fresh_rng.standard_normal((2, 2)), requires_grad=True)
        out = nn.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))

    def test_concat_axis0(self, fresh_rng):
        parts = [Tensor(fresh_rng.standard_normal((i + 1, 2))) for i in range(3)]
        out = nn.concat(parts, axis=0)
        assert out.shape == (6, 2)
        np.testing.assert_allclose(out.data[:1], parts[0].data)

    def test_stack_new_axis(self, fresh_rng):
        parts = [Tensor(fresh_rng.standard_normal((2, 3)), requires_grad=True)
                 for _ in range(4)]
        out = nn.stack(parts, axis=1)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        for p in parts:
            np.testing.assert_allclose(p.grad, np.ones((2, 3)))

    def test_stack_grad_routes_to_right_slice(self, fresh_rng):
        a = Tensor(np.zeros(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = nn.stack([a, b], axis=0)
        seed = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        out.backward(seed)
        np.testing.assert_allclose(a.grad, [1, 2, 3])
        np.testing.assert_allclose(b.grad, [4, 5, 6])


class TestSoftmaxFamily:
    def test_softmax_matches_manual(self, fresh_rng, float_tol):
        x = fresh_rng.standard_normal((3, 5))
        expected = np.exp(x) / np.exp(x).sum(axis=-1, keepdims=True)
        np.testing.assert_allclose(nn.softmax(Tensor(x)).data, expected,
                                   atol=max(float_tol, 1e-12))

    def test_log_softmax_is_log_of_softmax(self, fresh_rng):
        x = Tensor(fresh_rng.standard_normal((4, 6)))
        np.testing.assert_allclose(
            nn.log_softmax(x).data, np.log(nn.softmax(x).data), atol=1e-12
        )

    @pytest.mark.float64_only  # eps=1e-6 central differences round away
    def test_softmax_gradient_finite_diff(self, fresh_rng):
        x_val = fresh_rng.standard_normal(5)
        x = Tensor(x_val, requires_grad=True)
        nn.softmax(x)[2].backward()
        eps = 1e-6
        for i in range(5):
            bumped = x_val.copy()
            bumped[i] += eps
            plus = nn.softmax(Tensor(bumped)).data[2]
            bumped[i] -= 2 * eps
            minus = nn.softmax(Tensor(bumped)).data[2]
            np.testing.assert_allclose(x.grad[i], (plus - minus) / (2 * eps),
                                       rtol=1e-4, atol=1e-8)

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([1000.0, 0.0, -1000.0]))
        s = nn.softmax(x).data
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s.sum(), 1.0)


class TestEmbeddingLookup:
    def test_lookup_and_scatter_grad(self, fresh_rng):
        w = Tensor(fresh_rng.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([1, 1, 4])
        out = nn.embedding_lookup(w, idx)
        np.testing.assert_allclose(out.data, w.data[idx])
        out.sum().backward()
        expected = np.zeros((5, 3))
        expected[1] = 2.0  # row used twice
        expected[4] = 1.0
        np.testing.assert_allclose(w.grad, expected)

    def test_multidim_indices(self, fresh_rng):
        w = Tensor(fresh_rng.standard_normal((7, 4)), requires_grad=True)
        idx = np.array([[0, 1], [2, 3]])
        out = nn.embedding_lookup(w, idx)
        assert out.shape == (2, 2, 4)


class TestDropout:
    def test_eval_mode_identity(self, fresh_rng):
        x = Tensor(fresh_rng.standard_normal((10, 10)))
        out = nn.dropout(x, 0.5, fresh_rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_inverted_scaling_preserves_mean(self, fresh_rng):
        x = Tensor(np.ones((200, 200)))
        out = nn.dropout(x, 0.3, fresh_rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_gradient_masked_consistently(self, fresh_rng):
        x = Tensor(np.ones((50,)), requires_grad=True)
        out = nn.dropout(x, 0.5, fresh_rng, training=True)
        out.sum().backward()
        zeroed = out.data == 0
        np.testing.assert_allclose(x.grad[zeroed], 0.0)
        assert (x.grad[~zeroed] > 0).all()

    def test_invalid_probability(self, fresh_rng):
        with pytest.raises(ValueError):
            nn.dropout(Tensor(np.ones(3)), 1.0, fresh_rng, training=True)


class TestWhereMaskAndPad:
    def test_where_mask_forward_and_grad(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        mask = np.array([True, False, True])
        out = nn.where_mask(mask, x, -9.0)
        np.testing.assert_allclose(out.data, [1.0, -9.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])

    def test_pad_sequences(self):
        batch, mask = nn.pad_sequences([np.ones((2, 3)), np.ones((4, 3))], pad_value=-1)
        assert batch.shape == (2, 4, 3)
        assert mask.shape == (2, 4)
        assert mask[0].tolist() == [True, True, False, False]
        np.testing.assert_allclose(batch[0, 2:], -1.0)

    def test_pad_sequences_empty_list(self):
        with pytest.raises(ValueError):
            nn.pad_sequences([])


@settings(max_examples=25, deadline=None)
@given(
    lengths=st.lists(st.integers(1, 6), min_size=1, max_size=5),
    seed=st.integers(0, 1000),
)
def test_property_pad_roundtrip(lengths, seed):
    """Padding preserves every original row exactly where mask is True."""
    r = np.random.default_rng(seed)
    arrays = [r.standard_normal((n, 2)) for n in lengths]
    batch, mask = nn.pad_sequences(arrays)
    for i, a in enumerate(arrays):
        np.testing.assert_allclose(batch[i][mask[i]], a)
        assert mask[i].sum() == len(a)
