"""The float32 compute substrate: dtype propagation, mixed-precision
accumulation, the optimizer master-weight contract, and the audited
float32-vs-float64 equivalences.

Complements the dtype-parametrized tier-1 contracts (which re-run under
``REPRO_COMPUTE_DTYPE=float32`` in CI): here every test pins its own
compute dtype via :func:`repro.nn.use_compute_dtype`, so the float32
claims hold no matter which substrate the suite as a whole runs on.

Audited float32 tolerances (measured on the tiny world, ~25x margin):

========================  =========  ==========================________
quantity                  bound      measured
========================  =========  ==============================
log-probs vs float64      1e-4       ≤ ~4e-6
loss (relative)           1e-5       ≤ ~7e-8
gradients vs float64      1e-3 rel   ≤ ~1e-5 rel
segment accuracy drift    0.02       0.0
========================  =========  ==============================
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.core.training import LocalTrainer, model_segment_accuracy
from repro.federated import FederatedConfig, FederatedTrainer, build_federation
from repro.serving import decode_model

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="no fork start method on this platform",
)

F32 = np.dtype(np.float32)
F64 = np.dtype(np.float64)


# ----------------------------------------------------------------------
# config API
# ----------------------------------------------------------------------
class TestDtypeConfig:
    def test_float64_is_the_default_reference(self):
        # The suite may be running under REPRO_COMPUTE_DTYPE forcing, so
        # assert the default through a fresh scope instead of globally.
        with nn.use_compute_dtype("float64"):
            assert nn.get_compute_dtype() == F64
            assert nn.Tensor([1.0]).data.dtype == F64

    def test_set_returns_previous_and_context_restores(self):
        before = nn.get_compute_dtype()
        previous = nn.set_compute_dtype("float32")
        assert previous == before
        assert nn.get_compute_dtype() == F32
        nn.set_compute_dtype(previous)
        with nn.use_compute_dtype("float32"):
            assert nn.get_compute_dtype() == F32
        assert nn.get_compute_dtype() == before

    def test_rejects_non_float_dtypes(self):
        for bad in ("int64", "float16", "complex128"):
            with pytest.raises(ValueError):
                nn.set_compute_dtype(bad)

    def test_compute_and_exchange_dtypes_are_independent(self):
        with nn.use_compute_dtype("float32"):
            assert nn.get_default_dtype() == F64  # exchange untouched
            with nn.use_default_dtype("float32"):
                assert nn.get_compute_dtype() == F32
                assert nn.get_default_dtype() == F32
            assert nn.get_default_dtype() == F64


# ----------------------------------------------------------------------
# tensor / kernel propagation
# ----------------------------------------------------------------------
class TestDtypePropagation:
    def test_tensor_ops_stay_in_compute_dtype(self, fresh_rng):
        with nn.use_compute_dtype("float32"):
            a = nn.Tensor(fresh_rng.standard_normal((4, 5)), requires_grad=True)
            b = nn.Tensor(fresh_rng.standard_normal((5, 3)))
            out = ((a @ b).tanh() * 2.0 + 1.0).sigmoid()
            assert out.data.dtype == F32
            out.sum().backward()
            assert a.grad.dtype == F32

    def test_modules_and_fused_scans_stay_float32(self, fresh_rng):
        with nn.use_compute_dtype("float32"):
            gru = nn.GRU(6, 8, fresh_rng)
            assert all(p.data.dtype == F32 for p in gru.parameters())
            x = nn.Tensor(fresh_rng.standard_normal((3, 7, 6)),
                          requires_grad=True)
            outputs, last = gru(x)
            assert outputs.data.dtype == F32 and last.data.dtype == F32
            last.sum().backward()
            assert x.grad.dtype == F32
            assert all(p.grad.dtype == F32 for p in gru.parameters())

    def test_load_state_dict_keeps_compute_dtype(self, fresh_rng):
        with nn.use_compute_dtype("float32"):
            layer = nn.Linear(4, 3, fresh_rng)
            state = {k: v.astype(np.float64)  # a float64 checkpoint
                     for k, v in layer.state_dict().items()}
            layer.load_state_dict(state)
            assert layer.weight.data.dtype == F32

    def test_collation_and_mask_follow_compute_dtype(self, tiny_dataset,
                                                     tiny_mask):
        for dtype in (F64, F32):
            with nn.use_compute_dtype(dtype):
                batch = tiny_dataset.full_batch()
                assert batch.obs_feats.dtype == dtype
                assert batch.tgt_ratios.dtype == dtype
                assert batch.guide_xy.dtype == F64  # spatial, not model input
                dense = tiny_mask.build(batch)
                sparse = tiny_mask.build_sparse(batch)
                assert dense.dtype == dtype
                assert sparse.log_values.dtype == dtype
                assert sparse.step(0).log_values.dtype == dtype
                assert sparse.to_dense().dtype == dtype
                np.testing.assert_array_equal(sparse.to_dense(),
                                              dense.astype(dtype))

    def test_collation_cache_is_dtype_keyed(self, tiny_dataset):
        with nn.use_compute_dtype("float64"):
            b64 = tiny_dataset.full_batch()
        with nn.use_compute_dtype("float32"):
            b32 = tiny_dataset.full_batch()
        assert b64.tgt_ratios.dtype == F64
        assert b32.tgt_ratios.dtype == F32
        np.testing.assert_allclose(b32.tgt_ratios, b64.tgt_ratios, atol=1e-7)


# ----------------------------------------------------------------------
# float32 vs the float64 reference (the FD-replacement audit)
# ----------------------------------------------------------------------
def _forward_backward(dtype, tiny_config, tiny_dataset, tiny_world):
    with nn.use_compute_dtype(dtype):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        log_mask = builder.build_for(batch, model)
        output = model(batch, log_mask, teacher_forcing=True)
        loss, _ = model.loss(output, batch)
        loss.backward()
        grads = {name: p.grad.astype(np.float64)
                 for name, p in model.named_parameters()}
        return output, loss.item(), grads


class TestFloat32VsFloat64Reference:
    def test_forward_loss_and_gradients_track_the_reference(
            self, tiny_config, tiny_dataset, tiny_world):
        out64, loss64, grads64 = _forward_backward("float64", tiny_config,
                                                   tiny_dataset, tiny_world)
        out32, loss32, grads32 = _forward_backward("float32", tiny_config,
                                                   tiny_dataset, tiny_world)
        np.testing.assert_allclose(out32.log_probs.data, out64.log_probs.data,
                                   atol=1e-4)
        np.testing.assert_array_equal(out32.segments, out64.segments)
        assert abs(loss32 - loss64) / abs(loss64) < 1e-5
        for name, g64 in grads64.items():
            scale = np.abs(g64).max() + 1e-12
            assert np.abs(grads32[name] - g64).max() / scale < 1e-3, name

    def test_one_epoch_accuracy_drift_within_audit(self, tiny_config,
                                                   tiny_dataset, tiny_world):
        results = {}
        for dtype in ("float64", "float32"):
            with nn.use_compute_dtype(dtype):
                model = LTEModel(tiny_config, np.random.default_rng(3))
                builder = ConstraintMaskBuilder(tiny_world.network,
                                                radius=400.0)
                trainer = LocalTrainer(model, builder,
                                       TrainingConfig(batch_size=8, lr=1e-3),
                                       np.random.default_rng(4))
                loss = trainer.train_epoch(tiny_dataset)
                acc = model_segment_accuracy(model, builder, tiny_dataset)
                results[dtype] = (loss, acc)
        loss64, acc64 = results["float64"]
        loss32, acc32 = results["float32"]
        assert abs(loss32 - loss64) / abs(loss64) < 1e-5
        assert abs(acc32 - acc64) <= 0.02


# ----------------------------------------------------------------------
# optimizer master-weight contract
# ----------------------------------------------------------------------
class TestOptimizerMasterWeights:
    def _train_steps(self, dtype, steps=3):
        with nn.use_compute_dtype(dtype):
            rng = np.random.default_rng(7)
            layer = nn.Linear(6, 4, rng)
            optimizer = nn.Adam(layer.parameters(), lr=1e-2)
            x = rng.standard_normal((8, 6))
            y = rng.standard_normal((8, 4))
            for _ in range(steps):
                optimizer.zero_grad()
                out = layer(nn.Tensor(x))
                nn.mse_loss(out, nn.Tensor(y)).backward()
                optimizer.step()
            return layer, optimizer

    def test_moments_and_state_stay_float64_at_float32_compute(self):
        layer, optimizer = self._train_steps("float32")
        assert all(p.data.dtype == F32 for p in layer.parameters())
        state = optimizer.state_flat()
        assert state["m"].dtype == F64
        assert state["v"].dtype == F64

    def test_float32_steps_track_the_float64_reference(self):
        layer64, _ = self._train_steps("float64")
        layer32, _ = self._train_steps("float32")
        for p64, p32 in zip(layer64.parameters(), layer32.parameters()):
            np.testing.assert_allclose(p32.data, p64.data, atol=1e-5)

    def test_sgd_momentum_buffer_is_float64(self):
        with nn.use_compute_dtype("float32"):
            rng = np.random.default_rng(1)
            layer = nn.Linear(3, 2, rng)
            optimizer = nn.SGD(layer.parameters(), lr=0.1, momentum=0.9)
            optimizer.zero_grad()
            nn.mse_loss(layer(nn.Tensor(rng.standard_normal((4, 3)))),
                        nn.Tensor(np.zeros((4, 2)))).backward()
            optimizer.step()
            assert optimizer.state_flat()["velocity"].dtype == F64
            assert all(p.data.dtype == F32 for p in layer.parameters())

    def test_fallback_loop_preserves_parameter_dtype(self):
        """The per-parameter path (a grad-less parameter) must not let
        float64 master arithmetic leak into float32 storage."""
        with nn.use_compute_dtype("float32"):
            rng = np.random.default_rng(2)
            used = nn.Linear(3, 2, rng)
            unused = nn.Linear(3, 2, rng)
            optimizer = nn.Adam(list(used.parameters())
                                + list(unused.parameters()), lr=1e-2)
            optimizer.zero_grad()
            nn.mse_loss(used(nn.Tensor(rng.standard_normal((4, 3)))),
                        nn.Tensor(np.zeros((4, 2)))).backward()
            optimizer.step()  # unused has no grad -> fallback loop
            assert all(p.data.dtype == F32 for p in used.parameters())
            assert all(p.data.dtype == F32 for p in unused.parameters())


# ----------------------------------------------------------------------
# serving: packed decode at float32
# ----------------------------------------------------------------------
class TestServingAtFloat32:
    def test_packed_matches_padded_bitwise_at_float32(self, tiny_config,
                                                      tiny_dataset,
                                                      tiny_world):
        with nn.use_compute_dtype("float32"):
            model = LTEModel(tiny_config, np.random.default_rng(11))
            model.eval()
            builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
            batch = tiny_dataset.full_batch()
            log_mask = builder.build_for(batch, model)
            with nn.no_grad():
                packed = decode_model(model, batch, log_mask)
                with nn.use_packed_decode(False):
                    padded = decode_model(model, batch, log_mask)
            assert packed.log_probs.data.dtype == F32
            assert packed.ratios.data.dtype == F32
            valid = batch.tgt_mask
            # The packed-vs-padded contract is dtype-independent: the
            # same kernels run over compacted rows, so valid steps are
            # bit-identical at float32 exactly as at float64.
            np.testing.assert_array_equal(packed.segments[valid],
                                          padded.segments[valid])
            np.testing.assert_array_equal(packed.log_probs.data[valid],
                                          padded.log_probs.data[valid])
            np.testing.assert_array_equal(packed.ratios.data[valid],
                                          padded.ratios.data[valid])


# ----------------------------------------------------------------------
# federated: serial vs parallel bit-identity at float32
# ----------------------------------------------------------------------
class TestFederatedAtFloat32:
    def _run(self, tiny_world, tiny_config, workers):
        clients, global_test = build_federation(tiny_world, num_clients=3,
                                                keep_ratio=0.25)
        config = FederatedConfig(
            rounds=2, client_fraction=1.0, local_epochs=1,
            training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
            use_meta=False, workers=workers,
        )
        trainer = FederatedTrainer(
            lambda: LTEModel(tiny_config, np.random.default_rng(33)),
            clients, ConstraintMaskBuilder(tiny_world.network, radius=400.0),
            config, global_test, seed=0,
        )
        result = trainer.run()
        return result.history, np.asarray(trainer.server.global_flat(),
                                          dtype=np.float64)

    @needs_fork
    def test_serial_and_parallel_histories_bit_identical(self, tiny_world,
                                                         tiny_config):
        with nn.use_compute_dtype("float32"):
            serial_history, serial_flat = self._run(tiny_world, tiny_config,
                                                    workers=0)
            parallel_history, parallel_flat = self._run(tiny_world,
                                                        tiny_config, workers=2)
        # RoundRecords are frozen dataclasses of floats: == is bit-exact.
        assert serial_history == parallel_history
        np.testing.assert_array_equal(serial_flat, parallel_flat)

    def test_round_task_ships_compute_dtype(self, tiny_world, tiny_config):
        """Tasks snapshot the active compute dtype so workers re-assert
        it (the serial path reads the same global directly)."""
        from repro.federated.runner import RoundTask

        assert RoundTask.__dataclass_fields__["compute_dtype"].default \
            == "float64"
        with nn.use_compute_dtype("float32"):
            assert nn.get_compute_dtype().name == "float32"
