"""Tests for the LSTM cell and sequence wrapper (encoder ablation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestLSTMCell:
    def test_state_shape_is_doubled(self, fresh_rng):
        cell = nn.LSTMCell(3, 5, fresh_rng)
        state = cell.initial_state(4)
        assert state.shape == (4, 10)
        next_state = cell(Tensor(fresh_rng.standard_normal((4, 3))), state)
        assert next_state.shape == (4, 10)

    def test_forget_gate_bias_initialised_to_one(self, fresh_rng):
        cell = nn.LSTMCell(2, 4, fresh_rng)
        np.testing.assert_allclose(cell.b_f.data, 1.0)

    def test_h_part_is_bounded(self, fresh_rng):
        cell = nn.LSTMCell(2, 4, fresh_rng)
        state = cell.initial_state(3)
        for _ in range(5):
            state = cell(Tensor(fresh_rng.standard_normal((3, 2)) * 10), state)
        h = state.data[:, :4]
        assert (np.abs(h) <= 1.0).all()  # o * tanh(c)

    def test_gradient_flows(self, fresh_rng):
        cell = nn.LSTMCell(2, 3, fresh_rng)
        state = cell.initial_state(1)
        out = cell(Tensor(fresh_rng.standard_normal((1, 2))), state)
        out.sum().backward()
        assert all(p.grad is not None for p in cell.parameters())


class TestLSTMSequence:
    def test_output_width_is_hidden_size(self, fresh_rng):
        lstm = nn.LSTM(3, 6, fresh_rng)
        outputs, last = lstm(Tensor(fresh_rng.standard_normal((2, 5, 3))))
        assert outputs.shape == (2, 5, 6)
        assert last.shape == (2, 6)

    def test_mask_freezes_state(self, fresh_rng):
        lstm = nn.LSTM(2, 4, fresh_rng)
        x = fresh_rng.standard_normal((1, 4, 2))
        mask = np.array([[True, True, False, False]])
        outputs, last = lstm(Tensor(x), mask=mask)
        np.testing.assert_allclose(outputs.data[0, 2], outputs.data[0, 1])
        np.testing.assert_allclose(last.data[0], outputs.data[0, 1])

    def test_learns_like_gru(self, fresh_rng):
        """The LSTM encoder trains on the same memorisation task."""
        lstm = nn.LSTM(1, 8, fresh_rng)
        head = nn.Linear(8, 1, fresh_rng)
        opt = nn.Adam(lstm.parameters() + head.parameters(), lr=0.02)
        rng = np.random.default_rng(0)
        losses = []
        for _ in range(100):
            x = rng.standard_normal((8, 5, 1))
            target = x[:, 0, 0:1]
            opt.zero_grad()
            _, h = lstm(Tensor(x))
            loss = nn.mse_loss(head(h), target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.6


class TestEncoderAblation:
    @pytest.mark.parametrize("encoder", ["gru", "lstm", "rnn"])
    def test_lte_with_each_encoder(self, encoder, tiny_config, tiny_dataset,
                                   tiny_mask):
        from dataclasses import replace
        from repro.core import LTEModel

        config = replace(tiny_config, encoder=encoder)
        model = LTEModel(config, np.random.default_rng(0))
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        assert out.log_probs.shape[0] == batch.size
        total, _ = model.loss(out, batch)
        total.backward()
        assert any(p.grad is not None for p in model.parameters())

    def test_unknown_encoder_rejected(self, tiny_config):
        from dataclasses import replace
        with pytest.raises(ValueError):
            replace(tiny_config, encoder="transformer")

    def test_flops_no_double_count(self, fresh_rng):
        """A wrapper and its cell must be counted once (regression)."""
        from repro.nn.flops import estimate_flops
        gru = nn.GRU(4, 8, fresh_rng)
        bare = nn.GRUCell(4, 8, fresh_rng)
        assert estimate_flops(gru, 10) == pytest.approx(estimate_flops(bare, 10))

    def test_lstm_flops_exceed_gru(self, fresh_rng):
        from repro.nn.flops import estimate_flops
        gru = nn.GRU(4, 8, fresh_rng)
        lstm = nn.LSTM(4, 8, fresh_rng)
        assert estimate_flops(lstm, 10) > estimate_flops(gru, 10)
