"""Decode-step FLOPs accounting (the inference-cost side of Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mtrajrec import MTrajRecModel
from repro.baselines.rnn import RNNRecoveryModel
from repro.core import LTEModel, RecoveryModelConfig
from repro.nn.flops import (
    estimate_decode_flops,
    estimate_decode_step_flops,
    estimate_flops,
)


@pytest.fixture(scope="module")
def config():
    return RecoveryModelConfig(num_cells=32, num_segments=40, cell_emb_dim=8,
                               seg_emb_dim=8, hidden_size=16, dropout=0.0)


def test_decode_flops_scale_with_length(config):
    model = LTEModel(config, np.random.default_rng(0))
    short = estimate_decode_flops(model, seq_len=8)
    long = estimate_decode_flops(model, seq_len=16)
    assert 0 < short < long


def test_attention_decoder_costs_more_per_step(config):
    """Table II's point: the attention decoder pays O(T * H^2) per step,
    the lightweight operator does not — per-step cost must reflect it
    and grow with the encoder length only for the attention model."""
    lte = LTEModel(config, np.random.default_rng(0))
    mtraj = MTrajRecModel(config, np.random.default_rng(1))
    assert (estimate_decode_step_flops(mtraj, seq_len=16)
            > estimate_decode_step_flops(lte, seq_len=16))
    assert (estimate_decode_step_flops(mtraj, seq_len=32)
            > estimate_decode_step_flops(mtraj, seq_len=16))
    assert (estimate_decode_step_flops(lte, seq_len=32)
            == estimate_decode_step_flops(lte, seq_len=16))


def test_decode_flops_scale_with_batch(config):
    model = RNNRecoveryModel(config, np.random.default_rng(1))
    one = estimate_decode_flops(model, seq_len=16, batch=1)
    four = estimate_decode_flops(model, seq_len=16, batch=4)
    assert four == pytest.approx(4 * one)


def test_decode_flops_same_order_as_training_forward(config):
    """Decode cost is the same order as one training forward pass (same
    layers run per step; decode adds the chosen-segment feedback
    lookup) — a sanity bound on the analytic model."""
    for model in (LTEModel(config, np.random.default_rng(0)),
                  RNNRecoveryModel(config, np.random.default_rng(1))):
        decode = estimate_decode_flops(model, seq_len=16)
        train = estimate_flops(model, seq_len=16)
        assert 0.5 * train < decode < 2.0 * train


def test_invalid_arguments_raise(config):
    model = LTEModel(config, np.random.default_rng(0))
    with pytest.raises(ValueError):
        estimate_decode_flops(model, seq_len=0)
    with pytest.raises(ValueError):
        estimate_decode_step_flops(model, seq_len=-1)
    with pytest.raises(ValueError):
        estimate_decode_flops(model, seq_len=4, batch=0)
