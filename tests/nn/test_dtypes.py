"""The exchange-dtype switch (first slice of the float32 story).

Training math stays float64 regardless of the knob (optimisers pass
explicit float64 ``out`` buffers), so the equivalence tests elsewhere
keep their tight tolerances; only payload allocation changes.  The
federated-level effect (halved ledger bytes, serial == parallel) is
covered in ``tests/federated``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.flatten import FlatLayout, FlatParameterSpace
from repro.nn.module import Parameter


def make_space():
    params = [Parameter(np.arange(6, dtype=np.float64).reshape(2, 3), name="w"),
              Parameter(np.ones(4), name="b")]
    return FlatParameterSpace(params)


class TestKnob:
    def test_default_is_float64(self):
        assert nn.get_default_dtype() == np.float64

    def test_set_returns_previous_and_context_restores(self):
        previous = nn.set_default_dtype("float32")
        try:
            assert previous == np.float64
            assert nn.get_default_dtype() == np.float32
        finally:
            nn.set_default_dtype(previous)
        with nn.use_default_dtype(np.float32):
            assert nn.get_default_dtype() == np.float32
        assert nn.get_default_dtype() == np.float64

    def test_rejects_non_float_dtypes(self):
        for bad in ("int64", np.int32, "float16", "complex128"):
            with pytest.raises(ValueError):
                nn.set_default_dtype(bad)


class TestFlatThreading:
    def test_get_flat_honours_exchange_dtype(self):
        space = make_space()
        assert space.get_flat().dtype == np.float64
        with nn.use_default_dtype("float32"):
            flat = space.get_flat()
        assert flat.dtype == np.float32
        assert flat.nbytes == space.total_size * 4

    def test_explicit_dtype_and_out_override_the_knob(self):
        space = make_space()
        with nn.use_default_dtype("float32"):
            assert space.get_flat(dtype=np.float64).dtype == np.float64
            out = np.empty(space.total_size)
            assert space.get_flat(out=out) is out
            assert out.dtype == np.float64

    def test_float32_roundtrip_restores_parameters_within_eps(self):
        # The contract under test is float64 *storage* with a float32
        # wire, so pin the compute dtype rather than inherit a forced
        # float32 substrate.
        with nn.use_compute_dtype("float64"):
            space = make_space()
            original = space.get_flat(dtype=np.float64)
            with nn.use_default_dtype("float32"):
                wire = space.get_flat()
                space.set_flat(wire)
            # Parameters remain float64 storage; values rounded to float32.
            assert space.parameters[0].data.dtype == np.float64
            np.testing.assert_allclose(space.get_flat(dtype=np.float64),
                                       original, rtol=1e-7)

    def test_flatten_state_honours_exchange_dtype(self):
        state = {"w": np.zeros((2, 3)), "b": np.ones(4)}
        layout = FlatLayout.from_state(state)
        assert layout.flatten_state(state).dtype == np.float64
        with nn.use_default_dtype("float32"):
            assert layout.flatten_state(state).dtype == np.float32
        # unflatten always restores float64 state arrays.
        assert layout.unflatten(np.zeros(10, dtype=np.float32))["w"].dtype == np.float64

    def test_optimizer_math_stays_float64_under_float32_exchange(self):
        # Float64-storage contract: pin the compute dtype (the float32
        # substrate's master-weight contract is covered in
        # tests/nn/test_compute_dtype.py).
        with nn.use_compute_dtype("float64"):
            params = [Parameter(np.ones(8), name="w")]
            optimizer = nn.Adam(params, lr=1e-2)
            params[0].grad = np.full(8, 0.5)
            with nn.use_default_dtype("float32"):
                optimizer.step()
            assert params[0].data.dtype == np.float64
            assert optimizer._m_flat.dtype == np.float64
