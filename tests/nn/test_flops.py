"""Tests for FLOPs / parameter accounting and Table II complexities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.flops import count_parameters, estimate_flops, st_operator_complexity


class TestParameterCount:
    def test_linear(self, fresh_rng):
        assert count_parameters(nn.Linear(3, 5, fresh_rng)) == 3 * 5 + 5

    def test_nested(self, fresh_rng):
        model = nn.Sequential(nn.Linear(2, 4, fresh_rng), nn.Linear(4, 1, fresh_rng))
        assert count_parameters(model) == (2 * 4 + 4) + (4 * 1 + 1)


class TestFlopsEstimate:
    def test_scales_linearly_with_seq_len(self, fresh_rng):
        gru = nn.GRU(4, 8, fresh_rng)
        assert estimate_flops(gru, seq_len=20) == pytest.approx(
            2 * estimate_flops(gru, seq_len=10)
        )

    def test_attention_scales_quadratically(self, fresh_rng):
        att = nn.AdditiveAttention(8, fresh_rng)
        f1 = estimate_flops(att, seq_len=10)
        f2 = estimate_flops(att, seq_len=20)
        assert f2 == pytest.approx(4 * f1)

    def test_invalid_args(self, fresh_rng):
        with pytest.raises(ValueError):
            estimate_flops(nn.Linear(2, 2, fresh_rng), seq_len=0)

    def test_batch_scaling(self, fresh_rng):
        lin = nn.Linear(4, 4, fresh_rng)
        assert estimate_flops(lin, seq_len=5, batch=3) == pytest.approx(
            3 * estimate_flops(lin, seq_len=5)
        )


class TestTable2Complexity:
    """The orderings the paper's Table II asserts."""

    def test_attn_dominates_rnn_and_cnn(self):
        n, length, dim = 100, 32, 64
        attn = st_operator_complexity("attn", n, length, dim)["time"]
        rnn = st_operator_complexity("rnn", n, length, dim)["time"]
        cnn = st_operator_complexity("cnn", n, length, dim)["time"]
        assert attn > rnn == cnn

    def test_lightweight_is_cheapest_in_time_and_space(self):
        n, length, dim = 100, 32, 64
        light = st_operator_complexity("mlp", n, length, dim)
        for kind in ("cnn", "rnn", "attn"):
            heavy = st_operator_complexity(kind, n, length, dim)
            assert light["time"] < heavy["time"]
            assert light["space"] < heavy["space"]

    def test_space_complexity_values(self):
        dim, length = 16, 10
        assert st_operator_complexity("rnn", 1, length, dim)["space"] == dim**2
        assert st_operator_complexity("mlp", 1, length, dim)["space"] == length + dim + 1

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            st_operator_complexity("quantum", 1, 1, 1)


class TestModelOrdering:
    """Figure 5's key claim at the model level: LightTR's operator stack
    costs far less than the attention-based baselines."""

    def test_lte_cheaper_than_attention_models(self, tiny_config, tiny_world, fresh_rng):
        from repro.baselines import MTrajRecModel, RNTrajRecModel
        from repro.core import LTEModel

        rng = np.random.default_rng(0)
        lte = LTEModel(tiny_config, rng)
        mtraj = MTrajRecModel(tiny_config, np.random.default_rng(0))
        rntraj = RNTrajRecModel(tiny_config, np.random.default_rng(0),
                                tiny_world.network)
        seq = 33
        assert estimate_flops(lte, seq) < estimate_flops(mtraj, seq)
        assert estimate_flops(mtraj, seq) < estimate_flops(rntraj, seq)
        assert count_parameters(lte) < count_parameters(rntraj)
