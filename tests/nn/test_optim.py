"""Tests for optimisers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


def quadratic_problem(rng, n=4):
    """A convex quadratic min ||x - target||^2 with known optimum."""
    target = rng.standard_normal(n)
    param = Parameter(rng.standard_normal(n))

    def loss_fn():
        diff = param - Tensor(target)
        return (diff * diff).sum()

    return param, target, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self, fresh_rng):
        param, target, loss_fn = quadratic_problem(fresh_rng)
        opt = nn.SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-6)

    def test_momentum_accelerates(self, fresh_rng):
        losses = {}
        for momentum in (0.0, 0.9):
            rng = np.random.default_rng(5)
            param, _, loss_fn = quadratic_problem(rng)
            opt = nn.SGD([param], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss = loss_fn()
                loss.backward()
                opt.step()
            losses[momentum] = loss.item()
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([10.0]))
        opt = nn.SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.array([0.0])
        opt.step()
        assert abs(param.data[0]) < 10.0

    def test_skips_parameters_without_grad(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([2.0]))
        p1.grad = np.array([1.0])
        nn.SGD([p1, p2], lr=0.5).step()
        np.testing.assert_allclose(p2.data, [2.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.ones(1))], lr=0.0)

    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self, fresh_rng):
        param, target, loss_fn = quadratic_problem(fresh_rng)
        opt = nn.Adam([param], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step is ~lr regardless of
        gradient scale."""
        for scale in (1e-3, 1e3):
            param = Parameter(np.array([0.0]))
            opt = nn.Adam([param], lr=0.1)
            param.grad = np.array([scale])
            opt.step()
            np.testing.assert_allclose(abs(param.data[0]), 0.1, rtol=1e-4)

    def test_trains_a_network_better_than_noise(self, fresh_rng):
        model = nn.MLP([3, 16, 1], fresh_rng)
        opt = nn.Adam(model.parameters(), lr=0.01)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((64, 3))
        y = np.sin(x.sum(axis=1, keepdims=True))
        first = None
        for step in range(300):
            opt.zero_grad()
            loss = nn.mse_loss(model(Tensor(x)), y)
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first * 0.2


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.3, 0.0, 0.4])  # norm 0.5
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.0, 0.4])

    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-9)

    def test_global_norm_across_parameters(self):
        p1, p2 = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        p1.grad, p2.grad = np.array([3.0]), np.array([4.0])
        nn.clip_grad_norm([p1, p2], max_norm=1.0)
        total = np.sqrt(p1.grad[0] ** 2 + p2.grad[0] ** 2)
        np.testing.assert_allclose(total, 1.0, rtol=1e-9)

    def test_handles_missing_grads(self):
        assert nn.clip_grad_norm([Parameter(np.zeros(2))], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            nn.clip_grad_norm([], max_norm=0.0)
