"""Tests for feed-forward layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_forward_matches_manual(self, fresh_rng):
        layer = nn.Linear(3, 2, fresh_rng)
        x = fresh_rng.standard_normal((5, 3))
        out = layer(nn.Tensor(x))
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self, fresh_rng):
        layer = nn.Linear(3, 2, fresh_rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_batched_3d_input(self, fresh_rng):
        layer = nn.Linear(4, 6, fresh_rng)
        out = layer(nn.Tensor(fresh_rng.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_invalid_sizes(self, fresh_rng):
        with pytest.raises(ValueError):
            nn.Linear(0, 2, fresh_rng)

    def test_xavier_scale(self, fresh_rng):
        layer = nn.Linear(100, 100, fresh_rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound + 1e-12


class TestEmbedding:
    def test_lookup_shape(self, fresh_rng):
        emb = nn.Embedding(10, 4, fresh_rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self, fresh_rng):
        emb = nn.Embedding(10, 4, fresh_rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_only_to_used_rows(self, fresh_rng):
        emb = nn.Embedding(6, 3, fresh_rng)
        emb(np.array([2, 2])).sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[2], 2.0)
        untouched = [i for i in range(6) if i != 2]
        assert np.allclose(grad[untouched], 0.0)


class TestLayerNorm:
    def test_normalises_last_axis(self, fresh_rng, float_tol):
        norm = nn.LayerNorm(8)
        x = nn.Tensor(fresh_rng.standard_normal((4, 8)) * 10 + 3)
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0,
                                   atol=max(float_tol, 1e-9))
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_learnable_affine(self, fresh_rng, float_tol):
        norm = nn.LayerNorm(4)
        norm.gamma.data = np.full(4, 2.0)
        norm.beta.data = np.full(4, 1.0)
        out = norm(nn.Tensor(fresh_rng.standard_normal((3, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0,
                                   atol=max(float_tol, 1e-9))

    def test_gradients_flow(self, fresh_rng):
        norm = nn.LayerNorm(5)
        x = nn.Tensor(fresh_rng.standard_normal((2, 5)), requires_grad=True)
        norm(x).sum().backward()
        assert x.grad is not None
        assert norm.gamma.grad is not None


class TestMLP:
    def test_depth_and_shapes(self, fresh_rng):
        mlp = nn.MLP([4, 8, 8, 2], fresh_rng)
        out = mlp(nn.Tensor(fresh_rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)
        assert len(mlp.layers) == 3

    def test_last_layer_not_activated_by_default(self, fresh_rng):
        mlp = nn.MLP([2, 4, 2], fresh_rng)
        out = mlp(nn.Tensor(fresh_rng.standard_normal((100, 2))))
        assert (out.data < 0).any()  # a ReLU'd output would be nonnegative

    def test_activate_last(self, fresh_rng):
        mlp = nn.MLP([2, 4, 2], fresh_rng, activate_last=True)
        out = mlp(nn.Tensor(fresh_rng.standard_normal((100, 2))))
        assert (out.data >= 0).all()

    def test_too_few_dims(self, fresh_rng):
        with pytest.raises(ValueError):
            nn.MLP([4], fresh_rng)


class TestDropoutLayer:
    def test_train_vs_eval(self, fresh_rng):
        drop = nn.Dropout(0.5, fresh_rng)
        x = nn.Tensor(np.ones((100, 100)))
        train_out = drop(x).data
        assert (train_out == 0).any()
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_invalid_p(self, fresh_rng):
        with pytest.raises(ValueError):
            nn.Dropout(-0.1, fresh_rng)
