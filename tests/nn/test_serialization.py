"""Tests for state-dict save/load and payload sizing."""

from __future__ import annotations

import numpy as np

from repro import nn


class TestSaveLoad:
    def test_round_trip_via_disk(self, tmp_path, fresh_rng):
        model = nn.Sequential(nn.Linear(3, 4, fresh_rng), nn.Linear(4, 2, fresh_rng))
        path = str(tmp_path / "weights.npz")
        nn.save_state_dict(model, path)
        loaded = nn.load_state_dict(path)
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(loaded[name], value)

    def test_save_plain_dict(self, tmp_path):
        state = {"a": np.ones((2, 2)), "b": np.zeros(3)}
        path = str(tmp_path / "sub" / "state.npz")  # directory is created
        nn.save_state_dict(state, path)
        loaded = nn.load_state_dict(path)
        assert set(loaded) == {"a", "b"}

    def test_load_preserves_order(self, tmp_path, fresh_rng):
        model = nn.Linear(2, 2, fresh_rng)
        path = str(tmp_path / "w.npz")
        nn.save_state_dict(model, path)
        fresh = nn.Linear(2, 2, np.random.default_rng(99))
        fresh.load_state_dict(nn.load_state_dict(path))
        np.testing.assert_allclose(fresh.weight.data, model.weight.data)


class TestPayloadSize:
    def test_num_bytes_matches_float64(self):
        state = {"w": np.zeros((10, 10)), "b": np.zeros(10)}
        assert nn.state_dict_num_bytes(state) == (100 + 10) * 8

    def test_bigger_model_bigger_payload(self, fresh_rng):
        small = nn.Linear(4, 4, fresh_rng).state_dict()
        large = nn.Linear(40, 40, fresh_rng).state_dict()
        assert nn.state_dict_num_bytes(large) > nn.state_dict_num_bytes(small)
