"""Flat-parameter space and flat-buffer optimiser equivalence tests."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro import nn
from repro.nn.flatten import FlatLayout, FlatParameterSpace
from repro.nn.module import Parameter


def small_model(rng):
    return nn.MLP([3, 8, 2], rng)


class TestFlatLayout:
    def test_roundtrip(self, fresh_rng):
        state = OrderedDict([("a", fresh_rng.standard_normal((2, 3))),
                             ("b", fresh_rng.standard_normal(4))])
        layout = FlatLayout.from_state(state)
        assert layout.total_size == 10
        vec = layout.flatten_state(state)
        back = layout.unflatten(vec)
        assert list(back) == ["a", "b"]
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])

    def test_missing_key_raises(self):
        layout = FlatLayout(["a"], [(2,)])
        with pytest.raises(KeyError):
            layout.flatten_state({"b": np.zeros(2)})

    def test_shape_mismatch_raises(self):
        layout = FlatLayout(["a"], [(2,)])
        with pytest.raises(ValueError):
            layout.flatten_state({"a": np.zeros(3)})

    def test_wrong_vector_size_raises(self):
        layout = FlatLayout(["a"], [(2,)])
        with pytest.raises(ValueError):
            layout.unflatten(np.zeros(5))


class TestFlatParameterSpace:
    def test_gather_scatter_roundtrip(self, fresh_rng):
        model = small_model(fresh_rng)
        space = FlatParameterSpace.from_module(model)
        vec = space.get_flat()
        assert vec.size == model.num_parameters()
        vec2 = 2.0 * vec
        space.set_flat(vec2)
        np.testing.assert_allclose(space.get_flat(), vec2)
        # scatter writes in place: the parameter objects are unchanged
        for p in model.parameters():
            assert p.data.flags.owndata or True  # still valid arrays

    def test_state_dict_bridge_matches_module(self, fresh_rng):
        model = small_model(fresh_rng)
        space = FlatParameterSpace.from_module(model)
        state = model.state_dict()
        vec = space.state_to_flat(state)
        np.testing.assert_allclose(vec, space.get_flat())
        back = space.flat_to_state(vec)
        assert list(back) == list(state)

    def test_grad_gather_zeros_missing(self, fresh_rng):
        p1 = Parameter(np.ones(2))
        p2 = Parameter(np.ones(3))
        p1.grad = np.array([1.0, 2.0])
        space = FlatParameterSpace([p1, p2])
        vec = space.get_flat_grad()
        np.testing.assert_allclose(vec, [1.0, 2.0, 0.0, 0.0, 0.0])
        assert not space.all_grads_present()


def reference_adam_step(params, ms, vs, t, lr=1e-3, b1=0.9, b2=0.999, eps=1e-8):
    """The seed tree's per-parameter Adam loop, for equivalence checks."""
    bias1 = 1.0 - b1**t
    bias2 = 1.0 - b2**t
    for p, m, v in zip(params, ms, vs):
        if p.grad is None:
            continue
        g = p.grad
        m *= b1
        m += (1.0 - b1) * g
        v *= b2
        v += (1.0 - b2) * g * g
        p.data = p.data - lr * (m / bias1) / (np.sqrt(v / bias2) + eps)


class TestFlatAdamEquivalence:
    # float64_only: the textbook loop keeps per-parameter moments at the
    # parameter dtype, while the flat optimiser holds float64 master
    # moments by contract — at float32 compute they intentionally
    # diverge (that is the master-weight design; see
    # tests/nn/test_compute_dtype.py::TestOptimizerMasterWeights).
    @pytest.mark.float64_only
    def test_matches_reference_loop(self, fresh_rng):
        model_a = small_model(np.random.default_rng(3))
        model_b = small_model(np.random.default_rng(3))
        opt = nn.Adam(model_a.parameters(), lr=1e-3)
        ms = [np.zeros_like(p.data) for p in model_b.parameters()]
        vs = [np.zeros_like(p.data) for p in model_b.parameters()]
        x = fresh_rng.standard_normal((16, 3))
        y = fresh_rng.standard_normal((16, 2))
        for t in range(1, 6):
            for model in (model_a, model_b):
                model.zero_grad()
                loss = nn.mse_loss(model(nn.Tensor(x)), y)
                loss.backward()
            opt.step()
            reference_adam_step(model_b.parameters(), ms, vs, t)
            for pa, pb in zip(model_a.parameters(), model_b.parameters()):
                np.testing.assert_allclose(pa.data, pb.data, atol=1e-10)

    def test_skips_parameters_without_grad(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([2.0]))
        opt = nn.Adam([p1, p2], lr=0.1)
        p1.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p2.data, [2.0])
        assert p1.data[0] != 1.0

    def test_fast_and_slow_paths_share_state(self):
        """A step with a missing grad (slow path) then a full step (fast
        path) must see consistent m/v state."""
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([2.0]))
        opt = nn.Adam([p1, p2], lr=0.1)
        p1.grad = np.array([0.5])
        opt.step()  # slow path: p2 skipped
        p1.grad = np.array([0.5])
        p2.grad = np.array([0.25])
        opt.step()  # fast path
        assert opt._m_flat[0] != 0.0 and opt._m_flat[1] != 0.0


class TestFlatSGD:
    def test_matches_manual_momentum(self, fresh_rng):
        p = Parameter(np.array([1.0, -2.0]))
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        v = np.zeros(2)
        manual = np.array([1.0, -2.0])
        for _ in range(4):
            p.grad = np.array([0.3, -0.1])
            opt.step()
            v = 0.9 * v + np.array([0.3, -0.1])
            manual = manual - 0.1 * v
            np.testing.assert_allclose(p.data, manual, atol=1e-12)


class TestClipInPlace:
    def test_scaling_is_in_place(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        grad_before = p.grad
        nn.clip_grad_norm([p], max_norm=1.0)
        assert p.grad is grad_before  # no fresh allocation
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-9)
