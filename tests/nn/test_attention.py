"""Tests for attention operators (baseline building blocks)."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


class TestScaledDotProduct:
    def test_shapes_and_weight_normalisation(self, fresh_rng):
        q = Tensor(fresh_rng.standard_normal((2, 4, 8)))
        k = Tensor(fresh_rng.standard_normal((2, 6, 8)))
        v = Tensor(fresh_rng.standard_normal((2, 6, 8)))
        out, weights = nn.scaled_dot_product_attention(q, k, v)
        assert out.shape == (2, 4, 8)
        assert weights.shape == (2, 4, 6)
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0)

    def test_identical_keys_give_uniform_weights(self, fresh_rng):
        q = Tensor(fresh_rng.standard_normal((1, 2, 4)))
        k = Tensor(np.tile(fresh_rng.standard_normal((1, 1, 4)), (1, 5, 1)))
        v = Tensor(fresh_rng.standard_normal((1, 5, 4)))
        _, weights = nn.scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(weights.data, 0.2, atol=1e-12)

    def test_gradients_flow_to_all_inputs(self, fresh_rng):
        q = Tensor(fresh_rng.standard_normal((1, 3, 4)), requires_grad=True)
        k = Tensor(fresh_rng.standard_normal((1, 5, 4)), requires_grad=True)
        v = Tensor(fresh_rng.standard_normal((1, 5, 4)), requires_grad=True)
        out, _ = nn.scaled_dot_product_attention(q, k, v)
        out.sum().backward()
        assert q.grad is not None and k.grad is not None and v.grad is not None


class TestAdditiveAttention:
    def test_context_shape_and_weights(self, fresh_rng, float_tol):
        att = nn.AdditiveAttention(6, fresh_rng)
        context, weights = att(Tensor(fresh_rng.standard_normal((3, 6))),
                               Tensor(fresh_rng.standard_normal((3, 7, 6))))
        assert context.shape == (3, 6)
        assert weights.shape == (3, 7)
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0,
                                   atol=max(float_tol, 1e-9))

    def test_mask_zeroes_padded_positions(self, fresh_rng):
        att = nn.AdditiveAttention(4, fresh_rng)
        keys = Tensor(fresh_rng.standard_normal((2, 5, 4)))
        mask = np.array([[True] * 5, [True, True, False, False, False]])
        _, weights = att(Tensor(fresh_rng.standard_normal((2, 4))), keys, mask=mask)
        np.testing.assert_allclose(weights.data[1, 2:], 0.0, atol=1e-9)
        np.testing.assert_allclose(weights.data[1, :2].sum(), 1.0)

    def test_context_is_convex_combination(self, fresh_rng, float_tol):
        att = nn.AdditiveAttention(3, fresh_rng)
        keys_val = fresh_rng.standard_normal((1, 4, 3))
        context, weights = att(Tensor(fresh_rng.standard_normal((1, 3))),
                               Tensor(keys_val))
        # The manual recombination runs in float64; the layer computes
        # in the compute dtype, so the comparison inherits its rounding.
        manual = (weights.data[0][:, None] * keys_val[0]).sum(axis=0)
        np.testing.assert_allclose(context.data[0], manual,
                                   atol=max(float_tol, 1e-12))


class TestSelfAttention:
    def test_block_preserves_shape(self, fresh_rng):
        block = nn.SelfAttention(8, fresh_rng)
        out = block(Tensor(fresh_rng.standard_normal((2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_block_is_trainable(self, fresh_rng):
        block = nn.SelfAttention(4, fresh_rng)
        x = Tensor(fresh_rng.standard_normal((1, 3, 4)))
        block(x).sum().backward()
        grads = [p.grad for p in block.parameters()]
        assert all(g is not None for g in grads)

    def test_stacking_blocks(self, fresh_rng):
        blocks = [nn.SelfAttention(6, fresh_rng) for _ in range(3)]
        x = Tensor(fresh_rng.standard_normal((2, 4, 6)))
        for b in blocks:
            x = b(x)
        assert x.shape == (2, 4, 6)
        assert np.isfinite(x.data).all()
