"""Tests for the Module/Parameter system and state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TwoLayer(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.first = nn.Linear(4, 8, rng)
        self.second = nn.Linear(8, 2, rng)
        self.drop = nn.Dropout(0.5, rng)

    def forward(self, x):
        return self.second(self.drop(self.first(x).relu()))


class TestRegistration:
    def test_named_parameters_are_dotted(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        names = [n for n, _ in model.named_parameters()]
        assert "first.weight" in names
        assert "first.bias" in names
        assert "second.weight" in names

    def test_num_parameters(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_zero_grad_clears_all(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        out = model(nn.Tensor(fresh_rng.standard_normal((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self, fresh_rng):
        a = TwoLayer(np.random.default_rng(1))
        b = TwoLayer(np.random.default_rng(2))
        assert not np.allclose(a.first.weight.data, b.first.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.first.weight.data, b.first.weight.data)
        np.testing.assert_allclose(a.second.bias.data, b.second.bias.data)

    def test_state_dict_is_a_copy(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        state = model.state_dict()
        state["first.weight"][:] = 0.0
        assert not np.allclose(model.first.weight.data, 0.0)

    def test_missing_key_raises(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        state = model.state_dict()
        del state["second.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestModes:
    def test_train_eval_recursive(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        model.eval()
        assert not model.training
        assert not model.drop.training
        model.train()
        assert model.drop.training

    def test_eval_disables_dropout(self, fresh_rng):
        model = TwoLayer(fresh_rng)
        model.eval()
        x = nn.Tensor(fresh_rng.standard_normal((5, 4)))
        out1 = model(x).data
        out2 = model(x).data
        np.testing.assert_allclose(out1, out2)


class TestContainers:
    def test_sequential_chains(self, fresh_rng):
        seq = nn.Sequential(nn.Linear(3, 5, fresh_rng), nn.ReLU(),
                            nn.Linear(5, 2, fresh_rng))
        out = seq(nn.Tensor(fresh_rng.standard_normal((4, 3))))
        assert out.shape == (4, 2)
        assert len(list(seq.named_parameters())) == 4

    def test_module_list_registers_children(self, fresh_rng):
        layers = nn.ModuleList([nn.Linear(2, 2, fresh_rng) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.named_parameters())) == 6
        with pytest.raises(RuntimeError):
            layers(nn.Tensor(np.ones((1, 2))))

    def test_module_list_indexing(self, fresh_rng):
        layers = nn.ModuleList([nn.Linear(2, 2, fresh_rng) for _ in range(2)])
        assert layers[0] is list(iter(layers))[0]
