"""Tests for per-client (heterogeneity) evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel
from repro.federated import build_federation
from repro.metrics import MetricRow, evaluate_per_client, heterogeneity_summary


class TestPerClient:
    def test_one_row_per_client(self, tiny_world, tiny_config):
        clients, _ = build_federation(tiny_world, num_clients=3, keep_ratio=0.25)
        mask = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        model = LTEModel(tiny_config, np.random.default_rng(0))
        rows = evaluate_per_client(model, mask, [c.train for c in clients])
        assert len(rows) == 3
        for row in rows:
            assert 0.0 <= row.recall <= 1.0

    def test_summary_statistics(self):
        rows = [
            MetricRow(recall=0.4, precision=0.4, mae=0.3, rmse=0.4, accuracy=0.3),
            MetricRow(recall=0.8, precision=0.8, mae=0.2, rmse=0.3, accuracy=0.7),
        ]
        summary = heterogeneity_summary(rows)
        assert summary["mean_recall"] == pytest.approx(0.6)
        assert summary["worst_recall"] == pytest.approx(0.4)
        assert summary["best_recall"] == pytest.approx(0.8)
        assert summary["std_recall"] == pytest.approx(0.2)

    def test_empty_rows_raise(self):
        with pytest.raises(ValueError):
            heterogeneity_summary([])

    def test_global_model_serves_all_clients(self, tiny_world, tiny_config):
        """After federated training, no client should be catastrophically
        underserved relative to the mean (Non-IID robustness)."""
        from repro.core import TrainingConfig
        from repro.federated import FederatedConfig, FederatedTrainer

        clients, global_test = build_federation(tiny_world, num_clients=3,
                                                keep_ratio=0.25)
        mask = ConstraintMaskBuilder(tiny_world.network, radius=400.0)

        def factory():
            return LTEModel(tiny_config, np.random.default_rng(1))

        config = FederatedConfig(rounds=3, local_epochs=1,
                                 training=TrainingConfig(epochs=1, batch_size=8,
                                                         lr=3e-3),
                                 use_meta=False)
        result = FederatedTrainer(factory, clients, mask, config, global_test,
                                  seed=0).run()
        rows = evaluate_per_client(result.global_model, mask,
                                   [c.train for c in clients])
        summary = heterogeneity_summary(rows)
        assert summary["worst_recall"] >= summary["mean_recall"] - 0.45
