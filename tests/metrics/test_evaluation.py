"""Tests for the one-call evaluation and efficiency profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import LTEModel
from repro.core.training import LocalTrainer, TrainingConfig
from repro.metrics import evaluate_model, measure_epoch_seconds, profile_model


class TestEvaluateModel:
    def test_metric_row_fields(self, tiny_config, tiny_dataset, tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        row = evaluate_model(model, tiny_mask, tiny_dataset)
        d = row.as_dict()
        assert set(d) == {"recall", "precision", "mae", "rmse", "accuracy"}
        assert 0.0 <= row.recall <= 1.0
        assert 0.0 <= row.precision <= 1.0
        assert row.mae >= 0.0
        assert row.rmse >= row.mae - 1e-12

    def test_str_format(self, tiny_config, tiny_dataset, tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        text = str(evaluate_model(model, tiny_mask, tiny_dataset))
        assert "recall=" in text and "rmse=" in text

    def test_empty_dataset_raises(self, tiny_config, tiny_dataset, tiny_mask):
        from repro.data import TrajectoryDataset
        model = LTEModel(tiny_config, np.random.default_rng(0))
        empty = TrajectoryDataset([], tiny_dataset.grid, tiny_dataset.network, 0.25)
        with pytest.raises(ValueError):
            evaluate_model(model, tiny_mask, empty)

    def test_model_left_in_train_mode(self, tiny_config, tiny_dataset, tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        evaluate_model(model, tiny_mask, tiny_dataset)
        assert model.training


class TestProfiling:
    def test_epoch_seconds_positive(self, tiny_config, tiny_dataset, tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        trainer = LocalTrainer(model, tiny_mask,
                               TrainingConfig(epochs=1, batch_size=8, lr=1e-3),
                               np.random.default_rng(0))
        seconds = measure_epoch_seconds(trainer, tiny_dataset, repeats=1)
        assert seconds > 0.0

    def test_profile_report(self, tiny_config, tiny_dataset, tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        trainer = LocalTrainer(model, tiny_mask,
                               TrainingConfig(epochs=1, batch_size=8, lr=1e-3),
                               np.random.default_rng(0))
        report = profile_model("LightTR", model, trainer, tiny_dataset, seq_len=17)
        assert report.parameters == model.num_parameters()
        assert report.flops > 0
        # Parameters live at the compute dtype, so the payload scales
        # with its itemsize (8 at float64, 4 at float32).
        itemsize = nn.get_compute_dtype().itemsize
        assert report.payload_bytes == model.num_parameters() * itemsize
        assert "LightTR" in str(report)

    def test_invalid_repeats(self, tiny_config, tiny_dataset, tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(0))
        trainer = LocalTrainer(model, tiny_mask, TrainingConfig(),
                               np.random.default_rng(0))
        with pytest.raises(ValueError):
            measure_epoch_seconds(trainer, tiny_dataset, repeats=0)
