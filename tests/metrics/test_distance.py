"""Tests for road-network distance metrics (Eq. 20)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import mae_rmse, point_distance
from repro.spatial import Point, RoadNetwork, RoadSegment


@pytest.fixture(scope="module")
def line():
    nodes = {0: Point(0, 0), 1: Point(1000, 0), 2: Point(2000, 0)}
    segs = []
    for u, v in ((0, 1), (1, 0), (1, 2), (2, 1)):
        segs.append(RoadSegment(len(segs), u, v, nodes[u], nodes[v]))
    return RoadNetwork(nodes, segs)


class TestPointDistance:
    def test_zero_for_same_point(self, line):
        assert point_distance(line, 0, 0.5, 0, 0.5) == 0.0

    def test_forward_along_segment(self, line):
        assert point_distance(line, 0, 0.2, 0, 0.5) == pytest.approx(300.0)

    def test_symmetric_takes_min(self, line):
        d_ab = point_distance(line, 0, 0.5, 2, 0.5)
        d_ba = point_distance(line, 2, 0.5, 0, 0.5)
        assert d_ab == d_ba  # min of both directions, same either way

    def test_euclidean_fallback_when_unreachable(self):
        nodes = {0: Point(0, 0), 1: Point(100, 0), 2: Point(0, 300), 3: Point(100, 300)}
        segs = [RoadSegment(0, 0, 1, nodes[0], nodes[1]),
                RoadSegment(1, 2, 3, nodes[2], nodes[3])]
        net = RoadNetwork(nodes, segs)
        d = point_distance(net, 0, 0.0, 1, 0.0)
        assert d == pytest.approx(300.0)


class TestMaeRmse:
    def test_zero_for_perfect(self, line):
        segs = np.array([[0, 2]])
        ratios = np.array([[0.3, 0.7]])
        mask = np.ones((1, 2), dtype=bool)
        mae, rmse = mae_rmse(line, segs, ratios, segs, ratios, mask)
        assert mae == 0.0 and rmse == 0.0

    def test_km_unit(self, line):
        pred_s = np.array([[0]])
        true_s = np.array([[0]])
        pred_r = np.array([[0.0]])
        true_r = np.array([[0.5]])  # 500 m apart
        mask = np.ones((1, 1), dtype=bool)
        mae_km, _ = mae_rmse(line, pred_s, pred_r, true_s, true_r, mask, unit="km")
        mae_m, _ = mae_rmse(line, pred_s, pred_r, true_s, true_r, mask, unit="m")
        assert mae_km == pytest.approx(0.5)
        assert mae_m == pytest.approx(500.0)

    def test_rmse_at_least_mae(self, line, fresh_rng):
        b, t = 3, 4
        pred_s = fresh_rng.integers(0, 4, size=(b, t))
        true_s = fresh_rng.integers(0, 4, size=(b, t))
        pred_r = fresh_rng.uniform(0, 1, size=(b, t))
        true_r = fresh_rng.uniform(0, 1, size=(b, t))
        mask = np.ones((b, t), dtype=bool)
        mae, rmse = mae_rmse(line, pred_s, pred_r, true_s, true_r, mask)
        assert rmse >= mae - 1e-12

    def test_mask_restricts_evaluation(self, line):
        pred_s = np.array([[0, 0]])
        true_s = np.array([[0, 0]])
        pred_r = np.array([[0.0, 0.0]])
        true_r = np.array([[0.0, 1.0]])
        only_first = np.array([[True, False]])
        mae, _ = mae_rmse(line, pred_s, pred_r, true_s, true_r, only_first)
        assert mae == 0.0

    def test_empty_mask_raises(self, line):
        z = np.zeros((1, 1))
        with pytest.raises(ValueError):
            mae_rmse(line, z.astype(int), z, z.astype(int), z,
                     np.zeros((1, 1), bool))

    def test_unknown_unit(self, line):
        z = np.zeros((1, 1))
        with pytest.raises(ValueError):
            mae_rmse(line, z.astype(int), z, z.astype(int), z,
                     np.ones((1, 1), bool), unit="miles")
