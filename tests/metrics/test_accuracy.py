"""Tests for recall/precision metrics (Eq. 19)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import pointwise_accuracy, recall_precision


class TestRecallPrecision:
    def test_perfect_prediction(self):
        true = np.array([[1, 2, 3, 4]])
        mask = np.ones_like(true, dtype=bool)
        recall, precision = recall_precision(true, true, mask)
        assert recall == 1.0 and precision == 1.0

    def test_hand_computed_example(self):
        pred = np.array([[1, 1, 2, 9]])
        true = np.array([[1, 2, 3, 3]])
        mask = np.ones_like(true, dtype=bool)
        # P = {1, 2, 9}, G = {1, 2, 3}; overlap = {1, 2}.
        recall, precision = recall_precision(pred, true, mask)
        assert recall == pytest.approx(2 / 3)
        assert precision == pytest.approx(2 / 3)

    def test_mask_excludes_points(self):
        pred = np.array([[1, 9]])
        true = np.array([[1, 2]])
        mask = np.array([[True, False]])
        recall, precision = recall_precision(pred, true, mask)
        assert recall == 1.0 and precision == 1.0

    def test_averaged_over_trajectories(self):
        pred = np.array([[1, 1], [9, 9]])
        true = np.array([[1, 1], [2, 2]])
        mask = np.ones_like(true, dtype=bool)
        recall, _ = recall_precision(pred, true, mask)
        assert recall == pytest.approx(0.5)  # (1.0 + 0.0) / 2

    def test_all_masked_raises(self):
        a = np.zeros((2, 3), dtype=int)
        with pytest.raises(ValueError):
            recall_precision(a, a, np.zeros((2, 3), dtype=bool))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            recall_precision(np.zeros((1, 2), int), np.zeros((2, 2), int),
                             np.ones((1, 2), bool))

    def test_trajectories_without_eval_points_skipped(self):
        pred = np.array([[1, 2], [5, 5]])
        true = np.array([[1, 2], [7, 7]])
        mask = np.array([[True, True], [False, False]])
        recall, _ = recall_precision(pred, true, mask)
        assert recall == 1.0  # second trajectory ignored


class TestPointwise:
    def test_value(self):
        pred = np.array([[1, 2, 3]])
        true = np.array([[1, 0, 3]])
        mask = np.ones((1, 3), dtype=bool)
        assert pointwise_accuracy(pred, true, mask) == pytest.approx(2 / 3)

    def test_empty_mask_raises(self):
        a = np.zeros((1, 2), int)
        with pytest.raises(ValueError):
            pointwise_accuracy(a, a, np.zeros((1, 2), bool))


@settings(max_examples=40, deadline=None)
@given(
    b=st.integers(1, 4), t=st.integers(1, 8),
    vocab=st.integers(1, 10), seed=st.integers(0, 10_000),
)
def test_property_metrics_bounded_and_perfect_on_self(b, t, vocab, seed):
    r = np.random.default_rng(seed)
    true = r.integers(0, vocab, size=(b, t))
    pred = r.integers(0, vocab, size=(b, t))
    mask = np.ones((b, t), dtype=bool)
    recall, precision = recall_precision(pred, true, mask)
    assert 0.0 <= recall <= 1.0
    assert 0.0 <= precision <= 1.0
    r2, p2 = recall_precision(true, true, mask)
    assert r2 == 1.0 and p2 == 1.0
