"""Tests for the differential-privacy Gaussian mechanism."""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np
import pytest

from repro.federated import GaussianMechanism


def states(delta_scale=1.0):
    global_state = OrderedDict([("w", np.zeros((4, 4))), ("b", np.zeros(4))])
    local_state = OrderedDict([("w", np.full((4, 4), delta_scale)),
                               ("b", np.full(4, delta_scale))])
    return local_state, global_state


class TestClipping:
    def test_small_update_unchanged_without_noise(self, fresh_rng):
        mech = GaussianMechanism(clip_norm=100.0, noise_multiplier=0.0,
                                 rng=fresh_rng)
        local, global_ = states(0.1)
        private = mech.privatize_update(local, global_)
        for key in local:
            np.testing.assert_allclose(private[key], local[key])

    def test_large_update_clipped_to_norm(self, fresh_rng):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0,
                                 rng=fresh_rng)
        local, global_ = states(10.0)
        private = mech.privatize_update(local, global_)
        total = math.sqrt(sum(
            float(((private[k] - global_[k]) ** 2).sum()) for k in local
        ))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_clip_preserves_direction(self, fresh_rng):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0,
                                 rng=fresh_rng)
        local, global_ = states(5.0)
        private = mech.privatize_update(local, global_)
        delta = private["w"] - global_["w"]
        assert (delta > 0).all()  # same sign as the raw update


class TestNoise:
    def test_noise_changes_update(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=1.0,
                                 rng=np.random.default_rng(0))
        local, global_ = states(0.01)
        private = mech.privatize_update(local, global_)
        assert not np.allclose(private["w"], local["w"])

    def test_noise_scale_matches_sigma(self):
        mech = GaussianMechanism(clip_norm=2.0, noise_multiplier=3.0,
                                 rng=np.random.default_rng(1))
        global_state = OrderedDict([("w", np.zeros(200_00))])
        local_state = OrderedDict([("w", np.zeros(200_00))])
        private = mech.privatize_update(local_state, global_state)
        assert np.std(private["w"]) == pytest.approx(6.0, rel=0.05)

    def test_key_mismatch_raises(self, fresh_rng):
        mech = GaussianMechanism(1.0, 0.0, fresh_rng)
        with pytest.raises(KeyError):
            mech.privatize_update({"w": np.zeros(2)}, {"v": np.zeros(2)})


class TestAccounting:
    def test_epsilon_decreases_with_noise(self, fresh_rng):
        low = GaussianMechanism(1.0, 0.5, fresh_rng).epsilon_estimate(10)
        high = GaussianMechanism(1.0, 2.0, fresh_rng).epsilon_estimate(10)
        assert high < low

    def test_epsilon_grows_with_rounds(self, fresh_rng):
        mech = GaussianMechanism(1.0, 1.0, fresh_rng)
        assert mech.epsilon_estimate(20) > mech.epsilon_estimate(5)

    def test_no_noise_infinite_epsilon(self, fresh_rng):
        mech = GaussianMechanism(1.0, 0.0, fresh_rng)
        assert math.isinf(mech.epsilon_estimate(1))

    def test_invalid_args(self, fresh_rng):
        with pytest.raises(ValueError):
            GaussianMechanism(0.0, 1.0, fresh_rng)
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, -1.0, fresh_rng)
        mech = GaussianMechanism(1.0, 1.0, fresh_rng)
        with pytest.raises(ValueError):
            mech.epsilon_estimate(0)
        with pytest.raises(ValueError):
            mech.epsilon_estimate(1, delta=2.0)


class TestIntegration:
    def test_federated_run_with_dp(self, tiny_world, tiny_config):
        """A DP run completes and (with mild noise) still trains."""
        from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
        from repro.federated import (FederatedConfig, FederatedTrainer,
                                     build_federation)

        clients, global_test = build_federation(tiny_world, num_clients=3,
                                                keep_ratio=0.25)
        mask = ConstraintMaskBuilder(tiny_world.network, radius=400.0)

        def factory():
            return LTEModel(tiny_config, np.random.default_rng(2))

        config = FederatedConfig(rounds=2, local_epochs=1,
                                 training=TrainingConfig(epochs=1, batch_size=8,
                                                         lr=3e-3),
                                 use_meta=False)
        mech = GaussianMechanism(clip_norm=10.0, noise_multiplier=1e-4,
                                 rng=np.random.default_rng(7))
        result = FederatedTrainer(factory, clients, mask, config, global_test,
                                  seed=0, privatizer=mech).run()
        assert len(result.history) == 2
        assert 0.0 <= result.history[-1].global_accuracy <= 1.0
        assert math.isfinite(mech.epsilon_estimate(2))
