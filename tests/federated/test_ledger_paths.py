"""Byte accounting consistency across the two federated paths.

Both the main Algorithm-3 rounds and the isolated "w/o FL" ablation now
meter flat ``(P,)`` vectors, so their per-payload byte counts agree with
each other and with ``P * itemsize`` — and both halve when the exchange
dtype drops to float32.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    FederatedConfig,
    FederatedTrainer,
    build_federation,
    train_isolated_then_average,
)


@pytest.fixture(scope="module")
def federation(tiny_world):
    return build_federation(tiny_world, num_clients=3, keep_ratio=0.25)


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def one_round_config():
    return FederatedConfig(
        rounds=1, client_fraction=1.0, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=False,
    )


class TestLedgerUnification:
    @pytest.mark.identity_exchange  # P*8 wire math is the raw-float64 codec
    def test_isolated_path_accounts_flat_bytes(self, federation, mask,
                                               tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   one_round_config(), global_test, seed=0)
        num_params = trainer.server.num_parameters
        result = train_isolated_then_average(
            lte_factory(tiny_config), clients, mask, one_round_config(),
            global_test, seed=0,
        )
        cost = result.ledger.rounds[0]
        payload = num_params * 8  # float64 exchange
        assert cost.bytes_up == payload * len(clients)
        assert cost.bytes_down == payload * len(clients)

    @pytest.mark.fault_free  # per-upload byte math assumes every client uploads
    def test_both_paths_meter_identical_payload_sizes(self, federation, mask,
                                                      tiny_config):
        clients, global_test = federation
        fed = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                               one_round_config(), global_test, seed=0).run()
        isolated = train_isolated_then_average(
            lte_factory(tiny_config), clients, mask, one_round_config(),
            global_test, seed=0,
        )
        per_upload_fed = fed.ledger.rounds[0].bytes_up / len(clients)
        per_upload_iso = isolated.ledger.rounds[0].bytes_up / len(clients)
        assert per_upload_fed == per_upload_iso


class TestFloat32Communication:
    @pytest.mark.identity_exchange  # exchange-dtype halving only applies to raw vectors
    def test_float32_exchange_halves_round_traffic(self, federation, mask,
                                                   tiny_config):
        clients, global_test = federation

        def run():
            return FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                    one_round_config(), global_test,
                                    seed=0).run()

        full = run()
        with nn.use_default_dtype("float32"):
            half = run()
        assert half.ledger.total_bytes * 2 == full.ledger.total_bytes
        # Reduced wire precision barely perturbs one round of training:
        # the history stays numerically close to the float64 run.
        assert half.history[0].mean_loss == pytest.approx(
            full.history[0].mean_loss, rel=1e-4)
        assert half.history[0].global_accuracy == pytest.approx(
            full.history[0].global_accuracy, abs=0.05)

    @pytest.mark.identity_exchange  # exchange-dtype halving only applies to raw vectors
    def test_float32_isolated_path_halves_too(self, federation, mask,
                                              tiny_config):
        clients, global_test = federation

        def run():
            return train_isolated_then_average(
                lte_factory(tiny_config), clients, mask, one_round_config(),
                global_test, seed=0,
            )

        full = run()
        with nn.use_default_dtype("float32"):
            half = run()
        assert half.ledger.total_bytes * 2 == full.ledger.total_bytes
