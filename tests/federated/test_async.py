"""Asynchronous staleness-weighted aggregation (FedBuff-style waves).

The determinism contract under test: virtual time, not wall-clock,
orders arrivals — so async histories are reproducible run-to-run,
bit-identical between serial and process-pool execution, and degenerate
to the synchronous FedAvg trajectory when the buffer spans the cohort,
``staleness_alpha == 0`` and the latency draws carry no jitter.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    FederatedConfig,
    FederatedTrainer,
    LatencyModel,
    LatencySpec,
    build_federation,
    resolve_latency_model,
    staleness_weights,
)

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="no fork start method on this platform"
)


@pytest.fixture(scope="module")
def federation(tiny_world):
    return build_federation(tiny_world, num_clients=3, keep_ratio=0.25)


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def fed_config(rounds=3, **kwargs):
    return FederatedConfig(
        rounds=rounds, client_fraction=1.0, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=False, **kwargs,
    )


def make_trainer(federation, mask, tiny_config, config, **kwargs):
    clients, global_test = federation
    return FederatedTrainer(lte_factory(tiny_config), clients, mask, config,
                            global_test, seed=0, **kwargs)


class TestStalenessWeights:
    def test_alpha_zero_is_exactly_fedavg(self):
        base = np.array([3.0, 5.0, 2.0])
        weights = staleness_weights(base, [0, 4, 17], alpha=0.0)
        assert np.array_equal(weights, base)
        assert weights is not base  # a copy, not an alias

    def test_discount_formula(self):
        weights = staleness_weights([1.0, 1.0, 1.0], [0, 1, 3], alpha=0.5)
        assert np.allclose(weights, [1.0, 1.0 / np.sqrt(2.0), 0.5])

    def test_fresh_uploads_keep_full_weight(self):
        weights = staleness_weights([2.0, 7.0], [0, 0], alpha=1.5)
        assert np.array_equal(weights, [2.0, 7.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            staleness_weights([1.0, 1.0], [0], alpha=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            staleness_weights([1.0], [-1], alpha=0.5)
        with pytest.raises(ValueError, match="alpha"):
            staleness_weights([1.0], [0], alpha=-0.1)


class TestLatencyModel:
    def test_draws_are_pure_functions_of_keys(self):
        model = LatencyModel(LatencySpec(seed=7, base=1.0, jitter=2.0))
        assert model.draw(0, 5) == model.draw(0, 5)
        assert model.draw(0, 5) != model.draw(1, 5)
        assert model.draw(0, 5) != model.draw(0, 6)

    def test_zero_jitter_is_constant(self):
        model = LatencyModel(LatencySpec(base=1.5, jitter=0.0))
        assert model.draw(0, 0) == 1.5
        assert model.draw(9, 3) == 1.5

    def test_heavy_tail_multiplies(self):
        always = LatencyModel(LatencySpec(seed=1, base=1.0, jitter=0.0,
                                          heavy=1.0, heavy_factor=10.0))
        never = LatencyModel(LatencySpec(seed=1, base=1.0, jitter=0.0))
        assert always.draw(0, 0) == 10.0 * never.draw(0, 0)

    def test_spec_string_round_trips(self):
        model = LatencyModel.from_spec("base=2,jitter=0.5,heavy=0.1,seed=7")
        clone = LatencyModel.from_spec(model.spec_string())
        assert clone == model
        assert resolve_latency_model("") == LatencyModel(LatencySpec())
        assert resolve_latency_model(None) == LatencyModel(LatencySpec())
        assert resolve_latency_model(model) is model

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="key=value"):
            LatencyModel.from_spec("base")
        with pytest.raises(ValueError, match="unknown latency key"):
            LatencyModel.from_spec("speed=3")
        with pytest.raises(ValueError, match="probability"):
            LatencySpec(heavy=1.5)
        with pytest.raises(ValueError, match="non-negative"):
            LatencySpec(base=-1.0)


class TestSyncEquivalence:
    @pytest.mark.fault_free  # a dropped client breaks the K = cohort premise
    def test_full_buffer_alpha_zero_matches_sync_bitwise(self, federation,
                                                         mask, tiny_config):
        """K = cohort size, alpha = 0, no jitter: every wave dispatches
        everyone, everyone arrives, and one flush aggregates the same
        uploads the synchronous barrier would — bit for bit."""
        clients, _ = federation
        sync = make_trainer(federation, mask, tiny_config, fed_config())
        sync_result = sync.run()
        async_trainer = make_trainer(
            federation, mask, tiny_config,
            fed_config(async_buffer=len(clients), staleness_alpha=0.0,
                       latency="base=1,jitter=0"))
        async_result = async_trainer.run()

        assert np.array_equal(sync.server.global_flat(dtype=np.float64),
                              async_trainer.server.global_flat(dtype=np.float64))
        for sync_rec, async_rec in zip(sync_result.history,
                                       async_result.history):
            assert async_rec.global_accuracy == sync_rec.global_accuracy
            assert async_rec.mean_loss == sync_rec.mean_loss
            assert async_rec.flushes == 1
            assert async_rec.mean_staleness == 0.0
        for sync_client, async_client in zip(sync.clients,
                                             async_trainer.clients):
            assert np.array_equal(
                sync_client.flat_parameters(dtype=np.float64),
                async_client.flat_parameters(dtype=np.float64))

    def test_async_history_is_reproducible(self, federation, mask,
                                           tiny_config):
        def run():
            trainer = make_trainer(
                federation, mask, tiny_config,
                fed_config(rounds=4, async_buffer=2, staleness_alpha=0.5,
                           latency="base=1,jitter=3,seed=11",
                           clients_per_round=0.67))
            result = trainer.run()
            return result, trainer.server.global_flat(dtype=np.float64)

        first, first_flat = run()
        second, second_flat = run()
        assert first.history == second.history
        assert first.ledger.rounds == second.ledger.rounds
        assert np.array_equal(first_flat, second_flat)


class TestAsyncSemantics:
    def test_buffer_k_flushes_and_leaves_stragglers_in_flight(
            self, federation, mask, tiny_config):
        """K=2 over 3 clients: the wave flushes at the second arrival
        and the third upload keeps travelling into the next wave."""
        trainer = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=3, async_buffer=2, staleness_alpha=0.5,
                       latency="base=1,jitter=2,seed=5"))
        result = trainer.run()
        first = result.history[0]
        assert first.flushes == 1
        assert len(first.completed_clients) == 2
        assert len(first.in_flight) == 1
        # Arrival order is virtual: completed clients are listed in
        # (arrival time, client id) order, and a busy client is never
        # re-dispatched while its upload travels.
        for prev, nxt in zip(result.history, result.history[1:]):
            assert not set(prev.in_flight) & set(nxt.selected_clients)
        # The final wave drains the wire: nothing stays in flight.
        assert result.history[-1].in_flight == ()

    def test_staleness_telemetry_appears_under_lag(self, federation, mask,
                                                   tiny_config):
        trainer = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=5, async_buffer=2, staleness_alpha=0.5,
                       latency="base=1,jitter=4,heavy=0.4,seed=3"))
        result = trainer.run()
        assert any(record.mean_staleness > 0 for record in result.history)
        assert all(record.mean_staleness >= 0 for record in result.history)

    def test_adaptive_sampling_respects_idle_pool(self, federation, mask,
                                                  tiny_config):
        trainer = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=4, async_buffer=1, clients_per_round=0.3,
                       latency="base=1,jitter=5,seed=2"))
        result = trainer.run()
        busy: set[int] = set()
        for record in result.history:
            # ceil(0.3 * 3 clients) = 1 dispatch per wave, at most.
            assert len(record.selected_clients) <= 1
            busy = set(record.in_flight)
        assert busy == set()

    @pytest.mark.fault_free  # quorum of 3 needs all 3 clients to upload
    def test_quorum_gates_the_flush(self, federation, mask, tiny_config):
        """min_clients_per_round above the buffer size K: the flush
        waits for quorum, not just for K arrivals."""
        trainer = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=2, async_buffer=1, min_clients_per_round=3,
                       staleness_alpha=0.0, latency="base=1,jitter=0"))
        result = trainer.run()
        for record in result.history:
            assert record.aggregated
            assert len(record.completed_clients) >= 3

    def test_straggler_heavy_run_never_stalls(self, federation, mask,
                                              tiny_config):
        """A 30-virtual-second straggler plan: wall-clock must not pay
        the virtual delays (the synchronous runner would sleep them)."""
        trainer = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=3, async_buffer=2,
                       fault_plan="straggler=0.9,delay=30,seed=3",
                       latency="base=1,jitter=1"))
        start = time.monotonic()
        result = trainer.run()
        elapsed = time.monotonic() - start
        assert elapsed < 25.0  # ~80 virtual straggler-seconds never slept
        assert trainer._async.virtual_now > 10.0  # the delays went virtual
        assert sum(record.flushes for record in result.history) >= 1

    def test_fault_plan_restores_failed_clients(self, federation, mask,
                                                tiny_config):
        """A crashed client is never stranded busy: it re-enters the
        idle pool and is re-dispatched in a later wave."""
        trainer = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=6, async_buffer=2, task_retries=0,
                       fault_plan="crash=0.4,seed=13",
                       latency="base=1,jitter=1"))
        result = trainer.run()
        failed_then_selected = False
        for i, record in enumerate(result.history):
            for failure in record.failures:
                if any(failure.client_id in later.selected_clients
                       for later in result.history[i + 1:]):
                    failed_then_selected = True
        assert any(record.failures for record in result.history)
        assert failed_then_selected

    def test_async_config_validation(self):
        with pytest.raises(ValueError, match="async_buffer"):
            fed_config(async_buffer=-1)
        with pytest.raises(ValueError, match="staleness_alpha"):
            fed_config(staleness_alpha=-0.5)
        with pytest.raises(ValueError, match="clients_per_round"):
            fed_config(clients_per_round=1.5)


class TestSerialVsPool:
    @needs_fork
    def test_pool_async_history_is_bitwise_serial(self, federation, mask,
                                                  tiny_config):
        """The pool changes *real* completion order; the virtual clock
        must not notice."""
        def run(workers):
            trainer = make_trainer(
                federation, mask, tiny_config,
                fed_config(rounds=3, async_buffer=2, staleness_alpha=0.5,
                           latency="base=1,jitter=2,seed=4", workers=workers))
            result = trainer.run()
            return result, trainer.server.global_flat(dtype=np.float64)

        serial, serial_flat = run(workers=0)
        pooled, pooled_flat = run(workers=2)
        assert pooled.history == serial.history
        assert pooled.ledger.rounds == serial.ledger.rounds
        assert np.array_equal(pooled_flat, serial_flat)

    @needs_fork
    def test_pool_async_with_codec_is_bitwise_serial(self, federation, mask,
                                                     tiny_config):
        """Quantised exchange composes with the async pool: encoding is
        a pure function of the (compensated) vector, so residual streams
        agree too."""
        def run(workers):
            trainer = make_trainer(
                federation, mask, tiny_config,
                fed_config(rounds=3, async_buffer=2, exchange_codec="int8",
                           latency="base=1,jitter=2,seed=4", workers=workers))
            result = trainer.run()
            return result, trainer.server.global_flat(dtype=np.float64)

        serial, serial_flat = run(workers=0)
        pooled, pooled_flat = run(workers=2)
        assert pooled.history == serial.history
        assert np.array_equal(pooled_flat, serial_flat)
