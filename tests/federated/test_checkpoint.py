"""Round checkpoint/resume: a killed-and-resumed run must reproduce the
uninterrupted run bit for bit — history, ledger, global parameters, and
live client state alike."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    FederatedCheckpoint,
    FederatedConfig,
    FederatedTrainer,
    build_federation,
    checkpoint_path,
    latest_checkpoint,
)


@pytest.fixture(scope="module")
def federation(tiny_world):
    return build_federation(tiny_world, num_clients=3, keep_ratio=0.25)


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def fed_config(rounds=4, use_meta=False, **kwargs):
    return FederatedConfig(
        rounds=rounds, client_fraction=1.0, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=use_meta, **kwargs,
    )


def make_trainer(federation, mask, tiny_config, config):
    clients, global_test = federation
    return FederatedTrainer(lte_factory(tiny_config), clients, mask, config,
                            global_test, seed=0)


class TestCheckpointFiles:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = FederatedCheckpoint(
            next_round=3, global_flat=np.arange(5.0),
            client_sessions=(), client_params=(np.ones(5),),
            trainer_rng_state=np.random.default_rng(1).bit_generator.state,
            teacher_flat=None, last_accuracy=0.5,
        )
        path = checkpoint.save(checkpoint_path(str(tmp_path), 3))
        loaded = FederatedCheckpoint.load(path)
        assert loaded.next_round == 3
        assert np.array_equal(loaded.global_flat, checkpoint.global_flat)
        assert loaded.last_accuracy == 0.5

    def test_latest_checkpoint_resolution(self, tmp_path):
        assert latest_checkpoint(str(tmp_path)) is None
        for round_index in (2, 10, 4):
            FederatedCheckpoint(
                next_round=round_index, global_flat=np.zeros(1),
                client_sessions=(), client_params=(),
                trainer_rng_state={}, teacher_flat=None,
            ).save(checkpoint_path(str(tmp_path), round_index))
        latest = latest_checkpoint(str(tmp_path))
        assert latest.endswith("round_0010.ckpt")
        # A file path resolves to itself.
        assert latest_checkpoint(latest) == latest

    def test_version_mismatch_rejected(self, tmp_path):
        checkpoint = FederatedCheckpoint(
            next_round=1, global_flat=np.zeros(1), client_sessions=(),
            client_params=(), trainer_rng_state={}, teacher_flat=None,
            version=999,
        )
        path = checkpoint.save(str(tmp_path / "bad.ckpt"))
        with pytest.raises(ValueError, match="version"):
            FederatedCheckpoint.load(path)

    def test_version_1_files_rejected(self, tmp_path):
        """Pre-codec checkpoints (version 1) lack the error-feedback
        residuals and async state, so a resumed run could not reproduce
        the uninterrupted byte/flush stream — they must be refused, not
        silently resumed."""
        legacy = FederatedCheckpoint(
            next_round=2, global_flat=np.zeros(3), client_sessions=(),
            client_params=(), trainer_rng_state={}, teacher_flat=None,
            version=1,
        )
        path = legacy.save(str(tmp_path / "legacy.ckpt"))
        with pytest.raises(ValueError, match="version 1"):
            FederatedCheckpoint.load(path)

    def test_config_requires_dir_with_checkpointing(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            fed_config(checkpoint_every=2)

    def test_missing_resume_target_raises(self, federation, mask, tiny_config,
                                          tmp_path):
        trainer = make_trainer(federation, mask, tiny_config,
                               fed_config(resume_from=str(tmp_path / "nope")))
        with pytest.raises(FileNotFoundError):
            trainer.run()


class TestBitIdenticalResume:
    def assert_resume_matches_uninterrupted(self, federation, mask,
                                            tiny_config, tmp_path,
                                            **config_kwargs):
        """Run 4 rounds straight; then run 2 rounds + checkpoint, build
        a *fresh* trainer (the killed process restarting), resume, and
        compare everything bitwise."""
        straight = make_trainer(federation, mask, tiny_config,
                                fed_config(rounds=4, **config_kwargs))
        expected = straight.run()
        expected_flat = straight.server.global_flat(dtype=np.float64)

        killed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=2, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path), **config_kwargs))
        killed.run()
        assert latest_checkpoint(str(tmp_path)).endswith("round_0002.ckpt")

        resumed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=4, resume_from=str(tmp_path), **config_kwargs))
        result = resumed.run()
        resumed_flat = resumed.server.global_flat(dtype=np.float64)

        assert result.history == expected.history
        assert result.ledger.rounds == expected.ledger.rounds
        assert np.array_equal(resumed_flat, expected_flat)
        for resumed_client, straight_client in zip(resumed.clients,
                                                   straight.clients):
            assert np.array_equal(
                resumed_client.flat_parameters(dtype=np.float64),
                straight_client.flat_parameters(dtype=np.float64))

    def test_resume_is_bit_identical(self, federation, mask, tiny_config,
                                     tmp_path):
        self.assert_resume_matches_uninterrupted(federation, mask, tiny_config,
                                                 tmp_path)

    def test_resume_is_bit_identical_with_meta_distillation(
            self, federation, mask, tiny_config, tmp_path):
        """The resumed distiller is rebuilt from the checkpointed
        teacher snapshot, not re-pretrained — and must behave
        identically to the uninterrupted run's live teacher."""
        self.assert_resume_matches_uninterrupted(federation, mask, tiny_config,
                                                 tmp_path, use_meta=True)

    def test_resume_is_bit_identical_under_faults(self, federation, mask,
                                                  tiny_config, tmp_path):
        """Checkpoint/resume composes with fault injection: the fault
        schedule is keyed by absolute round index, so resumed rounds
        draw the same faults the uninterrupted run drew."""
        self.assert_resume_matches_uninterrupted(
            federation, mask, tiny_config, tmp_path,
            fault_plan="crash=0.1,dropout=0.1,corrupt=0.1,seed=7",
            task_retries=1)

    def test_resume_is_bit_identical_with_quantised_exchange(
            self, federation, mask, tiny_config, tmp_path):
        """The int8 codec's error-feedback residuals (per-client uplink
        + server downlink) ride the checkpoint, so the resumed run
        encodes the identical payload stream."""
        self.assert_resume_matches_uninterrupted(federation, mask, tiny_config,
                                                 tmp_path,
                                                 exchange_codec="int8")

    def test_resume_is_bit_identical_in_async_mode(self, federation, mask,
                                                   tiny_config, tmp_path):
        """A killed async run resumes with its virtual clock, version
        counter, and in-flight/buffered uploads intact, replaying the
        identical arrival/flush schedule.

        The kill is simulated from the *intermediate* checkpoint of a
        full run (not a shorter config): async waves know the final
        round drains the wire, so a ``rounds=2`` run is legitimately
        different from the first two waves of a ``rounds=4`` run."""
        async_kwargs = dict(async_buffer=2, staleness_alpha=0.5,
                            latency="base=1,jitter=2,seed=6")
        straight = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=4, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path), **async_kwargs))
        expected = straight.run()
        expected_flat = straight.server.global_flat(dtype=np.float64)
        midpoint = checkpoint_path(str(tmp_path), 2)

        resumed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=4, resume_from=midpoint, **async_kwargs))
        result = resumed.run()

        assert result.history == expected.history
        assert result.ledger.rounds == expected.ledger.rounds
        assert np.array_equal(resumed.server.global_flat(dtype=np.float64),
                              expected_flat)
        for resumed_client, straight_client in zip(resumed.clients,
                                                   straight.clients):
            assert np.array_equal(
                resumed_client.flat_parameters(dtype=np.float64),
                straight_client.flat_parameters(dtype=np.float64))

    def test_resume_rejects_round_mode_mismatch(self, federation, mask,
                                                tiny_config, tmp_path):
        """A synchronous checkpoint cannot seed an async run (or vice
        versa): the aggregator state would be meaningless."""
        killed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=2, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path)))
        killed.run()
        resumed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=4, resume_from=str(tmp_path), async_buffer=2))
        with pytest.raises(ValueError, match="round mode"):
            resumed.run()

    def test_resume_rejects_mismatched_federation(self, federation, mask,
                                                  tiny_config, tmp_path,
                                                  tiny_world):
        killed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=2, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path)))
        killed.run()
        other = build_federation(tiny_world, num_clients=2, keep_ratio=0.25)
        clients, global_test = other
        resumed = FederatedTrainer(
            lte_factory(tiny_config), clients, mask,
            fed_config(rounds=4, resume_from=str(tmp_path)),
            global_test, seed=0)
        with pytest.raises(ValueError, match="not the same federation"):
            resumed.run()

    def test_meta_checkpoint_required_for_meta_resume(self, federation, mask,
                                                      tiny_config, tmp_path):
        killed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=2, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path)))  # use_meta=False
        killed.run()
        resumed = make_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=4, use_meta=True, resume_from=str(tmp_path)))
        with pytest.raises(ValueError, match="no teacher"):
            resumed.run()
