"""Tests for federated trainer options: aggregation modes, fixed lambda,
and the fedavg weighting path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import FederatedConfig, FederatedTrainer, build_federation


@pytest.fixture(scope="module")
def setup(tiny_world):
    clients, global_test = build_federation(tiny_world, num_clients=3,
                                            keep_ratio=0.25)
    mask = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
    return clients, global_test, mask


def make_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(55))
    return factory


def run_with(setup, tiny_config, **overrides):
    clients, global_test, mask = setup
    config = FederatedConfig(
        rounds=overrides.pop("rounds", 2), local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        **overrides,
    )
    return FederatedTrainer(make_factory(tiny_config), clients, mask, config,
                            global_test, seed=9).run()


class TestAggregationModes:
    def test_fedavg_weighting_runs(self, setup, tiny_config):
        result = run_with(setup, tiny_config, use_meta=False,
                          aggregation="fedavg")
        assert len(result.history) == 2

    def test_uniform_vs_fedavg_equal_for_equal_shards(self, setup, tiny_config):
        """With equally-sized shards the two aggregation rules coincide."""
        clients, _, _ = setup
        sizes = {c.num_train for c in clients}
        if len(sizes) != 1:
            pytest.skip("shards unequal in this fixture")
        uniform = run_with(setup, tiny_config, use_meta=False,
                           aggregation="uniform")
        fedavg = run_with(setup, tiny_config, use_meta=False,
                          aggregation="fedavg")
        a = uniform.global_model.state_dict()
        b = fedavg.global_model.state_dict()
        for key in a:
            np.testing.assert_allclose(a[key], b[key])


class TestLambdaModes:
    def test_fixed_lambda_config_runs(self, setup, tiny_config):
        result = run_with(setup, tiny_config, use_meta=True, lt=0.0,
                          dynamic_lambda=False, lambda0=2.0)
        # Fixed mode reports lambda0 for every client each round.
        for record in result.history:
            assert record.mean_lambda == pytest.approx(2.0)

    def test_dynamic_lambda_bounded_by_lambda0(self, setup, tiny_config):
        result = run_with(setup, tiny_config, use_meta=True, lt=0.0,
                          dynamic_lambda=True, lambda0=2.0)
        for record in result.history:
            assert 0.0 <= record.mean_lambda <= 2.0


class TestReproducibility:
    def test_same_seed_same_result(self, setup, tiny_config):
        a = run_with(setup, tiny_config, use_meta=False)
        b = run_with(setup, tiny_config, use_meta=False)
        sa = a.global_model.state_dict()
        sb = b.global_model.state_dict()
        for key in sa:
            np.testing.assert_allclose(sa[key], sb[key])
        assert [r.global_accuracy for r in a.history] == \
               [r.global_accuracy for r in b.history]
