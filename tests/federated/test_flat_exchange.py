"""Flat-vector federated exchange: aggregation, server, client, privacy."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.core import RecoveryModelConfig
from repro.core.lte import LTEModel
from repro.federated import (
    CommunicationLedger,
    FederatedServer,
    GaussianMechanism,
    average_flat,
    average_states,
    payload_num_bytes,
)


def state(value):
    return OrderedDict([("w", np.full((2, 2), float(value))),
                        ("b", np.full((3,), float(value)))])


class TestAverageFlat:
    def test_uniform_mean(self):
        stacked = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(average_flat(stacked), [2.0, 3.0])

    def test_weighted(self):
        stacked = np.array([[0.0, 0.0], [4.0, 8.0]])
        np.testing.assert_allclose(average_flat(stacked, [3.0, 1.0]),
                                   [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_flat(np.empty((0, 5)))

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            average_flat(np.ones((1, 3)), weights=[0.0])

    def test_matches_dict_shim(self):
        states = [state(1.0), state(2.0), state(5.0)]
        weights = [1.0, 2.0, 3.0]
        via_dict = average_states(states, weights)
        layout_keys = list(via_dict)
        stacked = np.stack([
            np.concatenate([np.asarray(s[k]).ravel() for k in layout_keys])
            for s in states
        ])
        flat = average_flat(stacked, weights)
        flat_dict_w = flat[:4].reshape(2, 2)
        np.testing.assert_allclose(via_dict["w"], flat_dict_w, atol=1e-12)


class TestPayloadBytes:
    def test_flat_vector_and_dict_cost_the_same(self):
        s = state(1.0)
        flat = np.concatenate([np.asarray(v).ravel() for v in s.values()])
        assert payload_num_bytes(s) == payload_num_bytes(flat) == 7 * 8

    def test_ledger_accepts_flat_vectors(self):
        ledger = CommunicationLedger()
        vec = np.zeros(10)
        cost = ledger.record_round(0, vec, [vec, vec])
        assert cost.bytes_down == 2 * 80
        assert cost.bytes_up == 2 * 80


@pytest.fixture(scope="module")
def tiny_model_pair(tiny_config):
    return (LTEModel(tiny_config, np.random.default_rng(1)),
            LTEModel(tiny_config, np.random.default_rng(2)))


class TestServerFlat:
    def test_flat_aggregation_matches_dict_aggregation(self, tiny_model_pair,
                                                       tiny_config):
        model_a, model_b = tiny_model_pair
        server_flat = FederatedServer(LTEModel(tiny_config,
                                               np.random.default_rng(3)))
        server_dict = FederatedServer(LTEModel(tiny_config,
                                               np.random.default_rng(3)))
        states = [model_a.state_dict(), model_b.state_dict()]
        vectors = [server_flat._space.state_to_flat(s) for s in states]
        server_flat.aggregate_flat(vectors)
        server_dict.aggregate(states)
        flat_state = server_flat.global_state()
        dict_state = server_dict.global_state()
        for key in dict_state:
            np.testing.assert_allclose(flat_state[key], dict_state[key],
                                       atol=1e-12, err_msg=key)

    def test_flat_roundtrip_through_global(self, tiny_config):
        server = FederatedServer(LTEModel(tiny_config, np.random.default_rng(4)))
        vec = server.global_flat()
        server.aggregate_flat([vec * 2.0])
        np.testing.assert_allclose(server.global_flat(), vec * 2.0)

    def test_wrong_size_vector_raises(self, tiny_config):
        server = FederatedServer(LTEModel(tiny_config, np.random.default_rng(5)))
        with pytest.raises(ValueError):
            server.aggregate_flat([np.zeros(3)])
        with pytest.raises(ValueError):
            server.aggregate_flat([])


class TestPrivacyFlat:
    def test_flat_matches_dict_mechanism_when_noiseless(self, tiny_model_pair):
        model_a, model_b = tiny_model_pair
        local, global_ = model_a.state_dict(), model_b.state_dict()
        mech = GaussianMechanism(clip_norm=0.5, noise_multiplier=0.0,
                                 rng=np.random.default_rng(0))
        via_dict = mech.privatize_update(local, global_)
        keys = list(local)
        flat_local = np.concatenate([np.asarray(local[k]).ravel() for k in keys])
        flat_global = np.concatenate([np.asarray(global_[k]).ravel()
                                      for k in keys])
        via_flat = mech.privatize_update_flat(flat_local, flat_global)
        flat_from_dict = np.concatenate([np.asarray(via_dict[k]).ravel()
                                         for k in keys])
        np.testing.assert_allclose(via_flat, flat_from_dict, atol=1e-10)

    def test_flat_clips_update_norm(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0,
                                 rng=np.random.default_rng(0))
        global_vec = np.zeros(4)
        local_vec = np.full(4, 10.0)
        private = mech.privatize_update_flat(local_vec, global_vec)
        assert np.linalg.norm(private - global_vec) <= 1.0 + 1e-9

    def test_size_mismatch_raises(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0,
                                 rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mech.privatize_update_flat(np.zeros(3), np.zeros(4))
