"""Tests for the communication ledger."""

from __future__ import annotations

import numpy as np

from repro.federated import CommunicationLedger


def state(n):
    return {"w": np.zeros((n, n))}


class TestLedger:
    def test_round_cost_math(self):
        ledger = CommunicationLedger()
        cost = ledger.record_round(0, state(10), [state(10), state(10)])
        payload = 10 * 10 * 8
        assert cost.bytes_down == payload * 2  # broadcast to 2 clients
        assert cost.bytes_up == payload * 2
        assert cost.total_bytes == payload * 4

    def test_accumulates_rounds(self):
        ledger = CommunicationLedger()
        ledger.record_round(0, state(4), [state(4)])
        ledger.record_round(1, state(4), [state(4), state(4)])
        assert ledger.num_rounds == 2
        assert ledger.total_bytes == sum(r.total_bytes for r in ledger.rounds)

    def test_bytes_per_round(self):
        ledger = CommunicationLedger()
        assert ledger.bytes_per_round() == 0.0
        ledger.record_round(0, state(2), [state(2)])
        assert ledger.bytes_per_round() == ledger.total_bytes

    def test_bigger_models_cost_more(self):
        small, large = CommunicationLedger(), CommunicationLedger()
        small.record_round(0, state(4), [state(4)])
        large.record_round(0, state(16), [state(16)])
        assert large.total_bytes > small.total_bytes

    def test_more_clients_cost_more(self):
        few, many = CommunicationLedger(), CommunicationLedger()
        few.record_round(0, state(8), [state(8)] * 2)
        many.record_round(0, state(8), [state(8)] * 5)
        assert many.total_bytes > few.total_bytes
