"""Tests for the federated server and client."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LTEModel, TrainingConfig
from repro.federated import ClientData, FederatedClient, FederatedServer


@pytest.fixture()
def splits(tiny_dataset, fresh_rng):
    train, valid, test = tiny_dataset.split((0.6, 0.2, 0.2), rng=fresh_rng)
    return ClientData(train=train, valid=valid, test=test)


class TestServer:
    def test_select_fraction_count(self, tiny_config):
        server = FederatedServer(LTEModel(tiny_config, np.random.default_rng(0)))
        rng = np.random.default_rng(1)
        picks = server.select_clients(10, 0.5, rng)
        assert len(picks) == 5
        assert len(set(picks)) == 5
        assert all(0 <= p < 10 for p in picks)

    def test_select_minimum_one(self, tiny_config):
        server = FederatedServer(LTEModel(tiny_config, np.random.default_rng(0)))
        picks = server.select_clients(10, 0.01, np.random.default_rng(1))
        assert len(picks) == 1

    def test_select_invalid_fraction(self, tiny_config):
        server = FederatedServer(LTEModel(tiny_config, np.random.default_rng(0)))
        with pytest.raises(ValueError):
            server.select_clients(10, 0.0, np.random.default_rng(1))

    def test_aggregate_updates_global(self, tiny_config):
        server = FederatedServer(LTEModel(tiny_config, np.random.default_rng(0)))
        a = LTEModel(tiny_config, np.random.default_rng(1)).state_dict()
        b = LTEModel(tiny_config, np.random.default_rng(2)).state_dict()
        server.aggregate([a, b])
        merged = server.global_state()
        for key in merged:
            np.testing.assert_allclose(merged[key], (a[key] + b[key]) / 2)


class TestClient:
    def test_receive_loads_weights(self, tiny_config, splits, tiny_mask, fresh_rng):
        client = FederatedClient(0, splits,
                                 LTEModel(tiny_config, np.random.default_rng(4)),
                                 tiny_mask, TrainingConfig(epochs=1, batch_size=8),
                                 fresh_rng)
        incoming = LTEModel(tiny_config, np.random.default_rng(9)).state_dict()
        client.receive_global(incoming)
        for key, value in client.model.state_dict().items():
            np.testing.assert_allclose(value, incoming[key])

    def test_local_train_returns_state_and_metrics(self, tiny_config, splits,
                                                   tiny_mask, fresh_rng):
        client = FederatedClient(0, splits,
                                 LTEModel(tiny_config, np.random.default_rng(4)),
                                 tiny_mask,
                                 TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
                                 fresh_rng)
        state, metrics = client.local_train(epochs=1)
        assert set(metrics) == {"loss", "lambda", "num_examples"}
        assert metrics["lambda"] == 0.0  # no distiller given
        assert metrics["num_examples"] == len(splits.train)
        assert set(state) == set(client.model.state_dict())

    def test_training_changes_weights(self, tiny_config, splits, tiny_mask,
                                      fresh_rng):
        client = FederatedClient(0, splits,
                                 LTEModel(tiny_config, np.random.default_rng(4)),
                                 tiny_mask,
                                 TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
                                 fresh_rng)
        before = client.model.state_dict()
        client.local_train(epochs=1)
        after = client.model.state_dict()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed

    def test_empty_train_data_rejected(self, tiny_config, tiny_dataset, tiny_mask,
                                       fresh_rng):
        from repro.data import TrajectoryDataset
        empty = TrajectoryDataset([], tiny_dataset.grid, tiny_dataset.network, 0.25)
        data = ClientData(train=empty, valid=empty, test=empty)
        with pytest.raises(ValueError):
            FederatedClient(0, data, LTEModel(tiny_config, np.random.default_rng(0)),
                            tiny_mask, TrainingConfig(), fresh_rng)

    def test_accuracies_in_unit_interval(self, tiny_config, splits, tiny_mask,
                                         fresh_rng):
        client = FederatedClient(0, splits,
                                 LTEModel(tiny_config, np.random.default_rng(4)),
                                 tiny_mask, TrainingConfig(epochs=1, batch_size=8),
                                 fresh_rng)
        assert 0.0 <= client.validation_accuracy() <= 1.0
        assert 0.0 <= client.test_accuracy() <= 1.0
