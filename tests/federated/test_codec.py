"""The exchange codec layer: wire round-trips, error feedback, byte
accounting, and the registry/forcing knobs.

The byte numbers are pinned, not approximated: a payload of ``P``
parameters costs exactly ``P * 8`` raw bytes (identity/float64),
``16 + 4 * P`` encoded float32 bytes, and
``16 + P + 4 * ceil(P / 64)`` encoded int8 bytes (header + values +
per-chunk scales).  Any drift in the accounting is a ledger regression.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    EncodedPayload,
    FederatedConfig,
    FederatedTrainer,
    Int8Codec,
    PAYLOAD_HEADER_BYTES,
    available_codecs,
    build_federation,
    codec_by_name,
    decode_payload,
    encode_with_feedback,
    get_exchange_codec,
    payload_num_bytes,
    resolve_exchange_codec,
    set_exchange_codec,
    train_isolated_then_average,
    use_exchange_codec,
)
from repro.federated import communication


@pytest.fixture(scope="module")
def federation(tiny_world):
    return build_federation(tiny_world, num_clients=3, keep_ratio=0.25)


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def one_round_config(**kwargs):
    return FederatedConfig(
        rounds=1, client_fraction=1.0, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=False, **kwargs,
    )


def vector(size=1000, seed=5, scale=0.05):
    return np.random.default_rng(seed).normal(0.0, scale, size=size)


class TestRoundTrips:
    def test_identity_is_passthrough(self):
        codec = codec_by_name("identity")
        flat = vector()
        assert codec.is_identity
        assert decode_payload(codec.encode(flat)) is not None
        assert np.array_equal(codec.decode(codec.encode(flat)), flat)

    def test_float32_roundtrip_is_cast(self):
        codec = codec_by_name("float32")
        flat = vector()
        payload = codec.encode(flat)
        assert payload.values.dtype == np.float32
        assert np.array_equal(codec.decode(payload),
                              flat.astype(np.float32).astype(np.float64))

    def test_int8_error_bounded_by_half_scale(self):
        codec = codec_by_name("int8")
        flat = vector(size=1000)
        decoded = codec.decode(codec.encode(flat))
        # Rounding to the nearest of 255 levels: each element's error is
        # at most half its chunk's scale (absmax / 127).
        chunk = codec.chunk
        padded = np.zeros(-(-flat.size // chunk) * chunk)
        padded[:flat.size] = flat
        per_chunk_scale = np.abs(padded.reshape(-1, chunk)).max(axis=1) / 127.0
        err_pad = np.zeros_like(padded)
        err_pad[:flat.size] = np.abs(decoded - flat)
        assert np.all(err_pad.reshape(-1, chunk)
                      <= per_chunk_scale[:, None] / 2.0 + 1e-12)

    def test_int8_encoding_is_deterministic(self):
        codec = codec_by_name("int8")
        flat = vector(seed=11)
        one, two = codec.encode(flat), codec.encode(flat)
        assert np.array_equal(one.values, two.values)
        assert np.array_equal(one.scales, two.scales)
        assert np.array_equal(codec.decode(one), codec.decode(two))

    def test_int8_zero_blocks_decode_to_zero(self):
        codec = Int8Codec("int8-test-zero", chunk=4, error_feedback=False)
        flat = np.zeros(10)
        payload = codec.encode(flat)
        assert np.all(payload.values == 0)
        assert np.all(payload.scales == 1.0)
        assert np.array_equal(codec.decode(payload), flat)

    def test_int8_rejects_non_finite(self):
        codec = codec_by_name("int8")
        bad = vector(size=16)
        bad[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            codec.encode(bad)

    def test_int8_ragged_tail_roundtrips(self):
        codec = Int8Codec("int8-test-ragged", chunk=64, error_feedback=False)
        flat = vector(size=100)  # not a multiple of the chunk
        payload = codec.encode(flat)
        assert payload.values.size == 100
        assert payload.scales.size == 2  # ceil(100 / 64)
        decoded = codec.decode(payload)
        assert decoded.size == 100
        assert np.max(np.abs(decoded - flat)) < np.abs(flat).max()

    def test_encoded_payload_pickles(self):
        payload = codec_by_name("int8").encode(vector(size=200))
        clone = pickle.loads(pickle.dumps(payload))
        assert clone.codec == payload.codec
        assert np.array_equal(clone.values, payload.values)
        assert np.array_equal(clone.scales, payload.scales)
        assert np.array_equal(decode_payload(clone), decode_payload(payload))


class TestErrorFeedback:
    def test_residual_is_what_the_wire_still_owes(self):
        codec = codec_by_name("int8")
        flat = vector(size=256, seed=2)
        payload, decoded, residual = encode_with_feedback(codec, flat, None)
        assert np.allclose(decoded + residual, flat, atol=1e-15)
        assert payload_num_bytes(payload) > 0

    def test_no_feedback_codec_returns_none_residual(self):
        for name in ("identity", "float32", "int8-nofb"):
            _, _, residual = encode_with_feedback(
                codec_by_name(name), vector(size=64), None)
            assert residual is None

    def test_feedback_cancels_noise_across_rounds(self):
        """Encoding the *same* vector repeatedly with the residual
        carried: the running mean of the decoded stream converges to the
        true vector (the whole point of error feedback), while the
        no-feedback stream keeps its one-shot quantisation bias."""
        target = vector(size=512, seed=7)
        with_fb = codec_by_name("int8")
        without = codec_by_name("int8-nofb")
        residual = None
        fb_sum = np.zeros_like(target)
        rounds = 64
        for _ in range(rounds):
            _, decoded, residual = encode_with_feedback(with_fb, target,
                                                        residual)
            fb_sum += decoded
        fb_error = np.abs(fb_sum / rounds - target).max()
        _, one_shot, _ = encode_with_feedback(without, target, None)
        raw_error = np.abs(one_shot - target).max()
        assert fb_error < raw_error / 4
        # The residual stays bounded by one quantisation step per chunk.
        assert np.abs(residual).max() <= np.abs(target).max() / 127.0 + 1e-12


class TestByteAccounting:
    """Satellite: payload_num_bytes must meter the FULL payload."""

    def test_pinned_bytes_per_codec_at_p1000(self):
        flat = vector(size=1000)
        assert payload_num_bytes(flat) == 8000  # raw float64 ndarray
        f32 = codec_by_name("float32").encode(flat)
        assert payload_num_bytes(f32) == PAYLOAD_HEADER_BYTES + 4 * 1000
        i8 = codec_by_name("int8").encode(flat)
        # 16 chunks of 64 -> 16 float32 scales.
        assert payload_num_bytes(i8) == PAYLOAD_HEADER_BYTES + 1000 + 4 * 16
        assert payload_num_bytes(i8) == 1080
        assert payload_num_bytes(f32) == 4016

    def test_scales_and_header_are_counted(self):
        payload = codec_by_name("int8").encode(vector(size=1000))
        assert (payload_num_bytes(payload)
                == PAYLOAD_HEADER_BYTES + payload.values.nbytes
                + payload.scales.nbytes)
        assert payload_num_bytes(payload) > payload.values.nbytes

    def test_int8_shrinks_beyond_gate(self):
        flat = vector(size=4096)
        f32 = payload_num_bytes(codec_by_name("float32").encode(flat))
        i8 = payload_num_bytes(codec_by_name("int8").encode(flat))
        assert f32 / i8 >= 3.5  # the acceptance gate, at primitive level

    @pytest.mark.fault_free  # per-upload byte math assumes every client uploads
    def test_ledger_totals_pinned_per_codec(self, federation, mask,
                                            tiny_config):
        clients, global_test = federation
        num_clients = len(clients)
        expected = {}
        costs = {}
        for name in ("identity", "float32", "int8"):
            trainer = FederatedTrainer(
                lte_factory(tiny_config), clients, mask,
                one_round_config(exchange_codec=name), global_test, seed=0)
            P = trainer.server.num_parameters
            expected["identity"] = P * 8
            expected["float32"] = PAYLOAD_HEADER_BYTES + 4 * P
            expected["int8"] = PAYLOAD_HEADER_BYTES + P + 4 * (-(-P // 64))
            costs[name] = trainer.run().ledger.rounds[0]
        for name, per_payload in expected.items():
            assert costs[name].bytes_down == per_payload * num_clients, name
            assert costs[name].bytes_up == per_payload * num_clients, name

    @pytest.mark.fault_free
    def test_isolated_path_meters_encoded_bytes(self, federation, mask,
                                                tiny_config):
        clients, global_test = federation
        result = train_isolated_then_average(
            lte_factory(tiny_config), clients, mask,
            one_round_config(exchange_codec="int8"), global_test, seed=0)
        cost = result.ledger.rounds[0]
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   one_round_config(), global_test, seed=0)
        P = trainer.server.num_parameters
        per_payload = PAYLOAD_HEADER_BYTES + P + 4 * (-(-P // 64))
        assert cost.bytes_up == per_payload * len(clients)
        assert cost.bytes_down == per_payload * len(clients)


class TestRegistryAndForcing:
    def test_registry_contents(self):
        names = available_codecs()
        for required in ("identity", "float32", "int8", "int8-nofb"):
            assert required in names

    def test_unknown_codec_lists_known_names(self):
        with pytest.raises(ValueError, match="identity"):
            codec_by_name("gzip")

    def test_resolution_precedence(self):
        explicit = Int8Codec("int8", chunk=32)
        assert resolve_exchange_codec(explicit) is explicit
        assert resolve_exchange_codec("float32").name == "float32"
        assert resolve_exchange_codec(None).name == get_exchange_codec().name
        with pytest.raises(TypeError):
            resolve_exchange_codec(123)

    def test_use_exchange_codec_restores(self):
        before = get_exchange_codec().name
        with use_exchange_codec("float32") as codec:
            assert codec.name == "float32"
            assert get_exchange_codec().name == "float32"
        assert get_exchange_codec().name == before

    def test_set_exchange_codec_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown exchange codec"):
            set_exchange_codec("nope")

    def test_env_forcing_applies_on_first_read(self, monkeypatch):
        monkeypatch.setattr(communication, "_ACTIVE_CODEC", None)
        monkeypatch.setenv("REPRO_EXCHANGE_CODEC", "int8-nofb")
        assert get_exchange_codec().name == "int8-nofb"

    def test_env_forcing_bad_name_fails_fast(self, monkeypatch):
        monkeypatch.setattr(communication, "_ACTIVE_CODEC", None)
        monkeypatch.setenv("REPRO_EXCHANGE_CODEC", "bogus")
        with pytest.raises(ValueError, match="unknown exchange codec"):
            get_exchange_codec()


class TestTrainerIntegration:
    def test_explicit_codec_wins_over_forcing(self, federation, mask,
                                              tiny_config):
        clients, global_test = federation
        with use_exchange_codec("int8"):
            trainer = FederatedTrainer(
                lte_factory(tiny_config), clients, mask,
                one_round_config(exchange_codec="identity"), global_test,
                seed=0)
        assert trainer.codec.is_identity

    def test_quantised_run_trains_and_differs_from_reference(
            self, federation, mask, tiny_config):
        clients, global_test = federation

        def run(codec):
            trainer = FederatedTrainer(
                lte_factory(tiny_config), clients, mask,
                one_round_config(exchange_codec=codec), global_test, seed=0)
            trainer.run()
            return trainer.server.global_flat(dtype=np.float64)

        exact = run("identity")
        quantised = run("int8")
        assert np.all(np.isfinite(quantised))
        assert not np.array_equal(exact, quantised)  # the wire is lossy
        # ... but only slightly: quantisation is a wire perturbation,
        # not a training divergence.
        assert np.abs(exact - quantised).max() < 0.1

    def test_clients_carry_uplink_residual(self, federation, mask,
                                           tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(
            lte_factory(tiny_config), clients, mask,
            one_round_config(exchange_codec="int8"), global_test, seed=0)
        trainer.run()
        carried = [c.codec_residual for c in trainer.clients]
        assert any(r is not None and np.abs(r).max() > 0 for r in carried)
        assert trainer._downlink_residual is not None

    def test_no_feedback_run_keeps_residuals_empty(self, federation, mask,
                                                   tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(
            lte_factory(tiny_config), clients, mask,
            one_round_config(exchange_codec="int8-nofb"), global_test, seed=0)
        trainer.run()
        assert all(c.codec_residual is None for c in trainer.clients)
        assert trainer._downlink_residual is None
