"""Tests for parameter aggregation."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import average_states, fedavg


def state(value, shape=(2, 2)):
    return OrderedDict([("w", np.full(shape, float(value))),
                        ("b", np.full((3,), float(value)))])


class TestAverageStates:
    def test_uniform_mean(self):
        result = average_states([state(1.0), state(3.0)])
        np.testing.assert_allclose(result["w"], 2.0)
        np.testing.assert_allclose(result["b"], 2.0)

    def test_weighted(self):
        result = average_states([state(0.0), state(4.0)], weights=[3.0, 1.0])
        np.testing.assert_allclose(result["w"], 1.0)

    def test_single_state_identity(self):
        result = average_states([state(7.0)])
        np.testing.assert_allclose(result["w"], 7.0)

    def test_key_mismatch_raises(self):
        bad = OrderedDict([("w", np.zeros((2, 2)))])  # missing "b"
        with pytest.raises(KeyError):
            average_states([state(1.0), bad])

    def test_shape_mismatch_raises(self):
        bad = state(1.0)
        bad["w"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            average_states([state(1.0), bad])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_states([])

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            average_states([state(1.0)], weights=[0.0])

    def test_wrong_weight_count(self):
        with pytest.raises(ValueError):
            average_states([state(1.0)], weights=[1.0, 2.0])

    def test_result_is_independent_copy(self):
        s = state(1.0)
        result = average_states([s])
        result["w"][:] = 99.0
        np.testing.assert_allclose(s["w"], 1.0)


class TestFedAvg:
    def test_example_count_weighting(self):
        result = fedavg([state(0.0), state(10.0)], num_examples=[9, 1])
        np.testing.assert_allclose(result["w"], 1.0)

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            fedavg([state(1.0)], num_examples=[0])


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=6),
)
def test_property_average_within_bounds(values):
    """The mean of states lies between the min and max client values."""
    result = average_states([state(v) for v in values])
    assert result["w"].min() >= min(values) - 1e-9
    assert result["w"].max() <= max(values) + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=2, max_size=5),
    seed=st.integers(0, 100),
)
def test_property_average_is_permutation_invariant(values, seed):
    states = [state(v) for v in values]
    shuffled = list(states)
    np.random.default_rng(seed).shuffle(shuffled)
    a = average_states(states)
    b = average_states(shuffled)
    # Float summation is not exactly permutation-invariant: inputs that
    # cancel (e.g. [1e-254, -eps, +eps]) leave order-dependent residue
    # at the cancellation scale, so allow an absolute slack of a few
    # ULP of the input magnitude alongside the relative tolerance.
    np.testing.assert_allclose(a["w"], b["w"], atol=1e-12)
