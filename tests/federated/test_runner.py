"""Round execution backends: serial/parallel determinism + fallback.

The hard requirement of the process-pool runner is that it is a pure
wall-clock optimisation: with fixed seeds, a parallel run must produce
the *bit-identical* round history and final global parameters as the
serial run, so every figure/table output is unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    FederatedConfig,
    FederatedTrainer,
    ProcessPoolRunner,
    RoundExecutionError,
    RoundRunner,
    SerialRunner,
    build_federation,
)

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="no fork start method on this platform"
)


@pytest.fixture(scope="module")
def federation(tiny_world):
    return build_federation(tiny_world, num_clients=3, keep_ratio=0.25)


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def fed_config(rounds=2, use_meta=False, workers=0):
    return FederatedConfig(
        rounds=rounds, client_fraction=1.0, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=use_meta, workers=workers,
    )


def run_trainer(federation, mask, tiny_config, *, workers=0, runner=None,
                rounds=2, use_meta=False):
    clients, global_test = federation
    trainer = FederatedTrainer(
        lte_factory(tiny_config), clients, mask,
        fed_config(rounds=rounds, use_meta=use_meta, workers=workers),
        global_test, seed=0, runner=runner,
    )
    result = trainer.run()
    return result, trainer.server.global_flat()


class TestSerialParallelDeterminism:
    @needs_fork
    def test_two_workers_reproduce_serial_run_exactly(self, federation, mask,
                                                      tiny_config):
        serial, serial_flat = run_trainer(federation, mask, tiny_config,
                                          workers=0)
        parallel, parallel_flat = run_trainer(federation, mask, tiny_config,
                                              workers=2)
        # RoundRecords are frozen dataclasses of floats: == is bit-exact.
        assert serial.history == parallel.history
        assert np.array_equal(serial_flat, parallel_flat)

    @needs_fork
    def test_determinism_holds_with_meta_distillation(self, federation, mask,
                                                      tiny_config):
        serial, serial_flat = run_trainer(federation, mask, tiny_config,
                                          workers=0, use_meta=True, rounds=2)
        parallel, parallel_flat = run_trainer(federation, mask, tiny_config,
                                              workers=2, use_meta=True, rounds=2)
        assert serial.history == parallel.history
        assert np.array_equal(serial_flat, parallel_flat)

    @needs_fork
    def test_parallel_clients_match_serial_clients(self, federation, mask,
                                                   tiny_config):
        """Worker results are synced back: the live client objects end in
        the same state as after a serial run."""
        serial, _ = run_trainer(federation, mask, tiny_config, workers=0)
        parallel, _ = run_trainer(federation, mask, tiny_config, workers=2)
        for cs, cp in zip(serial.clients, parallel.clients):
            assert np.array_equal(cs.flat_parameters(), cp.flat_parameters())

    @needs_fork
    def test_determinism_holds_with_dropout(self, federation, mask,
                                            tiny_config):
        """Dropout draws from the model's own generator; its state ships
        in the session snapshot, so stochastic-forward models stay
        bit-identical even though a worker's clients share one model."""
        import dataclasses
        dropout_config = dataclasses.replace(tiny_config, dropout=0.2)
        serial, serial_flat = run_trainer(federation, mask, dropout_config,
                                          workers=0, rounds=2)
        parallel, parallel_flat = run_trainer(federation, mask, dropout_config,
                                              workers=2, rounds=2)
        assert serial.history == parallel.history
        assert np.array_equal(serial_flat, parallel_flat)


class TestSmoke:
    @needs_fork
    def test_one_two_worker_round_completes_under_timeout(self, federation,
                                                          mask, tiny_config):
        """Tier-1 smoke: one 2-worker round finishes under a small
        per-task timeout (a hung worker would trip the runner's own
        deadline and surface as a serial-fallback warning instead)."""
        from repro.federated import WorkerSetup

        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   fed_config(rounds=1), global_test, seed=0)
        runner = ProcessPoolRunner(trainer._worker_setup(), workers=2,
                                   task_timeout=60.0)
        trainer._runner = runner
        result = trainer.run()
        assert len(result.history) == 1
        assert result.history[0].selected_clients == (0, 1, 2)


class _ExplodingRunner(RoundRunner):
    """A parallel-looking runner whose every round fails."""

    ships_state = True
    fallible = True
    closed = False

    def run_round(self, tasks, distiller=None):
        raise RoundExecutionError("injected failure")

    def close(self):
        self.closed = True


class TestFallback:
    def test_failing_runner_falls_back_to_serial_identically(self, federation,
                                                             mask, tiny_config):
        serial, serial_flat = run_trainer(federation, mask, tiny_config)
        exploding = _ExplodingRunner()
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            fallback, fallback_flat = run_trainer(federation, mask, tiny_config,
                                                  runner=exploding)
        assert exploding.closed
        assert serial.history == fallback.history
        assert np.array_equal(serial_flat, fallback_flat)

    @needs_fork
    def test_worker_crash_falls_back_to_serial(self, federation, mask,
                                               tiny_config):
        """A worker process that dies mid-initialisation breaks the pool;
        the trainer must finish the run serially with identical results."""
        parent_pid = os.getpid()
        base_factory = lte_factory(tiny_config)

        def crashing_factory():
            if os.getpid() != parent_pid:
                os._exit(3)  # simulate a hard worker crash
            return base_factory()

        clients, global_test = federation
        trainer = FederatedTrainer(
            crashing_factory, clients, mask, fed_config(rounds=1, workers=2),
            global_test, seed=0,
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = trainer.run()
        assert len(result.history) == 1

        serial, _ = run_trainer(federation, mask, tiny_config, rounds=1)
        assert serial.history == result.history

    @pytest.mark.eager_clients
    def test_serial_runner_errors_propagate(self, federation, mask,
                                            tiny_config):
        """Serial execution errors are real errors, not fallback fodder."""
        clients, global_test = federation

        def broken_factory():
            return LTEModel(tiny_config, np.random.default_rng(33))

        trainer = FederatedTrainer(broken_factory, clients, mask,
                                   fed_config(rounds=1), global_test, seed=0)
        # Sabotage: empty the first client's training set reference.
        trainer.clients[0].trainer.train_epochs = None
        with pytest.raises(TypeError):
            trainer.run()


class TestRunnerUnits:
    def test_process_pool_runner_validates_workers(self, federation, mask,
                                                   tiny_config):
        from repro.federated import WorkerSetup
        clients, _ = federation
        setup = WorkerSetup(model_factory=lte_factory(tiny_config),
                            client_data=tuple(), mask_builder=mask,
                            training=TrainingConfig())
        with pytest.raises(ValueError):
            ProcessPoolRunner(setup, workers=0)

    def test_config_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            FederatedConfig(workers=-1)

    def test_serial_runner_is_default(self, federation, mask, tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   fed_config(), global_test, seed=0)
        # In-process execution is the workers=0 default either way; the
        # lazy-clients leg routes it through the arena.
        from repro.federated import ArenaRunner
        expected = ArenaRunner if trainer.lazy else SerialRunner
        assert isinstance(trainer._get_runner(), expected)

    @needs_fork
    def test_workers_capped_at_client_count(self, federation, mask,
                                            tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   fed_config(workers=64), global_test, seed=0)
        runner = trainer._get_runner()
        assert isinstance(runner, ProcessPoolRunner)
        assert runner.workers == len(clients)
        runner.close()


class TestFloat32Exchange:
    @needs_fork
    def test_parallel_matches_serial_under_float32(self, federation, mask,
                                                   tiny_config):
        """The exchange dtype is re-asserted inside workers, so reduced
        precision does not break serial/parallel equivalence."""
        with nn.use_default_dtype("float32"):
            serial, serial_flat = run_trainer(federation, mask, tiny_config,
                                              workers=0, rounds=2)
            parallel, parallel_flat = run_trainer(federation, mask, tiny_config,
                                                  workers=2, rounds=2)
        assert serial.history == parallel.history
        assert np.array_equal(serial_flat, parallel_flat)
        assert serial_flat.dtype == np.float32
        # Sync-back ships the exact float64 parameters alongside the
        # float32 upload: the live clients must not get rounded.
        for cs, cp in zip(serial.clients, parallel.clients):
            assert np.array_equal(cs.flat_parameters(dtype=np.float64),
                                  cp.flat_parameters(dtype=np.float64))
