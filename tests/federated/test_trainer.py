"""Integration tests for the federated trainer (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    FederatedConfig,
    FederatedTrainer,
    build_federation,
    train_isolated_then_average,
)


@pytest.fixture(scope="module")
def federation(tiny_world):
    clients, global_test = build_federation(tiny_world, num_clients=3,
                                            keep_ratio=0.25)
    return clients, global_test


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def small_config(rounds=2, use_meta=False, fraction=1.0):
    return FederatedConfig(
        rounds=rounds, client_fraction=fraction, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=use_meta,
    )


class TestBuildFederation:
    def test_counts(self, federation, tiny_world):
        clients, global_test = federation
        assert len(clients) == 3
        total = sum(len(c.train) + len(c.valid) + len(c.test) for c in clients)
        # valid may alias train for tiny shards; just check trains are nonempty
        assert all(len(c.train) > 0 for c in clients)
        assert len(global_test) > 0

    def test_too_many_clients(self, tiny_world):
        with pytest.raises(ValueError):
            build_federation(tiny_world, num_clients=100, keep_ratio=0.25)


class TestFederatedTrainer:
    def test_run_produces_history_and_comm(self, federation, mask, tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   small_config(rounds=2), global_test, seed=0)
        result = trainer.run()
        assert len(result.history) == 2
        assert result.ledger.num_rounds == 2
        assert result.teacher_result is None
        for record in result.history:
            assert 0.0 <= record.global_accuracy <= 1.0
            assert record.selected_clients == (0, 1, 2)

    def test_meta_trains_teacher(self, federation, mask, tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   small_config(rounds=1, use_meta=True),
                                   global_test, seed=0)
        result = trainer.run()
        assert result.teacher_result is not None
        assert len(result.teacher_result.accepted) == len(clients)

    def test_client_fraction_selects_subset(self, federation, mask, tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   small_config(rounds=3, fraction=0.34),
                                   global_test, seed=0)
        result = trainer.run()
        for record in result.history:
            assert len(record.selected_clients) == 2  # ceil(0.34*3)

    def test_aggregation_moves_global_model(self, federation, mask, tiny_config):
        clients, global_test = federation
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   small_config(rounds=1), global_test, seed=0)
        before = trainer.server.global_state()
        result = trainer.run()
        after = result.global_model.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_training_improves_over_initial(self, federation, mask, tiny_config):
        from repro.core.training import model_segment_accuracy
        clients, global_test = federation
        initial = lte_factory(tiny_config)()
        initial_acc = model_segment_accuracy(initial, mask, global_test)
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   small_config(rounds=4), global_test, seed=0)
        result = trainer.run()
        assert result.history[-1].global_accuracy >= initial_acc - 0.05

    def test_no_clients_rejected(self, mask, tiny_config, federation):
        _, global_test = federation
        with pytest.raises(ValueError):
            FederatedTrainer(lte_factory(tiny_config), [], mask,
                             small_config(), global_test)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(rounds=0)
        with pytest.raises(ValueError):
            FederatedConfig(client_fraction=1.5)
        with pytest.raises(ValueError):
            FederatedConfig(aggregation="median")


class TestIsolatedAblation:
    def test_runs_and_reports_single_exchange(self, federation, mask, tiny_config):
        clients, global_test = federation
        result = train_isolated_then_average(
            lte_factory(tiny_config), clients, mask, small_config(rounds=2),
            global_test, seed=0,
        )
        assert len(result.history) == 1
        assert result.ledger.num_rounds == 1
        assert result.teacher_result is None
