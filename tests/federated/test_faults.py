"""Fault injection + per-client failure handling + quorum aggregation.

The load-bearing contract: under the same :class:`FaultPlan`, serial
and process-pool runs produce *bit-identical* round histories —
including the failure telemetry — because the fault schedule is a pure
function of ``(round, client, attempt)``, never of scheduling.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    ClientFaultError,
    FaultPlan,
    FaultSpec,
    FederatedConfig,
    FederatedTrainer,
    build_federation,
    resolve_fault_plan,
)
from repro.federated.faults import NORM_BLOWUP

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="no fork start method on this platform"
)

#: Explicit all-zero plan: genuinely fault-free even when the CI leg
#: forces REPRO_FAULT_PLAN (an explicit config plan always wins).
NO_FAULTS = "seed=0"

#: The mixed scenario of the acceptance criteria: ~30% of attempts fail.
MIXED_PLAN = "crash=0.1,dropout=0.1,straggler=0.05,corrupt=0.1,seed=7,delay=0.005"


@pytest.fixture(scope="module")
def federation(tiny_world):
    return build_federation(tiny_world, num_clients=3, keep_ratio=0.25)


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def fed_config(rounds=3, workers=0, **kwargs):
    return FederatedConfig(
        rounds=rounds, client_fraction=1.0, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=False, workers=workers, **kwargs,
    )


def run_trainer(federation, mask, tiny_config, config):
    clients, global_test = federation
    trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                               config, global_test, seed=0)
    result = trainer.run()
    return result, trainer.server.global_flat(dtype=np.float64)


class TestFaultPlan:
    def test_spec_string_round_trips(self):
        plan = FaultPlan.from_spec(MIXED_PLAN)
        again = FaultPlan.from_spec(plan.spec_string())
        assert again == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            FaultPlan.from_spec("explode=1.0")

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultSpec(crash=0.6, dropout=0.6)

    def test_draw_is_a_pure_function_of_coordinates(self):
        plan = FaultPlan.from_spec(MIXED_PLAN)
        first = [plan.draw(r, c, a) for r in range(4) for c in range(6)
                 for a in range(2)]
        second = [plan.draw(r, c, a) for r in range(4) for c in range(6)
                  for a in range(2)]
        assert first == second
        # The mixed plan at these rates must actually fire somewhere.
        assert any(event is not None for event in first)

    def test_round_window_limits_injection(self):
        plan = FaultPlan.from_spec("dropout=1.0,first_round=2,last_round=3")
        assert plan.draw(1, 0) is None
        assert plan.draw(2, 0).kind == "dropout"
        assert plan.draw(3, 5).kind == "dropout"
        assert plan.draw(4, 0) is None

    def test_corrupt_upload_modes(self):
        plan = FaultPlan.from_spec("corrupt=1.0,seed=3")
        flat = np.linspace(1.0, 2.0, 500)
        nan = plan.corrupt_upload(flat, 0, 0, 0, "nan")
        inf = plan.corrupt_upload(flat, 0, 0, 0, "inf")
        norm = plan.corrupt_upload(flat, 0, 0, 0, "norm")
        assert np.isnan(nan).sum() == 5
        assert np.isinf(inf).sum() == 5
        assert np.allclose(norm, flat * NORM_BLOWUP)
        assert np.all(np.isfinite(flat))  # the input is never mutated
        with pytest.raises(ValueError, match="corruption mode"):
            plan.corrupt_upload(flat, 0, 0, 0, "bogus")

    def test_env_forcing_applies_only_without_explicit_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "dropout=0.25,seed=9")
        forced = resolve_fault_plan(None)
        assert forced is not None and forced.spec.dropout == 0.25
        explicit = resolve_fault_plan("crash=0.5")
        assert explicit.spec.crash == 0.5 and explicit.spec.dropout == 0.0
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert resolve_fault_plan(None) is None

    def test_client_fault_error_pickles(self):
        import pickle
        err = pickle.loads(pickle.dumps(ClientFaultError("crash", 3, "boom")))
        assert (err.kind, err.client_id, err.message) == ("crash", 3, "boom")


class TestSerialParallelDeterminismUnderFaults:
    @needs_fork
    def test_mixed_fault_plan_histories_bit_identical(self, federation, mask,
                                                      tiny_config):
        """Crash + dropout + straggler + corrupt mix: serial and pool
        runs must agree on every record — survivors, failures, retries,
        statistics — and on the final global parameters."""
        serial, serial_flat = run_trainer(
            federation, mask, tiny_config,
            fed_config(fault_plan=MIXED_PLAN, task_retries=1))
        parallel, parallel_flat = run_trainer(
            federation, mask, tiny_config,
            fed_config(fault_plan=MIXED_PLAN, task_retries=1, workers=2))
        assert serial.history == parallel.history
        assert np.array_equal(serial_flat, parallel_flat)
        # The plan actually degraded the run, or this test proves nothing.
        assert any(r.failures for r in serial.history)
        # Live clients end bit-identical too (sync-back under faults).
        for cs, cp in zip(serial.clients, parallel.clients):
            assert np.array_equal(cs.flat_parameters(dtype=np.float64),
                                  cp.flat_parameters(dtype=np.float64))

    def test_surviving_stragglers_change_nothing(self, federation, mask,
                                                 tiny_config):
        """A straggler under no deadline just sleeps: the history must
        equal the fault-free run's bit for bit."""
        clean, clean_flat = run_trainer(federation, mask, tiny_config,
                                        fed_config(fault_plan=NO_FAULTS))
        slow, slow_flat = run_trainer(
            federation, mask, tiny_config,
            fed_config(fault_plan="straggler=1.0,delay=0.001"))
        assert clean.history == slow.history
        assert np.array_equal(clean_flat, slow_flat)


class TestPerClientFailureHandling:
    def test_retry_exhaustion_drops_the_client(self, federation, mask,
                                               tiny_config):
        """dropout=1.0 fails every attempt: each client is retried
        ``task_retries`` times and then dropped for the round."""
        result, _ = run_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=1, fault_plan="dropout=1.0", task_retries=2))
        record = result.history[0]
        assert record.completed_clients == ()
        assert record.failed_clients == (0, 1, 2)
        assert record.failure_kinds == ("dropout",) * 3
        assert all(f.attempts == 3 for f in record.failures)
        assert record.retries == ((0, 2), (1, 2), (2, 2))
        assert record.total_retries == 6

    def test_deadline_busting_straggler_times_out_deterministically(
            self, federation, mask, tiny_config):
        """delay >= deadline fails as a timeout without sleeping, so the
        outcome cannot depend on machine load."""
        result, _ = run_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=1, fault_plan="straggler=1.0,delay=30",
                       task_retries=0, task_deadline=0.05))
        record = result.history[0]
        assert record.failure_kinds == ("timeout",) * 3
        assert not record.aggregated

    def test_crash_after_training_leaves_client_at_pre_round_state(
            self, federation, mask, tiny_config):
        """A crash-before-upload consumes local training and dies: the
        live client must end the round exactly where it started."""
        clients, global_test = federation
        config = fed_config(rounds=1, fault_plan="crash=1.0", task_retries=0)
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   config, global_test, seed=0)
        before = [c.flat_parameters(dtype=np.float64) for c in trainer.clients]
        result = trainer.run()
        assert result.history[0].failure_kinds == ("crash",) * 3
        for client, saved in zip(trainer.clients, before):
            assert np.array_equal(client.flat_parameters(dtype=np.float64),
                                  saved)


class TestQuorum:
    def test_quorum_failure_holds_global_and_skips_round(self, federation,
                                                         mask, tiny_config):
        """With every client dropping every round, no round aggregates:
        the global model must stay at initialisation and the records
        must carry NaN-free sentinel statistics."""
        from repro.nn.flatten import FlatParameterSpace

        result, final_flat = run_trainer(
            federation, mask, tiny_config,
            fed_config(fault_plan="dropout=1.0", task_retries=0))
        init_flat = FlatParameterSpace.from_module(
            lte_factory(tiny_config)()).get_flat(dtype=np.float64)
        assert np.array_equal(final_flat, init_flat)
        for record in result.history:
            assert not record.aggregated
            assert record.mean_loss == 0.0
            assert record.mean_lambda == 0.0
            assert np.isfinite(record.global_accuracy)
        # The held accuracy is computed once and carried forward.
        accs = {r.global_accuracy for r in result.history}
        assert len(accs) == 1

    def test_min_clients_per_round_gates_aggregation(self, federation, mask,
                                                     tiny_config):
        """A quorum of 3 with ~1 client failing per round: rounds where
        fewer than 3 uploads survive are skipped, the others aggregate."""
        result, _ = run_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=4, fault_plan="dropout=0.4,seed=11",
                       task_retries=0, min_clients_per_round=3))
        degraded = [r for r in result.history if r.failures]
        assert degraded, "the plan never fired; pick a different seed"
        for record in result.history:
            assert record.aggregated == (len(record.completed_clients) >= 3)

    def test_quorum_config_validation(self):
        with pytest.raises(ValueError, match="min_clients_per_round"):
            fed_config(min_clients_per_round=0)
        with pytest.raises(ValueError, match="task_retries"):
            fed_config(task_retries=-1)
        with pytest.raises(ValueError, match="task_deadline"):
            fed_config(task_deadline=0.0)


class TestUploadValidation:
    def test_corrupt_uploads_are_rejected_not_aggregated(self, federation,
                                                         mask, tiny_config):
        """corrupt=1.0 poisons every wire payload: all uploads must be
        rejected server-side, the global model held, and the live
        clients keep their (healthy) locally-trained parameters."""
        from repro.nn.flatten import FlatParameterSpace

        clients, global_test = federation
        config = fed_config(rounds=1, fault_plan="corrupt=1.0",
                            task_retries=0)
        trainer = FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                   config, global_test, seed=0)
        init = [c.flat_parameters(dtype=np.float64) for c in trainer.clients]
        result = trainer.run()
        record = result.history[0]
        assert record.failure_kinds == ("rejected",) * 3
        assert not record.aggregated
        init_flat = FlatParameterSpace.from_module(
            lte_factory(tiny_config)()).get_flat(dtype=np.float64)
        assert np.array_equal(trainer.server.global_flat(dtype=np.float64),
                              init_flat)
        for client, before in zip(trainer.clients, init):
            # Training happened; only the upload was poisoned.
            assert not np.array_equal(
                client.flat_parameters(dtype=np.float64), before)
            assert np.all(np.isfinite(client.flat_parameters()))

    @needs_fork
    def test_corrupt_rejection_identical_under_pool(self, federation, mask,
                                                    tiny_config):
        serial, serial_flat = run_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=2, fault_plan="corrupt=0.5,seed=5",
                       task_retries=0))
        parallel, parallel_flat = run_trainer(
            federation, mask, tiny_config,
            fed_config(rounds=2, fault_plan="corrupt=0.5,seed=5",
                       task_retries=0, workers=2))
        assert serial.history == parallel.history
        assert np.array_equal(serial_flat, parallel_flat)
        assert any("rejected" in r.failure_kinds for r in serial.history)


class TestServerValidation:
    @pytest.fixture()
    def server(self, tiny_config):
        from repro.federated import FederatedServer
        return FederatedServer(lte_factory(tiny_config)())

    def test_validate_upload_accepts_healthy_vector(self, server):
        assert server.validate_upload(server.global_flat()) is None

    def test_validate_upload_rejects_wrong_shape(self, server):
        assert "shape" in server.validate_upload(np.zeros(3))

    def test_validate_upload_rejects_wrong_dtype(self, server):
        bad = np.zeros(server.num_parameters, dtype=np.int64)
        assert "dtype" in server.validate_upload(bad)

    def test_validate_upload_rejects_non_finite(self, server):
        nan = server.global_flat(dtype=np.float64)
        nan[::7] = np.nan
        assert "non-finite" in server.validate_upload(nan)
        inf = server.global_flat(dtype=np.float64)
        inf[0] = np.inf
        assert "non-finite" in server.validate_upload(inf)

    def test_validate_upload_rejects_norm_blowup(self, server):
        blown = server.global_flat(dtype=np.float64) + 1.0
        blown *= NORM_BLOWUP
        assert "norm" in server.validate_upload(blown)

    def test_aggregate_flat_refuses_non_finite(self, server):
        bad = server.global_flat(dtype=np.float64)
        bad[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            server.aggregate_flat([bad])
