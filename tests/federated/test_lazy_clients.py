"""Lazy client materialisation: shards + model arena + aggregation slab.

The tentpole contract is bitwise equivalence: a lazy run (client state
in flat shards, models in a bounded arena, uploads staged into the
aggregation slab) must reproduce the eager run — round histories,
final global parameters, per-client state, checkpoints — bit for bit,
under every composition: sync and async waves, serial and pool
backends, fault plans, lossy exchange codecs, and resume.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, LTEModel, TrainingConfig
from repro.federated import (
    AggregationSlab,
    ArenaRunner,
    FederatedCheckpoint,
    FederatedConfig,
    FederatedServer,
    FederatedTrainer,
    LazyClientList,
    ModelArena,
    build_federation,
    checkpoint_path,
    latest_checkpoint,
    use_lazy_clients,
)

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="no fork start method on this platform"
)


@pytest.fixture(scope="module")
def federation(tiny_world):
    return build_federation(tiny_world, num_clients=3, keep_ratio=0.25)


@pytest.fixture(scope="module")
def mask(tiny_world):
    return ConstraintMaskBuilder(tiny_world.network, radius=400.0)


def lte_factory(config):
    def factory():
        return LTEModel(config, np.random.default_rng(33))
    return factory


def fed_config(rounds=2, use_meta=False, **kwargs):
    kwargs.setdefault("client_fraction", 1.0)
    return FederatedConfig(
        rounds=rounds, local_epochs=1,
        training=TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
        use_meta=use_meta, **kwargs,
    )


def run_mode(federation, mask, tiny_config, *, lazy, seed=0, **kwargs):
    clients, global_test = federation
    trainer = FederatedTrainer(
        lte_factory(tiny_config), clients, mask,
        fed_config(lazy_clients=lazy, **kwargs), global_test, seed=seed,
    )
    result = trainer.run()
    return trainer, result


class TestLazyEagerBitwise:
    def test_sync_round_history_matches(self, federation, mask, tiny_config):
        eager_tr, eager = run_mode(federation, mask, tiny_config, lazy=False)
        lazy_tr, lazy = run_mode(federation, mask, tiny_config, lazy=True)
        assert eager.history == lazy.history
        assert np.array_equal(eager_tr.server.global_flat(dtype=np.float64),
                              lazy_tr.server.global_flat(dtype=np.float64))

    def test_materialised_clients_match_live_clients(self, federation, mask,
                                                     tiny_config):
        _, eager = run_mode(federation, mask, tiny_config, lazy=False)
        _, lazy = run_mode(federation, mask, tiny_config, lazy=True)
        assert isinstance(lazy.clients, LazyClientList)
        assert len(lazy.clients) == len(eager.clients)
        for live, view in zip(eager.clients, lazy.clients):
            assert np.array_equal(live.flat_parameters(dtype=np.float64),
                                  view.flat_parameters(dtype=np.float64))
            assert live.session_state().rng_state == \
                view.session_state().rng_state

    def test_meta_distillation_matches(self, federation, mask, tiny_config):
        _, eager = run_mode(federation, mask, tiny_config, lazy=False,
                            use_meta=True)
        _, lazy = run_mode(federation, mask, tiny_config, lazy=True,
                           use_meta=True)
        assert eager.history == lazy.history

    def test_arena_size_does_not_change_results(self, federation, mask,
                                                tiny_config):
        _, one = run_mode(federation, mask, tiny_config, lazy=True,
                          arena_size=1)
        _, three = run_mode(federation, mask, tiny_config, lazy=True,
                            arena_size=3)
        assert one.history == three.history

    def test_async_wave_history_matches(self, federation, mask, tiny_config):
        kwargs = dict(rounds=4, async_buffer=2, staleness_alpha=0.5,
                      latency="base=1.0,jitter=0.5,seed=5")
        _, eager = run_mode(federation, mask, tiny_config, lazy=False,
                            **kwargs)
        _, lazy = run_mode(federation, mask, tiny_config, lazy=True, **kwargs)
        assert eager.history == lazy.history

    def test_int8_codec_composes(self, federation, mask, tiny_config):
        _, eager = run_mode(federation, mask, tiny_config, lazy=False,
                            exchange_codec="int8")
        _, lazy = run_mode(federation, mask, tiny_config, lazy=True,
                           exchange_codec="int8")
        assert eager.history == lazy.history
        ledger_bytes = [(c.bytes_down, c.bytes_up) for c in eager.ledger.rounds]
        assert ledger_bytes == [(c.bytes_down, c.bytes_up)
                                for c in lazy.ledger.rounds]

    @needs_fork
    def test_pool_matches_lazy_serial(self, federation, mask, tiny_config):
        _, serial = run_mode(federation, mask, tiny_config, lazy=True)
        _, pool = run_mode(federation, mask, tiny_config, lazy=True,
                           workers=2)
        assert serial.history == pool.history

    def test_fault_retry_rehydrates_exactly(self, federation, mask,
                                            tiny_config):
        kwargs = dict(rounds=4, fault_plan="crash=0.3,dropout=0.2,seed=11",
                      task_retries=2)
        _, eager = run_mode(federation, mask, tiny_config, lazy=False,
                            **kwargs)
        _, lazy = run_mode(federation, mask, tiny_config, lazy=True, **kwargs)
        # Same failures, same retries, same survivors, same floats.
        assert eager.history == lazy.history

    def test_env_forcing_applies_when_config_is_none(self, federation, mask,
                                                     tiny_config):
        clients, global_test = federation
        with use_lazy_clients(True):
            trainer = FederatedTrainer(lte_factory(tiny_config), clients,
                                       mask, fed_config(), global_test,
                                       seed=0)
        assert trainer.lazy
        assert isinstance(trainer.clients, LazyClientList)
        with use_lazy_clients(False):
            trainer = FederatedTrainer(lte_factory(tiny_config), clients,
                                       mask, fed_config(), global_test,
                                       seed=0)
        assert not trainer.lazy


class TestArenaHygiene:
    def test_checkout_checkin_reuses_slots(self, federation, mask,
                                           tiny_config):
        clients, _ = federation
        arena = ModelArena(lte_factory(tiny_config), mask, TrainingConfig(),
                           size=1)
        first = arena.checkout(0, clients[0])
        arena.checkin(first)
        second = arena.checkout(1, clients[1])
        assert second is first  # one slot, rebound
        assert second.client_id == 1
        assert arena.live_slots == 1

    def test_exhausted_arena_raises(self, federation, mask, tiny_config):
        clients, _ = federation
        arena = ModelArena(lte_factory(tiny_config), mask, TrainingConfig(),
                           size=1)
        arena.checkout(0, clients[0])
        with pytest.raises(RuntimeError, match="arena exhausted"):
            arena.checkout(1, clients[1])

    def test_no_state_bleed_between_clients(self, federation, mask,
                                            tiny_config):
        """Two clients sharing one arena slot train exactly like two
        eager clients owning private models."""
        _, eager = run_mode(federation, mask, tiny_config, lazy=False,
                            rounds=3)
        _, lazy = run_mode(federation, mask, tiny_config, lazy=True,
                           rounds=3, arena_size=1)
        for live, view in zip(eager.clients, lazy.clients):
            assert np.array_equal(live.flat_parameters(dtype=np.float64),
                                  view.flat_parameters(dtype=np.float64))

    def test_materialised_view_is_isolated(self, federation, mask,
                                           tiny_config):
        """Mutating a materialised client cannot corrupt the shard."""
        trainer, _ = run_mode(federation, mask, tiny_config, lazy=True)
        before = trainer.shards[0].params_flat.copy()
        view = trainer.clients[0]
        view.flat_parameters()  # read is fine
        view.receive_global_flat(np.zeros_like(before))  # sabotage the view
        assert np.array_equal(trainer.shards[0].params_flat, before)
        fresh = trainer.clients[0]
        assert np.array_equal(fresh.flat_parameters(dtype=np.float64), before)

    def test_untrained_shards_stay_pristine(self, federation, mask,
                                            tiny_config):
        """With a small sampled fraction the unsampled majority keeps
        params_flat=None (no per-client parameter copies) and shares
        the arena's single pristine optimiser-state template."""
        clients, global_test = federation
        trainer = FederatedTrainer(
            lte_factory(tiny_config), clients, mask,
            fed_config(rounds=1, client_fraction=0.34, lazy_clients=True),
            global_test, seed=0)
        pristine_opt = trainer.arena.pristine_session.optimizer_state
        assert all(s.params_flat is None for s in trainer.shards)
        assert all(s.session.optimizer_state is pristine_opt
                   for s in trainer.shards)
        result = trainer.run()
        sampled = set(result.history[0].selected_clients)
        for i, shard in enumerate(trainer.shards):
            assert (shard.params_flat is not None) == (i in sampled)


class TestSlabAggregation:
    def _server(self, tiny_config):
        return FederatedServer(LTEModel(tiny_config, np.random.default_rng(33)))

    def test_slab_equals_per_vector_aggregation(self, tiny_config):
        server = self._server(tiny_config)
        p = server.num_parameters
        rng = np.random.default_rng(4)
        vectors = [rng.normal(size=p).astype(np.float32) for _ in range(5)]
        expected = server.aggregate_flat(list(vectors))
        slab = AggregationSlab(p)
        rows = slab.rows(len(vectors))
        for i, vec in enumerate(vectors):
            rows[i] = vec
        got = server.aggregate_rows(rows[: len(vectors)])
        assert np.array_equal(expected, got)
        weighted = server.aggregate_flat(list(vectors), [1.0, 2, 3, 4, 5])
        got_w = server.aggregate_rows(rows[: len(vectors)], [1.0, 2, 3, 4, 5])
        assert np.array_equal(weighted, got_w)

    def test_slab_grows_and_reuses(self, tiny_config):
        slab = AggregationSlab(8, capacity=2)
        first = slab.rows(2)
        assert slab.capacity == 2
        again = slab.rows(2)
        assert again.base is first.base  # same backing buffer
        grown = slab.rows(5)
        assert grown.shape == (5, 8)
        assert slab.capacity >= 5

    def test_rejection_reasons_match_validate_upload(self, tiny_config):
        server = self._server(tiny_config)
        p = server.num_parameters
        bad_nan = np.zeros(p)
        bad_nan[3] = np.nan
        bad_norm = np.full(p, 1e6)
        good = np.full(p, 0.5)
        slab = AggregationSlab(p)
        rows = slab.rows(3)
        rows[0], rows[1], rows[2] = bad_nan, bad_norm, good
        reasons = server.validate_rows(rows)
        assert reasons[0] == server.validate_upload(bad_nan)
        assert reasons[1] == server.validate_upload(bad_norm)
        assert reasons[2] is None is server.validate_upload(good)
        # The pre-slab screen catches what cannot be staged at all.
        assert server.screen_upload(np.zeros(3)) == \
            server.validate_upload(np.zeros(3))
        assert server.screen_upload(np.zeros(p, dtype=np.int64)) == \
            server.validate_upload(np.zeros(p, dtype=np.int64))
        assert server.screen_upload(good) is None

    def test_empty_slab_rejected(self, tiny_config):
        server = self._server(tiny_config)
        slab = AggregationSlab(server.num_parameters)
        with pytest.raises(ValueError, match="non-empty"):
            server.aggregate_rows(slab.rows(0))


class TestLazyCheckpointResume:
    CKPT_KW = dict(rounds=4, exchange_codec="int8", async_buffer=2,
                   staleness_alpha=0.5, latency="base=1.0,jitter=0.5,seed=5")

    def make_trainer(self, federation, mask, tiny_config, **kwargs):
        clients, global_test = federation
        return FederatedTrainer(lte_factory(tiny_config), clients, mask,
                                fed_config(**kwargs), global_test, seed=0)

    def test_bitwise_resume_lazy_int8_async(self, federation, mask,
                                            tiny_config, tmp_path):
        """The acceptance composition: lazy + int8 codec + async waves,
        killed at the round-2 checkpoint and resumed from a fresh
        trainer, matches the uninterrupted run bit for bit.  The kill
        is simulated from the full run's *intermediate* checkpoint —
        async waves know the final round drains the wire, so a shorter
        run would be legitimately different."""
        straight = self.make_trainer(
            federation, mask, tiny_config, lazy_clients=True,
            checkpoint_every=2, checkpoint_dir=str(tmp_path),
            **self.CKPT_KW)
        full = straight.run()
        midpoint = checkpoint_path(str(tmp_path), 2)

        resumed_trainer = self.make_trainer(
            federation, mask, tiny_config, lazy_clients=True,
            resume_from=midpoint, **self.CKPT_KW)
        resumed = resumed_trainer.run()
        assert resumed.history == full.history
        assert resumed.ledger.rounds == full.ledger.rounds
        assert np.array_equal(
            straight.server.global_flat(dtype=np.float64),
            resumed_trainer.server.global_flat(dtype=np.float64))
        for shard, full_shard in zip(resumed_trainer.shards,
                                     straight.shards):
            assert np.array_equal(shard.params_flat, full_shard.params_flat)

    def test_lazy_checkpoint_preserves_pristine_none(self, federation, mask,
                                                     tiny_config, tmp_path):
        trainer = self.make_trainer(
            federation, mask, tiny_config, lazy_clients=True, rounds=1,
            client_fraction=0.34, checkpoint_every=1,
            checkpoint_dir=str(tmp_path))
        trainer.run()
        ckpt = FederatedCheckpoint.load(latest_checkpoint(str(tmp_path)))
        assert ckpt.lazy_clients
        assert ckpt.version == 3
        assert any(p is None for p in ckpt.client_params)  # unsampled shards

    def test_mode_mismatch_rejected(self, federation, mask, tiny_config,
                                    tmp_path):
        trainer = self.make_trainer(
            federation, mask, tiny_config, lazy_clients=True, rounds=2,
            checkpoint_every=2, checkpoint_dir=str(tmp_path))
        trainer.run()
        eager = self.make_trainer(
            federation, mask, tiny_config, lazy_clients=False, rounds=4,
            checkpoint_every=2, checkpoint_dir=str(tmp_path),
            resume_from=str(tmp_path))
        with pytest.raises(ValueError, match="client mode does not match"):
            eager.run()

    def test_v2_checkpoint_still_loads(self, tmp_path):
        """A pre-PR-10 pickle (version 2, no lazy_clients attribute)
        loads and reads as an eager checkpoint."""
        checkpoint = FederatedCheckpoint(
            next_round=1, global_flat=np.zeros(4), client_sessions=(),
            client_params=(np.ones(4),), trainer_rng_state={},
            teacher_flat=None)
        checkpoint.version = 2
        del checkpoint.__dict__["lazy_clients"]  # as pickled by PR 9
        path = checkpoint.save(checkpoint_path(str(tmp_path), 1))
        loaded = FederatedCheckpoint.load(path)
        assert loaded.version == 2
        assert loaded.lazy_clients is False


class TestArenaRunnerUnits:
    def test_requires_state_shipping_results(self, federation, mask,
                                             tiny_config):
        """A lazy trainer rejects injected runners whose results don't
        carry session state — shards would silently stop advancing."""

        class StatelessRunner(ArenaRunner):
            def run_round_tolerant(self, tasks, distiller=None, policy=None):
                execution = super().run_round_tolerant(tasks, distiller,
                                                       policy)
                for i, result in enumerate(execution.results):
                    execution.results[i] = dataclasses.replace(result,
                                                               session=None)
                return execution

        clients, global_test = federation
        trainer = FederatedTrainer(
            lte_factory(tiny_config), clients, mask,
            fed_config(rounds=1, lazy_clients=True), global_test, seed=0)
        trainer._runner = StatelessRunner(trainer._worker_setup(),
                                          trainer.arena)
        with pytest.raises(ValueError, match="ships_state"):
            trainer.run()

    def test_setup_teacher_sentinel_requires_snapshot(self, federation, mask,
                                                      tiny_config):
        from repro.federated import RoundTask, TaskExecutor
        clients, global_test = federation
        trainer = FederatedTrainer(
            lte_factory(tiny_config), clients, mask,
            fed_config(rounds=1, lazy_clients=True), global_test, seed=0)
        executor = TaskExecutor(trainer._worker_setup(), trainer.arena)
        task = RoundTask(client_id=0,
                         global_flat=trainer.server.global_flat(),
                         epochs=1, teacher_flat=None, session=None,
                         use_setup_teacher=True)
        with pytest.raises(RuntimeError, match="setup teacher"):
            executor.execute(task)
