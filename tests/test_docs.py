"""Docs-check: documented commands, paths, and references must resolve.

Runs ``tools/check_docs.py`` (the same script CI or a human can run
directly) as part of the tier-1 suite, so README.md and
docs/PERFORMANCE.md cannot drift from the code they describe.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_docs.py")


def test_docs_exist():
    assert os.path.exists(os.path.join(REPO_ROOT, "README.md"))
    assert os.path.exists(os.path.join(REPO_ROOT, "docs", "PERFORMANCE.md"))
    assert os.path.exists(os.path.join(REPO_ROOT, "docs", "ROBUSTNESS.md"))


def test_docs_check_passes():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, CHECKER], capture_output=True, text=True, env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"docs-check failed:\n{result.stdout}\n{result.stderr}"
    )


def test_readme_documents_tier1_command():
    """The README's verify command must be the ROADMAP's tier-1 command."""
    with open(os.path.join(REPO_ROOT, "README.md")) as handle:
        readme = handle.read()
    assert "python -m pytest -x -q" in readme


def test_performance_doc_covers_every_knob():
    """Each perf knob must be documented by its real, importable name."""
    with open(os.path.join(REPO_ROOT, "docs", "PERFORMANCE.md")) as handle:
        perf = handle.read()
    for knob in ("workers", "use_fused_kernels", "use_sparse_masks",
                 "set_default_dtype", "clear_batch_cache", "build_for",
                 "warm"):
        assert knob in perf, f"PERFORMANCE.md does not document {knob!r}"


def test_robustness_doc_covers_every_knob():
    """Each fault-tolerance knob must be documented by its real name."""
    with open(os.path.join(REPO_ROOT, "docs", "ROBUSTNESS.md")) as handle:
        doc = handle.read()
    for knob in ("fault_plan", "task_retries", "task_deadline", "task_backoff",
                 "min_clients_per_round", "max_upload_norm", "checkpoint_every",
                 "checkpoint_dir", "resume_from", "validate_upload",
                 "REPRO_FAULT_PLAN", "fault_free", "FaultPlan",
                 "FederatedCheckpoint", "latest_checkpoint"):
        assert knob in doc, f"ROBUSTNESS.md does not document {knob!r}"
