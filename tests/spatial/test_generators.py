"""Tests for synthetic road network generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial import grid_city, ring_city


class TestGridCity:
    def test_deterministic_with_seed(self):
        a = grid_city(nx=5, ny=5, rng=np.random.default_rng(3))
        b = grid_city(nx=5, ny=5, rng=np.random.default_rng(3))
        assert a.num_segments == b.num_segments
        for sa, sb in zip(a.segments, b.segments):
            assert sa.start == sb.start and sa.end == sb.end

    def test_strongly_connected_even_with_drops(self):
        net = grid_city(nx=8, ny=8, drop_prob=0.3, rng=np.random.default_rng(1))
        assert net.is_strongly_connected()

    def test_segment_ids_contiguous(self):
        net = grid_city(nx=4, ny=4, rng=np.random.default_rng(0))
        assert [s.segment_id for s in net.segments] == list(range(net.num_segments))

    def test_bidirectional_streets(self):
        net = grid_city(nx=4, ny=4, drop_prob=0.0, diagonal_prob=0.0,
                        rng=np.random.default_rng(0))
        pairs = {(s.start_node, s.end_node) for s in net.segments}
        for a, b in list(pairs):
            assert (b, a) in pairs

    def test_segment_lengths_block_scale(self):
        net = grid_city(nx=6, ny=6, spacing=250.0, jitter=0.1,
                        rng=np.random.default_rng(2))
        lengths = [s.length for s in net.segments]
        assert 100.0 < np.median(lengths) < 500.0

    def test_too_small_lattice(self):
        with pytest.raises(ValueError):
            grid_city(nx=1, ny=5)

    def test_no_drop_keeps_full_lattice(self):
        net = grid_city(nx=3, ny=3, drop_prob=0.0, diagonal_prob=0.0,
                        rng=np.random.default_rng(0))
        # 2*3 horizontal + 3*2 vertical streets, two directions each.
        assert net.num_segments == (2 * 3 + 3 * 2) * 2


class TestRingCity:
    def test_strongly_connected(self):
        assert ring_city(num_nodes=12).is_strongly_connected()

    def test_hub_present(self):
        net = ring_city(num_nodes=10, spokes=4)
        hub_degree = len(net.out_segments(10))
        assert hub_degree == 4

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring_city(num_nodes=2)
