"""Tests for the grid-bucket spatial index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Point, SegmentIndex, grid_city


@pytest.fixture(scope="module")
def world():
    network = grid_city(nx=6, ny=6, spacing=200.0, rng=np.random.default_rng(8))
    return network, SegmentIndex(network, bucket_size=150.0)


class TestQueries:
    def test_matches_linear_scan(self, world):
        network, index = world
        rng = np.random.default_rng(1)
        min_x, min_y, max_x, max_y = network.bounding_box()
        for _ in range(25):
            p = Point(rng.uniform(min_x, max_x), rng.uniform(min_y, max_y))
            got = {s.segment_id for s, _ in index.query(p, 120.0)}
            expected = {s.segment_id for s, _ in network.segments_near(p, 120.0)}
            if expected:  # index may widen when nothing matches
                assert got == expected

    def test_sorted_by_distance(self, world):
        _, index = world
        results = index.query(Point(300, 300), 400.0)
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_widens_until_found(self, world):
        _, index = world
        # A point far outside the network still returns candidates.
        results = index.query(Point(-5000.0, -5000.0), 50.0)
        assert results

    def test_invalid_radius(self, world):
        _, index = world
        with pytest.raises(ValueError):
            index.query(Point(0, 0), 0.0)

    def test_invalid_bucket_size(self, world):
        network, _ = world
        with pytest.raises(ValueError):
            SegmentIndex(network, bucket_size=-1.0)


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(-100, 1100, allow_nan=False),
    y=st.floats(-100, 1100, allow_nan=False),
    radius=st.floats(10, 500, allow_nan=False),
)
def test_property_index_results_within_radius_match_scan(x, y, radius):
    """Every hit reported inside the requested radius is correct, and no
    in-radius segment is missed (when any exist)."""
    network = grid_city(nx=5, ny=5, spacing=250.0, rng=np.random.default_rng(2))
    index = SegmentIndex(network, bucket_size=200.0)
    p = Point(x, y)
    expected = {s.segment_id for s, _ in network.segments_near(p, radius)}
    got_all = index.query(p, radius)
    got_within = {s.segment_id for s, d in got_all if d <= radius}
    assert got_within == expected
