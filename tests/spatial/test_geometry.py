"""Tests for planar geometry primitives."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import (
    Point,
    euclidean,
    haversine_m,
    latlng_to_local,
    local_to_latlng,
    point_segment_distance,
    project_onto_segment,
)

coords = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)


class TestPoints:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_euclidean_accepts_tuples(self):
        assert euclidean((0, 0), (0, 2)) == 2.0
        assert euclidean(Point(1, 1), (1, 1)) == 0.0

    def test_as_array(self):
        np.testing.assert_allclose(Point(1.5, -2.0).as_array(), [1.5, -2.0])


class TestProjection:
    def test_interior_projection(self):
        proj, ratio = project_onto_segment(Point(5, 3), Point(0, 0), Point(10, 0))
        assert proj == Point(5, 0)
        assert ratio == 0.5

    def test_clamps_before_start(self):
        proj, ratio = project_onto_segment(Point(-4, 1), Point(0, 0), Point(10, 0))
        assert proj == Point(0, 0)
        assert ratio == 0.0

    def test_clamps_after_end(self):
        proj, ratio = project_onto_segment(Point(15, -2), Point(0, 0), Point(10, 0))
        assert proj == Point(10, 0)
        assert ratio == 1.0

    def test_degenerate_segment(self):
        proj, ratio = project_onto_segment(Point(3, 3), Point(1, 1), Point(1, 1))
        assert proj == Point(1, 1)
        assert ratio == 0.0

    def test_distance_perpendicular(self):
        assert point_segment_distance(Point(5, 7), Point(0, 0), Point(10, 0)) == 7.0


class TestLatLng:
    def test_haversine_known_value(self):
        # One degree of latitude is about 111.2 km.
        d = haversine_m(39.0, 116.0, 40.0, 116.0)
        assert 110_000 < d < 112_500

    def test_haversine_zero(self):
        assert haversine_m(39.9, 116.4, 39.9, 116.4) == 0.0

    def test_local_projection_roundtrip(self):
        ref = (39.9, 116.4)  # Beijing
        p = latlng_to_local(39.95, 116.5, *ref)
        lat, lng = local_to_latlng(p, *ref)
        assert math.isclose(lat, 39.95, abs_tol=1e-9)
        assert math.isclose(lng, 116.5, abs_tol=1e-9)

    def test_local_projection_matches_haversine_nearby(self):
        ref = (39.9, 116.4)
        p = latlng_to_local(39.91, 116.41, *ref)
        planar = math.hypot(p.x, p.y)
        true = haversine_m(39.9, 116.4, 39.91, 116.41)
        assert abs(planar - true) / true < 0.01  # <1% error within ~1.5 km


@settings(max_examples=50, deadline=None)
@given(px=coords, py=coords, ax=coords, ay=coords, bx=coords, by=coords)
def test_property_projection_is_nearest_point(px, py, ax, ay, bx, by):
    """The projection is no farther than either endpoint."""
    p, a, b = Point(px, py), Point(ax, ay), Point(bx, by)
    proj, ratio = project_onto_segment(p, a, b)
    d = p.distance_to(proj)
    assert 0.0 <= ratio <= 1.0
    assert d <= p.distance_to(a) + 1e-6
    assert d <= p.distance_to(b) + 1e-6


@settings(max_examples=50, deadline=None)
@given(ax=coords, ay=coords, bx=coords, by=coords)
def test_property_endpoints_project_to_themselves(ax, ay, bx, by):
    a, b = Point(ax, ay), Point(bx, by)
    proj_a, ratio_a = project_onto_segment(a, a, b)
    assert a.distance_to(proj_a) < 1e-6
    assert ratio_a == pytest.approx(0.0, abs=1e-9)
