"""Tests for the road network graph and route distances."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro.spatial import Point, RoadNetwork, RoadSegment, grid_city


def line_network():
    """Three nodes in a line, bidirectional: 0 -(100m)- 1 -(100m)- 2."""
    nodes = {0: Point(0, 0), 1: Point(100, 0), 2: Point(200, 0)}
    segs = []
    for u, v in ((0, 1), (1, 0), (1, 2), (2, 1)):
        segs.append(RoadSegment(len(segs), u, v, nodes[u], nodes[v]))
    return RoadNetwork(nodes, segs)


class TestConstruction:
    def test_segment_ids_must_be_contiguous(self):
        nodes = {0: Point(0, 0), 1: Point(1, 0)}
        seg = RoadSegment(5, 0, 1, nodes[0], nodes[1])
        with pytest.raises(ValueError):
            RoadNetwork(nodes, [seg])

    def test_unknown_node_raises(self):
        nodes = {0: Point(0, 0)}
        seg = RoadSegment(0, 0, 9, nodes[0], Point(1, 1))
        with pytest.raises(KeyError):
            RoadNetwork(nodes, [seg])

    def test_empty_nodes(self):
        with pytest.raises(ValueError):
            RoadNetwork({}, [])


class TestSegments:
    def test_length_and_position(self):
        net = line_network()
        seg = net.segment(0)
        assert seg.length == 100.0
        assert seg.position_at(0.25) == Point(25.0, 0.0)
        assert seg.position_at(-1.0) == Point(0.0, 0.0)  # clamped
        assert seg.position_at(2.0) == Point(100.0, 0.0)

    def test_project(self):
        net = line_network()
        matched, ratio, dist = net.segment(0).project(Point(30, 40))
        assert matched == Point(30, 0)
        assert ratio == pytest.approx(0.3)
        assert dist == pytest.approx(40.0)

    def test_successors(self):
        net = line_network()
        successor_ids = {s.segment_id for s in net.successors(0)}
        assert successor_ids == {1, 2}  # reverse 1->0 and forward 1->2


class TestDistances:
    def test_node_distance_line(self):
        net = line_network()
        assert net.node_distance(0, 2) == pytest.approx(200.0)
        assert net.node_distance(2, 0) == pytest.approx(200.0)
        assert net.node_distance(1, 1) == 0.0

    def test_route_distance_same_segment_forward(self):
        net = line_network()
        assert net.route_distance(0, 0.2, 0, 0.7) == pytest.approx(50.0)

    def test_route_distance_same_segment_backward_goes_around(self):
        net = line_network()
        # Going "backwards" on a directed segment requires the reverse edge:
        # finish segment 0 (80 m) then travel 20 m along reverse segment 1
        # ... but reverse starts at node 1; 0.8 along seg1 means 80m from node1.
        d = net.route_distance(0, 0.7, 0, 0.2)
        assert d == pytest.approx((1 - 0.7) * 100 + 100 + 0.2 * 100)

    def test_route_distance_across_segments(self):
        net = line_network()
        # From middle of 0->1 to middle of 1->2: 50 + 0 + 50.
        assert net.route_distance(0, 0.5, 2, 0.5) == pytest.approx(100.0)

    def test_symmetric_route_distance_takes_min(self):
        net = line_network()
        forward = net.route_distance(0, 0.7, 0, 0.2)
        backward = net.route_distance(0, 0.2, 0, 0.7)
        assert net.symmetric_route_distance(0, 0.7, 0, 0.2) == pytest.approx(
            min(forward, backward)
        )

    def test_unreachable_is_inf(self):
        nodes = {0: Point(0, 0), 1: Point(100, 0), 2: Point(200, 0), 3: Point(300, 0)}
        segs = [RoadSegment(0, 0, 1, nodes[0], nodes[1]),
                RoadSegment(1, 2, 3, nodes[2], nodes[3])]
        net = RoadNetwork(nodes, segs)
        assert math.isinf(net.node_distance(0, 2))

    def test_dijkstra_matches_networkx(self, tiny_network):
        graph = nx.DiGraph()
        for seg in tiny_network.segments:
            graph.add_edge(seg.start_node, seg.end_node, weight=seg.length)
        rng = np.random.default_rng(4)
        nodes = sorted(tiny_network.nodes)
        for _ in range(20):
            a, b = rng.choice(nodes, size=2, replace=False)
            expected = nx.shortest_path_length(graph, int(a), int(b), weight="weight")
            assert tiny_network.node_distance(int(a), int(b)) == pytest.approx(expected)

    def test_cache_cleared(self, tiny_network):
        tiny_network.node_distance(0, 1)
        assert tiny_network._sssp_cache
        tiny_network.clear_cache()
        assert not tiny_network._sssp_cache


class TestQueriesAndConnectivity:
    def test_nearest_segment(self):
        net = line_network()
        seg, dist = net.nearest_segment(Point(150, 30))
        assert seg.segment_id in (2, 3)
        assert dist == pytest.approx(30.0)

    def test_segments_near_radius(self):
        net = line_network()
        found = net.segments_near(Point(50, 10), radius=15.0)
        assert {s.segment_id for s, _ in found} == {0, 1}
        assert found[0][1] <= found[-1][1]  # sorted by distance

    def test_grid_city_strongly_connected(self):
        net = grid_city(nx=6, ny=6, rng=np.random.default_rng(0))
        assert net.is_strongly_connected()

    def test_line_network_strongly_connected(self):
        assert line_network().is_strongly_connected()

    def test_one_way_pair_not_strongly_connected(self):
        nodes = {0: Point(0, 0), 1: Point(1, 0)}
        segs = [RoadSegment(0, 0, 1, nodes[0], nodes[1])]
        assert not RoadNetwork(nodes, segs).is_strongly_connected()

    def test_bounding_box(self):
        min_x, min_y, max_x, max_y = line_network().bounding_box()
        assert (min_x, min_y, max_x, max_y) == (0.0, 0.0, 200.0, 0.0)
