"""Property-based tests of road-network distance invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import grid_city

NETWORK = grid_city(nx=5, ny=5, spacing=200.0, drop_prob=0.0,
                    rng=np.random.default_rng(42))

segments = st.integers(0, NETWORK.num_segments - 1)
ratios = st.floats(0.0, 1.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(seg_a=segments, r_a=ratios, seg_b=segments, r_b=ratios)
def test_route_distance_nonnegative_and_zero_on_self(seg_a, r_a, seg_b, r_b):
    d = NETWORK.route_distance(seg_a, r_a, seg_b, r_b)
    assert d >= 0.0
    assert NETWORK.route_distance(seg_a, r_a, seg_a, r_a) == 0.0


@settings(max_examples=60, deadline=None)
@given(seg_a=segments, r_a=ratios, seg_b=segments, r_b=ratios)
def test_symmetric_distance_is_min_and_symmetric(seg_a, r_a, seg_b, r_b):
    forward = NETWORK.route_distance(seg_a, r_a, seg_b, r_b)
    backward = NETWORK.route_distance(seg_b, r_b, seg_a, r_a)
    sym_ab = NETWORK.symmetric_route_distance(seg_a, r_a, seg_b, r_b)
    sym_ba = NETWORK.symmetric_route_distance(seg_b, r_b, seg_a, r_a)
    assert sym_ab == pytest.approx(min(forward, backward))
    assert sym_ab == pytest.approx(sym_ba)


@settings(max_examples=60, deadline=None)
@given(seg_a=segments, r_a=ratios, seg_b=segments, r_b=ratios)
def test_route_distance_at_least_euclidean(seg_a, r_a, seg_b, r_b):
    """Travel along roads can never beat the straight line."""
    d = NETWORK.symmetric_route_distance(seg_a, r_a, seg_b, r_b)
    a = NETWORK.position_at(seg_a, r_a)
    b = NETWORK.position_at(seg_b, r_b)
    assert d >= a.distance_to(b) - 1e-6


@settings(max_examples=40, deadline=None)
@given(
    seg_a=segments, r_a=ratios,
    seg_b=segments, r_b=ratios,
    seg_c=segments, r_c=ratios,
)
def test_route_distance_triangle_inequality(seg_a, r_a, seg_b, r_b, seg_c, r_c):
    """Directed route distance obeys the triangle inequality (shortest
    paths compose)."""
    ab = NETWORK.route_distance(seg_a, r_a, seg_b, r_b)
    bc = NETWORK.route_distance(seg_b, r_b, seg_c, r_c)
    ac = NETWORK.route_distance(seg_a, r_a, seg_c, r_c)
    assert ac <= ab + bc + 1e-6


@settings(max_examples=60, deadline=None)
@given(seg=segments, r1=ratios, r2=ratios)
def test_same_segment_forward_distance_linear(seg, r1, r2):
    lo, hi = sorted((r1, r2))
    d = NETWORK.route_distance(seg, lo, seg, hi)
    assert d == pytest.approx((hi - lo) * NETWORK.segment(seg).length, abs=1e-9)
