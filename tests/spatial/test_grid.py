"""Tests for the uniform grid discretisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Grid, Point


@pytest.fixture()
def grid():
    return Grid(min_x=0.0, min_y=0.0, max_x=1000.0, max_y=500.0, cell_size=100.0)


class TestBasics:
    def test_dimensions(self, grid):
        assert grid.num_cols == 11
        assert grid.num_rows == 6
        assert grid.num_cells == 66

    def test_cell_of_origin(self, grid):
        assert grid.cell_of(Point(0.0, 0.0)) == (0, 0)

    def test_cell_of_interior(self, grid):
        assert grid.cell_of(Point(250.0, 150.0)) == (2, 1)

    def test_flat_id_row_major(self, grid):
        assert grid.cell_id(Point(250.0, 150.0)) == 1 * 11 + 2

    def test_out_of_bounds_clamped(self, grid):
        assert grid.cell_of(Point(-50.0, -50.0)) == (0, 0)
        assert grid.cell_of(Point(9999.0, 9999.0)) == (10, 5)

    def test_cell_center_within_cell(self, grid):
        center = grid.cell_center(13)  # row 1, col 2
        assert grid.cell_id(center) == 13

    def test_cell_center_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.cell_center(66)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Grid(0, 0, 10, 10, cell_size=0.0)
        with pytest.raises(ValueError):
            Grid(0, 0, 0, 10, cell_size=1.0)


class TestCovering:
    def test_covers_all_points(self):
        points = [Point(-5, 2), Point(100, 50), Point(30, -8)]
        grid = Grid.covering(points, cell_size=10.0)
        for p in points:
            assert 0 <= grid.cell_id(p) < grid.num_cells

    def test_margin_expands(self):
        points = [Point(0, 0), Point(10, 10)]
        no_margin = Grid.covering(points, cell_size=5.0)
        margin = Grid.covering(points, cell_size=5.0, margin=20.0)
        assert margin.num_cells > no_margin.num_cells

    def test_empty_points(self):
        with pytest.raises(ValueError):
            Grid.covering([], cell_size=1.0)


@settings(max_examples=50, deadline=None)
@given(
    x=st.floats(0, 999, allow_nan=False),
    y=st.floats(0, 499, allow_nan=False),
)
def test_property_cell_id_in_range_and_consistent(x, y):
    grid = Grid(0, 0, 1000, 500, cell_size=37.0)
    p = Point(x, y)
    cid = grid.cell_id(p)
    assert 0 <= cid < grid.num_cells
    # The centre of the reported cell maps back to the same cell.
    assert grid.cell_id(grid.cell_center(cid)) == cid


@settings(max_examples=50, deadline=None)
@given(
    x=st.floats(1, 998, allow_nan=False),
    y=st.floats(1, 498, allow_nan=False),
)
def test_property_point_within_half_diagonal_of_center(x, y):
    grid = Grid(0, 0, 1000, 500, cell_size=50.0)
    p = Point(x, y)
    center = grid.cell_center(grid.cell_id(p))
    assert p.distance_to(center) <= (50.0 * 2**0.5) / 2 + 1e-9
