"""Focused behavioural tests distinguishing the baselines' failure modes.

These pin the *reasons* behind the paper's Table IV ordering: FC cannot
use sequence order; the recurrent models can.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FCRecoveryModel, RNNRecoveryModel
from repro.core import LTEModel


class TestFCOrderInsensitivity:
    def test_fc_pooled_context_ignores_observation_order(self, tiny_config,
                                                         tiny_dataset, tiny_mask):
        """Permuting the observed points does not change FC's pooled
        context, hence its predictions - the architectural weakness the
        paper criticises (Section V-B1)."""
        model = FCRecoveryModel(tiny_config, np.random.default_rng(0))
        model.eval()
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        out1 = model(batch, log_mask)

        # Reverse the observed sequence (cells and features together).
        import copy
        reversed_batch = copy.deepcopy(batch)
        for i in range(batch.size):
            n = int(batch.obs_mask[i].sum())
            reversed_batch.obs_cells[i, :n] = batch.obs_cells[i, :n][::-1]
            reversed_batch.obs_feats[i, :n] = batch.obs_feats[i, :n][::-1]
        out2 = model(reversed_batch, log_mask)
        np.testing.assert_allclose(out1.log_probs.data, out2.log_probs.data,
                                   atol=1e-9)

    def test_recurrent_models_are_order_sensitive(self, tiny_config,
                                                  tiny_dataset, tiny_mask):
        for cls in (RNNRecoveryModel, LTEModel):
            model = cls(tiny_config, np.random.default_rng(0))
            model.eval()
            batch = tiny_dataset.full_batch()
            log_mask = tiny_mask.build(batch)
            out1 = model(batch, log_mask)

            import copy
            reversed_batch = copy.deepcopy(batch)
            for i in range(batch.size):
                n = int(batch.obs_mask[i].sum())
                reversed_batch.obs_cells[i, :n] = batch.obs_cells[i, :n][::-1]
                reversed_batch.obs_feats[i, :n] = batch.obs_feats[i, :n][::-1]
            out2 = model(reversed_batch, log_mask)
            assert not np.allclose(out1.log_probs.data, out2.log_probs.data), cls
