"""Tests for the method registry and centralized training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    METHOD_NAMES,
    make_model_factory,
    pool_client_data,
    train_centralized,
)
from repro.core import TrainingConfig
from repro.federated import build_federation


class TestRegistry:
    def test_all_paper_methods_resolvable(self, tiny_config, tiny_world):
        for name in METHOD_NAMES:
            factory = make_model_factory(name, tiny_config, tiny_world.network)
            model = factory()
            assert model.num_parameters() > 0

    def test_fl_suffix_optional(self, tiny_config, tiny_world):
        a = make_model_factory("MTrajRec+FL", tiny_config, tiny_world.network)()
        b = make_model_factory("mtrajrec", tiny_config, tiny_world.network)()
        assert type(a) is type(b)

    def test_factory_is_deterministic(self, tiny_config, tiny_world):
        factory = make_model_factory("LightTR", tiny_config, tiny_world.network,
                                     seed=3)
        m1, m2 = factory(), factory()
        for (k1, p1), (k2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert k1 == k2
            np.testing.assert_allclose(p1.data, p2.data)

    def test_unknown_method_raises_eagerly(self, tiny_config, tiny_world):
        with pytest.raises(ValueError):
            make_model_factory("Transformer", tiny_config, tiny_world.network)


class TestCentralized:
    def test_pooling_counts(self, tiny_world):
        clients, _ = build_federation(tiny_world, num_clients=3, keep_ratio=0.25)
        pooled = pool_client_data(clients)
        assert len(pooled) == sum(len(c.train) for c in clients)

    def test_pool_empty_raises(self):
        with pytest.raises(ValueError):
            pool_client_data([])

    def test_train_centralized_runs(self, tiny_world, tiny_config, tiny_mask):
        clients, global_test = build_federation(tiny_world, num_clients=3,
                                                keep_ratio=0.25)
        factory = make_model_factory("MTrajRec", tiny_config, tiny_world.network)
        model = train_centralized(factory, clients, tiny_mask,
                                  TrainingConfig(epochs=1, batch_size=8, lr=3e-3),
                                  total_epochs=2, seed=0)
        from repro.metrics import evaluate_model
        row = evaluate_model(model, tiny_mask, global_test)
        assert 0.0 <= row.recall <= 1.0

    def test_invalid_epochs(self, tiny_world, tiny_config, tiny_mask):
        clients, _ = build_federation(tiny_world, num_clients=3, keep_ratio=0.25)
        factory = make_model_factory("MTrajRec", tiny_config, tiny_world.network)
        with pytest.raises(ValueError):
            train_centralized(factory, clients, tiny_mask, TrainingConfig(),
                              total_epochs=0)
