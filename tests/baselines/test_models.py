"""Tests shared across all baseline recovery models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    FCRecoveryModel,
    MTrajRecModel,
    RNNRecoveryModel,
    RNTrajRecModel,
)
from repro.core import LTEModel
from repro.core.training import LocalTrainer, TrainingConfig


def build(name, config, network):
    rng = np.random.default_rng(0)
    if name == "fc":
        return FCRecoveryModel(config, rng)
    if name == "rnn":
        return RNNRecoveryModel(config, rng)
    if name == "mtrajrec":
        return MTrajRecModel(config, rng)
    if name == "rntrajrec":
        return RNTrajRecModel(config, rng, network)
    if name == "lighttr":
        return LTEModel(config, rng)
    raise AssertionError(name)


ALL = ("fc", "rnn", "mtrajrec", "rntrajrec", "lighttr")


@pytest.mark.parametrize("name", ALL)
class TestContract:
    """Every model obeys the shared RecoveryModel contract."""

    def test_forward_shapes(self, name, tiny_config, tiny_world, tiny_dataset,
                            tiny_mask):
        model = build(name, tiny_config, tiny_world.network)
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        b, t = batch.tgt_segments.shape
        assert out.log_probs.shape == (b, t, tiny_dataset.num_segments)
        assert out.ratios.shape == (b, t)
        assert out.segments.shape == (b, t)

    def test_log_probs_normalised(self, name, tiny_config, tiny_world,
                                  tiny_dataset, tiny_mask, float_tol):
        model = build(name, tiny_config, tiny_world.network)
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        # Audited: ~1e-9 at float64; float32 probabilities carry a few
        # ULP per exp/sum term, so normalisation holds to ~1e-5.
        np.testing.assert_allclose(np.exp(out.log_probs.data).sum(axis=-1), 1.0,
                                   atol=max(float_tol, 1e-8))

    def test_loss_backward_fills_gradients(self, name, tiny_config, tiny_world,
                                           tiny_dataset, tiny_mask):
        model = build(name, tiny_config, tiny_world.network)
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        total, _ = model.loss(out, batch)
        total.backward()
        with_grad = sum(p.grad is not None for p in model.parameters())
        assert with_grad >= len(model.parameters()) - 2

    def test_one_epoch_reduces_loss(self, name, tiny_config, tiny_world,
                                    tiny_dataset, tiny_mask):
        model = build(name, tiny_config, tiny_world.network)
        trainer = LocalTrainer(model, tiny_mask,
                               TrainingConfig(epochs=1, batch_size=8, lr=5e-3),
                               np.random.default_rng(1))
        losses = trainer.train_epochs(tiny_dataset, epochs=4)
        assert losses[-1] < losses[0]

    def test_state_dict_round_trip(self, name, tiny_config, tiny_world):
        a = build(name, tiny_config, tiny_world.network)
        b = build(name, tiny_config, tiny_world.network)
        for p in b.parameters():
            p.data = p.data + 1.0
        b.load_state_dict(a.state_dict())
        for (ka, pa), (kb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert ka == kb
            np.testing.assert_allclose(pa.data, pb.data)

    def test_mask_validation(self, name, tiny_config, tiny_world, tiny_dataset):
        model = build(name, tiny_config, tiny_world.network)
        with pytest.raises(ValueError):
            model(tiny_dataset.full_batch(), np.zeros((1, 2, 3)))


class TestModelSpecifics:
    def test_fc_is_permutation_insensitive_at_decode(self, tiny_config,
                                                     tiny_world, tiny_dataset,
                                                     tiny_mask):
        """FC pools the observations: identical pooled context means each
        step's prediction ignores sequence order (the paper's criticism)."""
        model = FCRecoveryModel(tiny_config, np.random.default_rng(0))
        assert not hasattr(model, "encoder")

    def test_rntrajrec_adjacency_row_stochastic(self, tiny_world):
        from repro.baselines import segment_adjacency
        adj = segment_adjacency(tiny_world.network)
        np.testing.assert_allclose(adj.sum(axis=1), 1.0)
        assert (adj >= 0).all()

    def test_rntrajrec_refined_embeddings_shape(self, tiny_config, tiny_world):
        model = RNTrajRecModel(tiny_config, np.random.default_rng(0),
                               tiny_world.network)
        table = model.refined_segment_embeddings()
        assert table.shape == (tiny_config.num_segments, tiny_config.seg_emb_dim)

    def test_parameter_ordering_matches_paper(self, tiny_config, tiny_world):
        """LightTR has fewer parameters than the attention baselines and
        is in the same ballpark as plain RNN (Figure 5b)."""
        light = build("lighttr", tiny_config, tiny_world.network)
        mtraj = build("mtrajrec", tiny_config, tiny_world.network)
        rntraj = build("rntrajrec", tiny_config, tiny_world.network)
        assert light.num_parameters() < mtraj.num_parameters()
        assert mtraj.num_parameters() < rntraj.num_parameters()
