"""End-to-end integration: the full pipeline a downstream user runs.

raw noisy GPS -> HMM map matching -> downsample/encode -> Non-IID
federation -> teacher + meta-distilled federated training -> recovery
-> all four paper metrics.  Unlike the unit tests, nothing here uses
the generator's ground-truth matched trajectories as model input - the
model trains on what the map matcher produced, as in production.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_model_factory
from repro.core import (
    ConstraintMaskBuilder,
    RecoveryModelConfig,
    TrainingConfig,
    TrajectoryRecovery,
)
from repro.data import TrajectoryDataset, geolife_like, partition_trajectories
from repro.federated import FederatedConfig, FederatedTrainer
from repro.federated.client import ClientData
from repro.mapmatch import HMMMapMatcher
from repro.metrics import evaluate_model


@pytest.fixture(scope="module")
def pipeline_result():
    world = geolife_like(num_drivers=6, trajectories_per_driver=4,
                         points_per_trajectory=17, seed=21)

    # 1. Map-match the *noisy raw* GPS (not the generator's ground truth).
    matcher = HMMMapMatcher(world.network, sigma=10.0)
    matched = [matcher.match(raw) for raw in world.raw]

    # 2. Build client shards from the matched trajectories.
    rng = np.random.default_rng(0)
    shards = partition_trajectories(matched, 3, rng)
    clients = []
    pooled_test = []
    for shard in shards:
        tds = TrajectoryDataset.from_matched(shard, world.grid, world.network,
                                             keep_ratio=0.25)
        train, valid, test = tds.split((0.6, 0.2, 0.2), rng=rng)
        clients.append(ClientData(train=train,
                                  valid=valid if len(valid) else train,
                                  test=test))
        pooled_test.extend(test.examples)
    global_test = TrajectoryDataset(pooled_test, world.grid, world.network, 0.25)

    # 3. Federated LightTR with the meta-knowledge module.
    config = RecoveryModelConfig(
        num_cells=world.grid.num_cells, num_segments=world.network.num_segments,
        cell_emb_dim=8, seg_emb_dim=8, hidden_size=24, dropout=0.0,
        bbox=world.network.bounding_box(),
    )
    mask = ConstraintMaskBuilder(world.network, radius=400.0)
    factory = make_model_factory("LightTR", config, world.network, seed=4)
    fed = FederatedConfig(rounds=3, local_epochs=1,
                          training=TrainingConfig(epochs=1, batch_size=8,
                                                  lr=3e-3),
                          use_meta=True, lt=0.0)
    result = FederatedTrainer(factory, clients, mask, fed, global_test,
                              seed=1).run()
    return world, mask, result, global_test


class TestFullPipeline:
    def test_training_history_complete(self, pipeline_result):
        _, _, result, _ = pipeline_result
        assert len(result.history) == 3
        assert result.teacher_result is not None
        assert result.ledger.total_bytes > 0

    def test_metrics_on_matched_ground_truth(self, pipeline_result):
        world, mask, result, global_test = pipeline_result
        row = evaluate_model(result.global_model, mask, global_test)
        # The model must clearly beat uniform guessing over ~200 segments.
        assert row.recall > 0.05
        assert row.accuracy > 0.05
        assert np.isfinite(row.mae) and np.isfinite(row.rmse)

    def test_recovered_trajectories_are_map_matched(self, pipeline_result):
        world, mask, result, global_test = pipeline_result
        recovery = TrajectoryRecovery(result.global_model, mask)
        for rec in recovery.recover_dataset(global_test):
            for p in rec.trajectory.points:
                assert 0 <= p.segment_id < world.network.num_segments
                assert 0.0 <= p.ratio <= 1.0

    def test_recovered_route_is_spatially_coherent(self, pipeline_result):
        """Consecutive recovered points stay within plausible travel
        distance of each other (the constraint mask + feedback loop at
        work) - measured as straight-line displacement per step."""
        world, mask, result, global_test = pipeline_result
        recovery = TrajectoryRecovery(result.global_model, mask)
        rec = recovery.recover_dataset(global_test)[0].trajectory
        positions = rec.positions(world.network)
        steps = [a.distance_to(b) for a, b in zip(positions, positions[1:])]
        assert np.median(steps) < 1200.0  # world spans ~2 km

    def test_privacy_of_uploads(self, pipeline_result):
        """No raw coordinates cross the wire: uploads are exactly the
        model parameter names."""
        _, _, result, _ = pipeline_result
        client = result.clients[0]
        state = client.model.state_dict()
        assert all(isinstance(v, np.ndarray) for v in state.values())
        assert set(state) == {n for n, _ in client.model.named_parameters()}
