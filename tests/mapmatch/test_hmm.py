"""Tests for the HMM (Viterbi) map matcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RawPoint, RawTrajectory
from repro.data.synthetic import SyntheticConfig, generate_dataset
from repro.mapmatch import HMMMapMatcher
from repro.spatial import Point


@pytest.fixture(scope="module")
def noisy_world():
    config = SyntheticConfig(num_drivers=4, trajectories_per_driver=3,
                             points_per_trajectory=13, gps_noise_std=10.0)
    return generate_dataset(config, seed=17)


class TestCandidates:
    def test_candidates_sorted_and_projected(self, noisy_world):
        matcher = HMMMapMatcher(noisy_world.network)
        candidates = matcher.candidates_for(Point(100.0, 100.0))
        assert candidates
        dists = [c.distance for c in candidates]
        assert dists == sorted(dists)
        for c in candidates:
            assert 0.0 <= c.ratio <= 1.0

    def test_max_candidates_respected(self, noisy_world):
        matcher = HMMMapMatcher(noisy_world.network, max_candidates=2,
                                search_radius=500.0)
        assert len(matcher.candidates_for(Point(300.0, 300.0))) <= 2

    def test_invalid_params(self, noisy_world):
        with pytest.raises(ValueError):
            HMMMapMatcher(noisy_world.network, sigma=0.0)
        with pytest.raises(ValueError):
            HMMMapMatcher(noisy_world.network, max_candidates=0)


class TestMatching:
    def test_noiseless_exact_recovery(self, noisy_world):
        """With zero GPS noise the matcher must recover the true segments
        almost everywhere (ties at intersections are legitimate)."""
        network = noisy_world.network
        matcher = HMMMapMatcher(network, sigma=5.0)
        truth = noisy_world.matched[0]
        clean = RawTrajectory(
            traj_id=truth.traj_id, driver_id=truth.driver_id,
            points=tuple(
                RawPoint(p.position(network).x, p.position(network).y, p.t)
                for p in truth.points
            ),
        )
        matched = matcher.match(clean)
        agreement = np.mean([
            a.segment_id == b.segment_id
            for a, b in zip(matched.points, truth.points)
        ])
        assert agreement >= 0.85

    def test_noisy_recovery_beats_nearest_segment(self, noisy_world):
        """Viterbi smoothing should beat pointwise nearest-segment
        matching on noisy data (that is the point of the HMM)."""
        network = noisy_world.network
        matcher = HMMMapMatcher(network, sigma=10.0)
        hmm_hits = nearest_hits = total = 0
        for truth, raw in zip(noisy_world.matched[:6], noisy_world.raw[:6]):
            matched = matcher.match(raw)
            for mp, tp, rp in zip(matched.points, truth.points, raw.points):
                hmm_hits += mp.segment_id == tp.segment_id
                nearest, _ = network.nearest_segment(Point(rp.x, rp.y))
                nearest_hits += nearest.segment_id == tp.segment_id
                total += 1
        assert hmm_hits / total >= nearest_hits / total - 0.02
        assert hmm_hits / total > 0.6

    def test_epsilon_estimate(self, noisy_world):
        matcher = HMMMapMatcher(noisy_world.network)
        matched = matcher.match(noisy_world.raw[0])
        assert matched.epsilon == pytest.approx(noisy_world.config.epsilon)

    def test_tids_increasing(self, noisy_world):
        matcher = HMMMapMatcher(noisy_world.network)
        matched = matcher.match(noisy_world.raw[1])
        tids = [p.tid for p in matched.points]
        assert tids == sorted(tids)
        assert tids[0] == 0

    def test_preserves_ids(self, noisy_world):
        matcher = HMMMapMatcher(noisy_world.network)
        raw = noisy_world.raw[2]
        matched = matcher.match(raw)
        assert matched.traj_id == raw.traj_id
        assert matched.driver_id == raw.driver_id
        assert len(matched) == len(raw)


class TestModelComponents:
    def test_emission_prefers_closer(self, noisy_world):
        matcher = HMMMapMatcher(noisy_world.network, sigma=10.0)
        near = matcher.candidates_for(Point(0.0, 0.0))[0]
        assert matcher.emission_logprob(near) <= 0.0

    def test_transition_penalises_detours(self, noisy_world):
        matcher = HMMMapMatcher(noisy_world.network, beta=40.0)
        cands = matcher.candidates_for(Point(200.0, 200.0))
        if len(cands) >= 2:
            straight = 50.0
            lp_same = matcher.transition_logprob(cands[0], cands[0], straight)
            # Transition to itself has route distance 0 -> penalty = straight/beta.
            assert lp_same == pytest.approx(-straight / 40.0)
