"""Sparse constraint masks: CSR building, sparse-aware masked
log-softmax equivalence (fused on/off, both exchange dtypes), edge
densities, and the warm/pickle contract of the sparse row pool."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import nn
from repro.baselines import FCRecoveryModel
from repro.core import ConstraintMaskBuilder, LTEModel, SparseConstraintMask
from repro.core.mask import _FLOOR_LOG


def _make_sparse(rows_active: list[list[tuple[int, float]]], s: int,
                 shape=None) -> SparseConstraintMask:
    """Hand-build a CSR mask from per-row (segment, log_weight) lists."""
    indptr = np.zeros(len(rows_active) + 1, dtype=np.int64)
    indices, values = [], []
    for i, row in enumerate(rows_active):
        indptr[i + 1] = indptr[i] + len(row)
        for seg, val in row:
            indices.append(seg)
            values.append(val)
    shape = shape if shape is not None else (len(rows_active), s)
    return SparseConstraintMask(shape, indptr,
                                np.array(indices, dtype=np.int64),
                                np.array(values, dtype=np.float64))


def _grad_pair(x: np.ndarray, mask_dense: np.ndarray, mask_sparse,
               g: np.ndarray) -> tuple:
    """Forward output + input gradient for the dense and sparse ops."""
    outs = []
    for mask in (mask_dense, mask_sparse):
        xt = nn.Tensor(x.copy(), requires_grad=True)
        out = nn.masked_log_softmax(xt, mask)
        (out * nn.Tensor(g)).sum().backward()
        outs.append((out.data, xt.grad))
    return outs


def _sparse_dense_tol() -> float:
    """Audited sparse-vs-dense tolerance for the active compute dtype:
    1e-9 at float64 (the sparse normaliser drops sub-``exp(floor)``
    terms); 1e-4 at float32 (measured ≤ ~4e-6 through the full model —
    per-term exp/sum ULP on top of the float64 story)."""
    return 1e-9 if nn.get_compute_dtype() == np.dtype(np.float64) else 1e-4


class TestSparseBuild:
    def test_matches_dense_build_exactly(self, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        sparse = tiny_mask.build_sparse(batch)
        np.testing.assert_array_equal(sparse.to_dense(), tiny_mask.build(batch))

    def test_csr_structure(self, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        sparse = tiny_mask.build_sparse(batch)
        assert sparse.shape == (batch.size, batch.steps,
                                tiny_dataset.num_segments)
        assert sparse.indptr[0] == 0
        assert sparse.indptr[-1] == sparse.nnz == len(sparse.indices)
        assert (np.diff(sparse.indptr) >= 0).all()
        assert 0.0 < sparse.density < 1.0
        # Rows are id-sorted (deterministic layout) and in vocabulary range.
        for r in range(min(sparse.n_rows, 50)):
            ids = sparse.indices[sparse.indptr[r]:sparse.indptr[r + 1]]
            assert (np.diff(ids) > 0).all() if ids.size > 1 else True
        assert (sparse.indices >= 0).all()
        assert (sparse.indices < tiny_dataset.num_segments).all()

    def test_step_slices_one_timestep(self, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        sparse = tiny_mask.build_sparse(batch)
        dense = sparse.to_dense()
        for t in (0, batch.steps // 2, batch.steps - 1):
            np.testing.assert_array_equal(sparse.step(t).to_dense(),
                                          dense[:, t, :])

    def test_identity_mask(self, tiny_dataset, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, identity=True)
        batch = tiny_dataset.full_batch()
        sparse = builder.build_sparse(batch)
        assert sparse.identity and sparse.nnz == 0 and sparse.density == 1.0
        np.testing.assert_array_equal(sparse.to_dense(), builder.build(batch))

    def test_build_for_honours_flag_and_model(self, tiny_dataset, tiny_mask,
                                              tiny_config, fresh_rng):
        batch = tiny_dataset.full_batch()
        lte = LTEModel(tiny_config, fresh_rng)
        fc = FCRecoveryModel(tiny_config, np.random.default_rng(1))
        with nn.use_sparse_masks(True):
            assert isinstance(tiny_mask.build_for(batch, lte),
                              SparseConstraintMask)
            assert isinstance(tiny_mask.build_for(batch), SparseConstraintMask)
            # A model that never opted in keeps getting dense masks.
            assert isinstance(tiny_mask.build_for(batch, fc), np.ndarray)
        with nn.use_sparse_masks(False):
            assert isinstance(tiny_mask.build_for(batch, lte), np.ndarray)

    def test_non_supporting_model_rejects_sparse(self, tiny_dataset, tiny_mask,
                                                 tiny_config):
        fc = FCRecoveryModel(tiny_config, np.random.default_rng(1))
        batch = tiny_dataset.full_batch()
        with pytest.raises(TypeError, match="sparse"):
            fc(batch, tiny_mask.build_sparse(batch))


class TestSparseSoftmaxEquivalence:
    def test_forward_backward_close(self, tiny_dataset, tiny_mask, fresh_rng):
        batch = tiny_dataset.full_batch()
        sparse = tiny_mask.build_sparse(batch)
        dense = tiny_mask.build(batch)
        x = fresh_rng.standard_normal(dense.shape)
        g = fresh_rng.standard_normal(dense.shape)
        tol = _sparse_dense_tol()
        (out_d, grad_d), (out_s, grad_s) = _grad_pair(x, dense, sparse, g)
        np.testing.assert_allclose(out_s, out_d, atol=tol)
        np.testing.assert_allclose(grad_s, grad_d, atol=tol)
        # Per-row-constant normaliser shift: argmax is bit-identical.
        np.testing.assert_array_equal(np.argmax(out_s, -1),
                                      np.argmax(out_d, -1))

    def test_raw_inference_helper_matches_tape_op(self, tiny_dataset,
                                                  tiny_mask, fresh_rng):
        batch = tiny_dataset.full_batch()
        sparse = tiny_mask.build_sparse(batch)
        # Same input dtype for both entry points (the tape op casts to
        # the compute dtype; the raw helper runs whatever it is given):
        # then both run the identical core and must match to ~bitwise.
        x = fresh_rng.standard_normal(
            (batch.size, batch.steps, tiny_dataset.num_segments)
        ).astype(nn.get_compute_dtype())
        expected = nn.masked_log_softmax(nn.Tensor(x), sparse).data
        np.testing.assert_allclose(nn.sparse_masked_log_probs(x, sparse),
                                   expected, atol=1e-12)

    # FD probing needs the objective evaluated beyond float32 resolution:
    # eps=1e-6 central differences are pure rounding noise at float32.
    # The float32 gradient path is covered against the float64 reference
    # in tests/nn/test_compute_dtype.py instead.
    @pytest.mark.float64_only
    def test_finite_difference_gradient(self, fresh_rng):
        s = 7
        sparse = _make_sparse([[(0, -0.5), (3, -2.0)], [(2, 0.0)],
                               [], [(1, -1.0), (4, -0.25), (6, -3.0)]], s)
        x = fresh_rng.standard_normal((4, s))
        g = fresh_rng.standard_normal((4, s))

        def value(arr):
            out = nn.masked_log_softmax(nn.Tensor(arr), sparse)
            return float((out.data * g).sum())

        xt = nn.Tensor(x.copy(), requires_grad=True)
        out = nn.masked_log_softmax(xt, sparse)
        (out * nn.Tensor(g)).sum().backward()
        eps = 1e-6
        for idx in [(0, 0), (0, 3), (1, 2), (2, 5), (3, 4), (3, 6)]:
            bumped = x.copy()
            bumped[idx] += eps
            lowered = x.copy()
            lowered[idx] -= eps
            fd = (value(bumped) - value(lowered)) / (2 * eps)
            assert abs(fd - xt.grad[idx]) < 1e-4, (idx, fd, xt.grad[idx])

    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("exchange_dtype", ["float64", "float32"])
    def test_model_forward_equivalence(self, tiny_dataset, tiny_mask,
                                       tiny_config, fused, exchange_dtype):
        """Sparse vs dense masks agree through the whole model on every
        (fused, exchange-dtype) combination, teacher-forced and
        autoregressive alike."""
        batch = tiny_dataset.full_batch()
        sparse = tiny_mask.build_sparse(batch)
        dense = tiny_mask.build(batch)
        model = LTEModel(tiny_config, np.random.default_rng(5))
        with nn.use_fused_kernels(fused), nn.use_default_dtype(exchange_dtype):
            out_d = model(batch, dense, teacher_forcing=True)
            out_s = model(batch, sparse, teacher_forcing=True)
            model.eval()
            with nn.no_grad():
                inf_d = model(batch, dense, teacher_forcing=False)
                inf_s = model(batch, sparse, teacher_forcing=False)
            model.train()
        tol = _sparse_dense_tol()
        np.testing.assert_allclose(out_s.log_probs.data, out_d.log_probs.data,
                                   atol=tol)
        np.testing.assert_allclose(out_s.ratios.data, out_d.ratios.data,
                                   atol=tol)
        np.testing.assert_array_equal(out_s.segments, out_d.segments)
        np.testing.assert_allclose(inf_s.log_probs.data, inf_d.log_probs.data,
                                   atol=tol)
        np.testing.assert_array_equal(inf_s.segments, inf_d.segments)

    def test_training_epoch_loss_close(self, tiny_dataset, tiny_world,
                                       tiny_config):
        """One epoch with sparse masks lands within tolerance of dense."""
        from repro.core import LocalTrainer, TrainingConfig

        losses = {}
        for label, flag in (("dense", False), ("sparse", True)):
            model = LTEModel(tiny_config, np.random.default_rng(11))
            builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
            trainer = LocalTrainer(model, builder, TrainingConfig(batch_size=8),
                                   np.random.default_rng(13))
            with nn.use_sparse_masks(flag):
                losses[label] = trainer.train_epoch(tiny_dataset)
        np.testing.assert_allclose(losses["sparse"], losses["dense"],
                                   rtol=1e-6)


class TestEdgeDensities:
    S = 9

    def _dense_from(self, sparse: SparseConstraintMask) -> np.ndarray:
        return sparse.to_dense()

    def _check(self, sparse: SparseConstraintMask, rng):
        dense = self._dense_from(sparse)
        x = rng.standard_normal(dense.shape).astype(nn.get_compute_dtype())
        g = rng.standard_normal(dense.shape)
        tol = _sparse_dense_tol()
        (out_d, grad_d), (out_s, grad_s) = _grad_pair(x, dense, sparse, g)
        np.testing.assert_allclose(out_s, out_d, atol=tol)
        np.testing.assert_allclose(grad_s, grad_d, atol=tol)
        raw = nn.sparse_masked_log_probs(x, sparse)
        np.testing.assert_allclose(raw, out_s, atol=1e-12)
        # Rows must stay valid log-distributions.
        np.testing.assert_allclose(np.exp(out_s).sum(-1), 1.0,
                                   atol=max(tol, 1e-9))

    def test_single_active_segment_rows(self, fresh_rng):
        sparse = _make_sparse([[(2, -0.1)], [(7, 0.0)], [(0, -4.0)]], self.S)
        self._check(sparse, fresh_rng)

    def test_all_segments_active_rows(self, fresh_rng):
        full = [(j, -0.01 * j) for j in range(self.S)]
        sparse = _make_sparse([full, full], self.S)
        assert sparse.density == 1.0
        self._check(sparse, fresh_rng)

    def test_empty_radius_fallback_rows(self, fresh_rng):
        """Rows with no in-radius segment fall back to the uniform
        all-floor mask — exactly like the dense path."""
        sparse = _make_sparse([[], [(3, -0.5)], []], self.S)
        dense = sparse.to_dense()
        assert (dense[0] == _FLOOR_LOG).all()
        self._check(sparse, fresh_rng)

    def test_mixed_densities_one_batch(self, fresh_rng):
        rows = [[], [(0, 0.0)], [(j, -0.2 * j) for j in range(self.S)],
                [(1, -1.0), (5, -2.0)]]
        self._check(_make_sparse(rows, self.S), fresh_rng)

    def test_empty_radius_builder_row(self, tiny_world):
        """A guide point far outside the network yields an all-floor
        dense row and an empty sparse row that agree."""
        builder = ConstraintMaskBuilder(tiny_world.network, radius=150.0)
        min_x, min_y, _, _ = tiny_world.network.bounding_box()
        row = builder.log_mask_for_point(min_x - 7000.0, min_y - 7000.0)
        key = builder._key_to_row[(int((min_x - 7000.0) // 25.0),
                                   int((min_y - 7000.0) // 25.0))]
        if builder._sp_lens[key] == 0:
            assert (row == _FLOOR_LOG).all()


class TestWarmAndPickle:
    def test_warm_fills_sparse_pool_without_densifying(self, tiny_world,
                                                       tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        rows = builder.warm(tiny_dataset)
        assert rows == len(builder._key_to_row) > 0
        assert builder._sp_used > 0
        # warm() is sparse-only: the (U, S) dense row matrix stays empty.
        assert builder._dense_rows == 0
        # Sparse builds after warming hit only warmed keys.
        keys_before = set(builder._key_to_row)
        batch = tiny_dataset.full_batch()
        reference = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        np.testing.assert_array_equal(builder.build_sparse(batch).to_dense(),
                                      reference.build(batch))
        assert set(builder._key_to_row) == keys_before

    def test_pickle_drops_sparse_pool(self, tiny_world, tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        builder.warm(tiny_dataset)
        batch = tiny_dataset.full_batch()
        expected = builder.build_sparse(batch)
        clone = pickle.loads(pickle.dumps(builder))
        # Cache-free clone: no keys, no pool bytes, no dense rows.
        assert not clone._key_to_row
        assert clone._sp_used == 0
        assert clone._dense_rows == 0
        # A worker-style re-warm rebuilds identical sparse rows.
        clone.warm(tiny_dataset)
        rebuilt = clone.build_sparse(batch)
        np.testing.assert_array_equal(rebuilt.indptr, expected.indptr)
        np.testing.assert_array_equal(rebuilt.indices, expected.indices)
        np.testing.assert_array_equal(rebuilt.log_values, expected.log_values)

    def test_clear_cache_resets_sparse_pool(self, tiny_world, tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        builder.build_sparse(batch)
        builder.build(batch)
        assert builder._sp_used > 0 and builder._dense_rows > 0
        builder.clear_cache()
        assert builder._sp_used == 0
        assert builder._dense_rows == 0
        assert not builder._key_to_row and not builder._cache
        # And the builder still works from cold.
        np.testing.assert_array_equal(builder.build_sparse(batch).to_dense(),
                                      builder.build(batch))


class TestRunnerShipsSparseFlag:
    def test_round_task_carries_and_worker_asserts_flag(self, tiny_world,
                                                        tiny_dataset,
                                                        tiny_config,
                                                        monkeypatch):
        """The worker-side executor re-asserts the task's sparse-mask
        flag (exercised in-process via the pool initializer hooks)."""
        from repro.core import TrainingConfig
        from repro.federated import runner as runner_mod
        from repro.federated.client import ClientData
        from repro.federated.runner import RoundTask, WorkerSetup, _init_worker

        task_fields = RoundTask.__dataclass_fields__
        assert "sparse_masks" in task_fields
        assert task_fields["sparse_masks"].default is True

        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        data = ClientData(train=tiny_dataset, valid=tiny_dataset,
                          test=tiny_dataset)
        setup = WorkerSetup(
            model_factory=lambda: LTEModel(tiny_config,
                                           np.random.default_rng(2)),
            client_data=(data,),
            mask_builder=builder,
            training=TrainingConfig(epochs=1, batch_size=8),
        )
        model = setup.model_factory()
        flat = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
        saved_worker = runner_mod._WORKER

        # Probe the flag while the task runs: _ensure_model_dtype is the
        # first call the executor makes after asserting the task flags.
        observed = []
        original_ensure = runner_mod._WorkerState._ensure_model_dtype
        monkeypatch.setattr(
            runner_mod._WorkerState, "_ensure_model_dtype",
            lambda self: (observed.append(nn.sparse_masks_enabled()),
                          original_ensure(self))[1])
        try:
            _init_worker(setup)
            for flag in (False, True):
                with nn.use_sparse_masks(not flag):
                    runner_mod._execute_task(RoundTask(
                        client_id=0, global_flat=flat, epochs=1,
                        teacher_flat=None, session=None, sparse_masks=flag,
                    ))
                    assert observed[-1] is flag
                    # In-process execution restores the caller's flags
                    # (a task must not leak its precision/kernel state).
                    assert nn.sparse_masks_enabled() is (not flag)
        finally:
            runner_mod._WORKER = saved_worker
            nn.set_sparse_masks(True)
