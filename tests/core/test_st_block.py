"""Tests for the lightweight ST-operator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.st_block import LightweightSTOperator


@pytest.fixture()
def operator(fresh_rng):
    return LightweightSTOperator(num_segments=20, seg_emb_dim=6, hidden_size=12,
                                 rng=fresh_rng, extra_inputs=4, num_blocks=2)


def run_step(operator, batch=3):
    states = [nn.zeros(batch, 12) for _ in range(2)]
    prev_segments = np.array([0, 5, 19][:batch])
    prev_ratios = nn.Tensor(np.full(batch, 0.5))
    extras = np.zeros((batch, 4))
    log_mask = np.zeros((batch, 20))
    return operator.step(states, prev_segments, prev_ratios, extras, log_mask)


class TestStep:
    def test_output_shapes(self, operator):
        states, out = run_step(operator)
        assert len(states) == 2
        assert all(s.shape == (3, 12) for s in states)
        assert out.log_probs.shape == (3, 20)
        assert out.segments.shape == (3,)
        assert out.ratios.shape == (3,)

    def test_log_probs_normalised(self, operator, float_tol):
        _, out = run_step(operator)
        np.testing.assert_allclose(np.exp(out.log_probs.data).sum(axis=-1),
                                   1.0, atol=max(float_tol, 1e-9))

    def test_ratios_nonnegative(self, operator):
        _, out = run_step(operator)
        assert (out.ratios.data >= 0).all()

    def test_hard_mask_forces_prediction(self, operator):
        """A mask with one allowed segment forces the argmax there."""
        states = [nn.zeros(2, 12) for _ in range(2)]
        log_mask = np.full((2, 20), -1e9)
        log_mask[0, 7] = 0.0
        log_mask[1, 3] = 0.0
        _, out = operator.step(states, np.array([0, 0]),
                               nn.Tensor(np.zeros(2)), np.zeros((2, 4)), log_mask)
        assert out.segments.tolist() == [7, 3]

    def test_initial_states_replicated(self, operator):
        h = nn.Tensor(np.random.default_rng(0).standard_normal((4, 12)))
        states = operator.initial_states(h)
        assert len(states) == 2
        for s in states:
            np.testing.assert_allclose(s.data, h.data)

    def test_needs_at_least_one_block(self, fresh_rng):
        with pytest.raises(ValueError):
            LightweightSTOperator(10, 4, 8, fresh_rng, num_blocks=0)

    def test_gradient_flows_through_step(self, operator):
        states, out = run_step(operator)
        loss = out.log_probs.sum() + out.ratios.sum()
        loss.backward()
        grads = [p.grad for p in operator.parameters()]
        assert sum(g is not None for g in grads) >= len(grads) - 1
