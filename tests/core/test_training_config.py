"""Tests for trainer configuration, distillation wiring, and edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstraintMaskBuilder,
    LTEModel,
    MetaKnowledgeDistiller,
    TrainingConfig,
)
from repro.core.training import LocalTrainer


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(lr=0.0)

    def test_defaults_match_paper_direction(self):
        config = TrainingConfig()
        assert config.lr == pytest.approx(1e-3)  # paper's initial LR
        assert config.mu == 1.0


class TestTrainerEdgeCases:
    def test_empty_dataset_rejected(self, tiny_config, tiny_dataset, tiny_mask,
                                    fresh_rng):
        from repro.data import TrajectoryDataset
        model = LTEModel(tiny_config, np.random.default_rng(0))
        trainer = LocalTrainer(model, tiny_mask, TrainingConfig(), fresh_rng)
        empty = TrajectoryDataset([], tiny_dataset.grid, tiny_dataset.network, 0.25)
        with pytest.raises(ValueError):
            trainer.train_epoch(empty)
        with pytest.raises(ValueError):
            trainer.segment_accuracy(empty)

    def test_distillation_with_zero_lambda_is_plain_training(self, tiny_config,
                                                             tiny_dataset,
                                                             tiny_mask):
        """lam=0 must give bit-identical parameters to no distiller at all
        (the distillation term is never evaluated)."""
        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        distiller = MetaKnowledgeDistiller(teacher, tiny_mask)

        def run(distiller_arg):
            model = LTEModel(tiny_config, np.random.default_rng(2))
            trainer = LocalTrainer(model, tiny_mask,
                                   TrainingConfig(epochs=1, batch_size=8,
                                                  lr=3e-3),
                                   np.random.default_rng(3))
            trainer.train_epoch(tiny_dataset, distiller=distiller_arg, lam=0.0)
            return model.state_dict()

        a = run(None)
        b = run(distiller)
        for key in a:
            np.testing.assert_allclose(a[key], b[key])

    def test_distillation_changes_updates(self, tiny_config, tiny_dataset,
                                          tiny_mask):
        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        distiller = MetaKnowledgeDistiller(teacher, tiny_mask)

        def run(lam):
            model = LTEModel(tiny_config, np.random.default_rng(2))
            trainer = LocalTrainer(model, tiny_mask,
                                   TrainingConfig(epochs=1, batch_size=8,
                                                  lr=3e-3),
                                   np.random.default_rng(3))
            trainer.train_epoch(tiny_dataset, distiller=distiller, lam=lam)
            return model.state_dict()

        plain = run(0.0)
        distilled = run(2.0)
        assert any(not np.allclose(plain[k], distilled[k]) for k in plain)

    def test_fixed_lambda_distiller(self, tiny_config, tiny_dataset, tiny_mask):
        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        student = LTEModel(tiny_config, np.random.default_rng(2))
        fixed = MetaKnowledgeDistiller(teacher, tiny_mask, lambda0=3.0,
                                       dynamic=False)
        assert fixed.lambda_for_client(student, tiny_dataset) == 3.0

    def test_gradients_cleared_between_batches(self, tiny_config, tiny_dataset,
                                               tiny_mask, fresh_rng):
        """Adam must not see stale gradients: after an epoch, a manual
        zero_grad + step changes nothing."""
        model = LTEModel(tiny_config, np.random.default_rng(0))
        trainer = LocalTrainer(model, tiny_mask,
                               TrainingConfig(epochs=1, batch_size=4, lr=3e-3),
                               fresh_rng)
        trainer.train_epoch(tiny_dataset)
        before = model.state_dict()
        trainer.optimizer.zero_grad()
        trainer.optimizer.step()  # no grads -> no movement
        after = model.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key])
