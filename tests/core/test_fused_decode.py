"""Equivalence of the fused LTE decode paths with the per-step reference.

Covers the fused teacher-forced whole-sequence decode (training hot
path), the tape-free autoregressive decode (inference hot path), and
the vectorized constraint-mask batch build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder
from repro.core.lte import LTEModel


@pytest.fixture(scope="module")
def setup(tiny_config, tiny_world, tiny_dataset):
    model = LTEModel(tiny_config, np.random.default_rng(0))
    builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
    batch = tiny_dataset.full_batch()
    log_mask = builder.build(batch)
    return model, batch, log_mask


@pytest.fixture(scope="module")
def fusion_tols():
    """Audited fused-vs-stepwise tolerances per compute dtype.

    float64 keeps the historical 1e-10 contract.  float32 measured
    (tiny world, untrained LTE): log-probs ≤ 4e-6, ratios/loss ≤ 3e-7,
    grads ≤ 3e-8 — the audited bounds below carry ~25x margin.  Argmax
    segments stay bit-equal at both precisions (margins dwarf rounding).
    """
    if nn.get_compute_dtype() == np.dtype(np.float64):
        return {"values": 1e-10, "loss": 1e-10, "grads": 1e-8}
    return {"values": 1e-4, "loss": 1e-5, "grads": 1e-6}


def _teacher_forced(model, batch, log_mask, fused):
    with nn.use_fused_kernels(fused):
        model.zero_grad()
        output = model(batch, log_mask, teacher_forcing=True)
        loss, parts = model.loss(output, batch)
        loss.backward()
    return output, loss.item(), {
        name: p.grad.copy() for name, p in model.named_parameters()
    }


class TestTeacherForcedEquivalence:
    def test_outputs_losses_and_gradients_match(self, setup, fusion_tols):
        model, batch, log_mask = setup
        fused_out, fused_loss, fused_grads = _teacher_forced(
            model, batch, log_mask, fused=True)
        step_out, step_loss, step_grads = _teacher_forced(
            model, batch, log_mask, fused=False)

        np.testing.assert_allclose(fused_out.log_probs.data,
                                   step_out.log_probs.data,
                                   atol=fusion_tols["values"])
        np.testing.assert_allclose(fused_out.ratios.data,
                                   step_out.ratios.data,
                                   atol=fusion_tols["values"])
        np.testing.assert_array_equal(fused_out.segments, step_out.segments)
        assert abs(fused_loss - step_loss) < fusion_tols["loss"]
        for name, grad in fused_grads.items():
            np.testing.assert_allclose(grad, step_grads[name],
                                       atol=fusion_tols["grads"],
                                       err_msg=name)

    @pytest.mark.parametrize("encoder", ["gru", "lstm", "rnn"])
    def test_all_encoder_variants(self, tiny_config, setup, encoder,
                                  fusion_tols):
        import dataclasses
        _, batch, log_mask = setup
        config = dataclasses.replace(tiny_config, encoder=encoder)
        model = LTEModel(config, np.random.default_rng(1))
        fused_out, fused_loss, _ = _teacher_forced(model, batch, log_mask, True)
        step_out, step_loss, _ = _teacher_forced(model, batch, log_mask, False)
        np.testing.assert_allclose(fused_out.log_probs.data,
                                   step_out.log_probs.data,
                                   atol=fusion_tols["values"])
        assert abs(fused_loss - step_loss) < fusion_tols["loss"]


class TestInferenceEquivalence:
    def test_tape_free_decode_matches_stepwise(self, setup, fusion_tols):
        model, batch, log_mask = setup
        results = {}
        for fused in (True, False):
            with nn.use_fused_kernels(fused), nn.no_grad():
                output = model(batch, log_mask, teacher_forcing=False)
            results[fused] = output
        np.testing.assert_allclose(results[True].log_probs.data,
                                   results[False].log_probs.data,
                                   atol=fusion_tols["values"])
        np.testing.assert_allclose(results[True].ratios.data,
                                   results[False].ratios.data,
                                   atol=fusion_tols["values"])
        np.testing.assert_array_equal(results[True].segments,
                                      results[False].segments)


class TestVectorizedMaskBuild:
    def test_build_matches_reference(self, tiny_world, tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        np.testing.assert_array_equal(builder.build(batch),
                                      builder.build_reference(batch))

    def test_build_twice_is_consistent(self, tiny_world, tiny_dataset):
        """Second call exercises the all-keys-known searchsorted path."""
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        first = builder.build(batch)
        second = builder.build(batch)
        np.testing.assert_array_equal(first, second)

    def test_identity_mode(self, tiny_world, tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, identity=True)
        batch = tiny_dataset.full_batch()
        log_mask = builder.build(batch)
        assert log_mask.shape == (batch.size, batch.steps,
                                  tiny_world.network.num_segments)
        assert (log_mask == 0.0).all()

    def test_cached_rows_are_read_only(self, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=300.0)
        row = builder.log_mask_for_point(100.0, 100.0)
        with pytest.raises(ValueError):
            row[0] = 1.0

    def test_clear_cache_resets_gather_state(self, tiny_world, tiny_dataset):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        before = builder.build(batch)
        builder.clear_cache()
        assert builder._enc_sorted.size == 0
        np.testing.assert_array_equal(builder.build(batch), before)
