"""Tests for the high-level TrajectoryRecovery API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LTEModel, TrajectoryRecovery


@pytest.fixture()
def recovery(tiny_config, tiny_mask):
    model = LTEModel(tiny_config, np.random.default_rng(0))
    return TrajectoryRecovery(model, tiny_mask)


class TestPredictBatch:
    def test_observed_points_clamped_to_truth(self, recovery, tiny_dataset):
        batch = tiny_dataset.full_batch()
        segments, ratios = recovery.predict_batch(batch)
        observed = batch.observed_flags
        np.testing.assert_array_equal(segments[observed],
                                      batch.tgt_segments[observed])
        np.testing.assert_allclose(ratios[observed], batch.tgt_ratios[observed])

    def test_ratios_clipped(self, recovery, tiny_dataset):
        _, ratios = recovery.predict_batch(tiny_dataset.full_batch())
        assert ratios.min() >= 0.0
        assert ratios.max() <= 1.0

    def test_segments_in_vocabulary(self, recovery, tiny_dataset):
        segments, _ = recovery.predict_batch(tiny_dataset.full_batch())
        assert segments.min() >= 0
        assert segments.max() < tiny_dataset.num_segments


class TestRecoverDataset:
    def test_returns_one_per_example(self, recovery, tiny_dataset):
        results = recovery.recover_dataset(tiny_dataset)
        assert len(results) == len(tiny_dataset)

    def test_recovered_trajectory_structure(self, recovery, tiny_dataset):
        result = recovery.recover_dataset(tiny_dataset)[0]
        example = tiny_dataset.examples[0]
        traj = result.trajectory
        assert len(traj) == example.full_length
        assert traj.traj_id == example.traj_id
        assert result.recovered_indices == tuple(
            int(i) for i in np.flatnonzero(~example.observed_flags)
        )

    def test_empty_dataset(self, recovery, tiny_dataset):
        from repro.data import TrajectoryDataset
        empty = TrajectoryDataset([], tiny_dataset.grid, tiny_dataset.network,
                                  tiny_dataset.keep_ratio)
        assert recovery.recover_dataset(empty) == []

    def test_eval_is_deterministic(self, recovery, tiny_dataset):
        a = recovery.recover_dataset(tiny_dataset)
        b = recovery.recover_dataset(tiny_dataset)
        assert a[0].trajectory.segment_ids() == b[0].trajectory.segment_ids()
