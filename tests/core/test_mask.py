"""Tests for the constraint mask layer (Eq. 10-11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder
from repro.core.mask import _FLOOR_LOG


class TestPointMasks:
    def test_near_segment_gets_high_weight(self, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        seg = tiny_world.network.segments[0]
        mid = seg.position_at(0.5)
        log_mask = builder.log_mask_for_point(mid.x, mid.y)
        assert log_mask[seg.segment_id] > _FLOOR_LOG
        assert log_mask[seg.segment_id] > log_mask.min()

    def test_far_segments_floored(self, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=200.0)
        min_x, min_y, _, _ = tiny_world.network.bounding_box()
        log_mask = builder.log_mask_for_point(min_x - 5000.0, min_y - 5000.0)
        assert (log_mask == _FLOOR_LOG).all()

    def test_weight_decays_with_distance(self, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, gamma=125.0,
                                        radius=600.0)
        seg = tiny_world.network.segments[0]
        near = seg.position_at(0.5)
        log_near = builder.log_mask_for_point(near.x, near.y)[seg.segment_id]
        # Same segment evaluated from farther away scores lower.
        far_x = near.x + 300.0
        far_y = near.y + 300.0
        log_far = builder.log_mask_for_point(far_x, far_y)[seg.segment_id]
        assert log_far < log_near

    def test_identity_mode_all_zero(self, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, identity=True)
        log_mask = builder.log_mask_for_point(0.0, 0.0)
        np.testing.assert_allclose(log_mask, 0.0)

    def test_invalid_params(self, tiny_world):
        with pytest.raises(ValueError):
            ConstraintMaskBuilder(tiny_world.network, gamma=0.0)
        with pytest.raises(ValueError):
            ConstraintMaskBuilder(tiny_world.network, radius=-1.0)


class TestBatchMasks:
    def test_build_shape(self, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        assert log_mask.shape == (
            batch.size, batch.steps, tiny_dataset.num_segments
        )

    def test_true_segment_rarely_masked_out(self, tiny_dataset, tiny_world):
        """The ground-truth segment should be within the mask radius of
        the guide position nearly always (otherwise training is
        impossible)."""
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        log_mask = builder.build(batch)
        valid = batch.tgt_mask
        hits = 0
        total = 0
        for i in range(batch.size):
            for j in range(batch.steps):
                if not valid[i, j]:
                    continue
                total += 1
                if log_mask[i, j, batch.tgt_segments[i, j]] > _FLOOR_LOG:
                    hits += 1
        assert hits / total > 0.95

    def test_cache_speeds_repeat_queries(self, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=300.0)
        first = builder.log_mask_for_point(123.0, 456.0)
        second = builder.log_mask_for_point(123.0, 456.0)
        assert first is second  # memoised object identity

    def test_clear_cache(self, tiny_world):
        builder = ConstraintMaskBuilder(tiny_world.network, radius=300.0)
        builder.log_mask_for_point(1.0, 1.0)
        assert builder._cache
        builder.clear_cache()
        assert not builder._cache


class TestWorkerReconstruction:
    def test_pickle_roundtrip_drops_caches_keeps_values(self, tiny_world,
                                                        tiny_dataset, tiny_mask):
        import pickle

        batch = tiny_dataset.full_batch()
        expected = tiny_mask.build(batch)  # also warms tiny_mask's caches
        clone = pickle.loads(pickle.dumps(tiny_mask))
        assert not clone._cache  # caches are rebuilt, not shipped
        assert clone.gamma == tiny_mask.gamma
        assert clone.radius == tiny_mask.radius
        np.testing.assert_array_equal(clone.build(batch), expected)

    def test_warm_precomputes_exactly_the_batch_keys(self, tiny_world,
                                                     tiny_dataset):
        warmed = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        rows = warmed.warm(tiny_dataset)
        assert rows == len(warmed._key_to_row) > 0
        keys_before = set(warmed._key_to_row)
        # Building any batch of the dataset hits only warmed keys ...
        reference = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        np.testing.assert_array_equal(warmed.build(batch),
                                      reference.build(batch))
        # ... so the cache did not need to grow.
        assert set(warmed._key_to_row) == keys_before

    def test_warm_identity_and_empty_are_noops(self, tiny_world, tiny_dataset):
        identity = ConstraintMaskBuilder(tiny_world.network, identity=True)
        assert identity.warm(tiny_dataset) == 0
