"""Tests for meta-knowledge distillation (Algorithm 2, Eq. 16-18)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstraintMaskBuilder,
    LTEModel,
    MetaKnowledgeDistiller,
    dynamic_lambda,
)
from repro.core.training import LocalTrainer, TrainingConfig


class TestDynamicLambda:
    def test_gate_zero_when_teacher_not_better_and_student_weak(self):
        assert dynamic_lambda(5.0, acc_teacher=0.2, acc_student=0.3, lt=0.4) == 0.0

    def test_active_when_student_above_threshold(self):
        lam = dynamic_lambda(5.0, acc_teacher=0.3, acc_student=0.5, lt=0.4)
        assert lam > 0.0

    def test_equal_accuracy_gives_tenth(self):
        lam = dynamic_lambda(5.0, acc_teacher=0.6, acc_student=0.6, lt=0.4)
        assert lam == pytest.approx(0.5)  # 5 * 10^-1

    def test_much_better_teacher_saturates_at_lambda0(self):
        lam = dynamic_lambda(5.0, acc_teacher=0.9, acc_student=0.3, lt=0.4)
        assert lam == pytest.approx(5.0)  # exponent clipped at 1

    def test_monotone_in_teacher_advantage(self):
        lams = [dynamic_lambda(5.0, 0.5 + d, 0.5, lt=0.0) for d in
                (0.0, 0.05, 0.1, 0.2)]
        assert lams == sorted(lams)

    def test_negative_lambda0_rejected(self):
        with pytest.raises(ValueError):
            dynamic_lambda(-1.0, 0.5, 0.5, 0.4)


class TestDistillationTerm:
    @pytest.fixture()
    def setup(self, tiny_config, tiny_dataset, tiny_mask):
        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        student = LTEModel(tiny_config, np.random.default_rng(2))
        distiller = MetaKnowledgeDistiller(teacher, tiny_mask, lambda0=5.0, lt=0.4)
        return teacher, student, distiller

    def test_zero_for_identical_models(self, tiny_config, tiny_dataset, tiny_mask):
        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        student = LTEModel(tiny_config, np.random.default_rng(1))
        distiller = MetaKnowledgeDistiller(teacher, tiny_mask)
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        student.eval()  # disable dropout nondeterminism (none configured, but explicit)
        out = student(batch, log_mask)
        term = distiller.distillation_term(out, batch, log_mask)
        assert term.item() == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different_models(self, setup, tiny_dataset, tiny_mask):
        _, student, distiller = setup
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        out = student(batch, log_mask)
        assert distiller.distillation_term(out, batch, log_mask).item() > 0.0

    def test_gradient_reaches_student_not_teacher(self, setup, tiny_dataset,
                                                  tiny_mask):
        teacher, student, distiller = setup
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        out = student(batch, log_mask)
        term = distiller.distillation_term(out, batch, log_mask)
        term.backward()
        assert any(p.grad is not None for p in student.parameters())
        assert all(p.grad is None for p in teacher.parameters())

    def test_distillation_pulls_student_toward_teacher(self, tiny_config,
                                                       tiny_dataset, tiny_mask):
        """Training the student only on the distillation term should
        shrink the student-teacher output gap."""
        from repro import nn as repro_nn

        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        student = LTEModel(tiny_config, np.random.default_rng(2))
        distiller = MetaKnowledgeDistiller(teacher, tiny_mask)
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        opt = repro_nn.Adam(student.parameters(), lr=5e-3)
        gaps = []
        for _ in range(8):
            opt.zero_grad()
            out = student(batch, log_mask)
            term = distiller.distillation_term(out, batch, log_mask)
            gaps.append(term.item())
            term.backward()
            opt.step()
        assert gaps[-1] < gaps[0]


class TestLambdaForClient:
    def test_returns_float_in_range(self, tiny_config, tiny_dataset, tiny_mask):
        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        student = LTEModel(tiny_config, np.random.default_rng(2))
        distiller = MetaKnowledgeDistiller(teacher, tiny_mask, lambda0=5.0)
        lam = distiller.lambda_for_client(student, tiny_dataset)
        assert 0.0 <= lam <= 5.0

    def test_trained_teacher_raises_lambda(self, tiny_config, tiny_dataset,
                                           tiny_mask):
        teacher = LTEModel(tiny_config, np.random.default_rng(1))
        trainer = LocalTrainer(teacher, tiny_mask,
                               TrainingConfig(epochs=1, batch_size=8, lr=5e-3),
                               np.random.default_rng(0))
        student = LTEModel(tiny_config, np.random.default_rng(2))
        distiller = MetaKnowledgeDistiller(teacher, tiny_mask, lambda0=5.0, lt=0.0)
        before = distiller.lambda_for_client(student, tiny_dataset)
        trainer.train_epochs(tiny_dataset, epochs=6)
        after = distiller.lambda_for_client(student, tiny_dataset)
        assert after >= before
