"""Tests for the LTE model (encoder + ST-blocks + loss)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder, LTEConfig, LTEModel
from repro.core.training import LocalTrainer, TrainingConfig


@pytest.fixture()
def model(tiny_config):
    return LTEModel(tiny_config, np.random.default_rng(0))


class TestForward:
    def test_output_shapes(self, model, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        out = model(batch, log_mask)
        b, t = batch.tgt_segments.shape
        s = tiny_dataset.num_segments
        assert out.log_probs.shape == (b, t, s)
        assert out.ratios.shape == (b, t)
        assert out.segments.shape == (b, t)

    def test_log_probs_normalised(self, model, tiny_dataset, tiny_mask,
                                  float_tol):
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        sums = np.exp(out.log_probs.data).sum(axis=-1)
        # Audited: 1e-9 at float64, ~1e-5 at float32 (per-term exp ULP).
        np.testing.assert_allclose(sums, 1.0, atol=max(float_tol, 1e-9))

    def test_mask_shape_validation(self, model, tiny_dataset):
        batch = tiny_dataset.full_batch()
        with pytest.raises(ValueError):
            model(batch, np.zeros((1, 1, 1)))

    def test_argmax_respects_constraint_mask(self, model, tiny_dataset, tiny_world):
        """Predicted segments should lie inside the mask support."""
        from repro.core.mask import _FLOOR_LOG
        builder = ConstraintMaskBuilder(tiny_world.network, radius=400.0)
        batch = tiny_dataset.full_batch()
        log_mask = builder.build(batch)
        out = model(batch, log_mask, teacher_forcing=False)
        valid = batch.tgt_mask
        inside = 0
        total = 0
        for i in range(batch.size):
            for j in range(batch.steps):
                if not valid[i, j]:
                    continue
                total += 1
                if log_mask[i, j, out.segments[i, j]] > _FLOOR_LOG:
                    inside += 1
        assert inside / total > 0.95

    def test_inference_mode_differs_from_teacher_forcing(self, model,
                                                         tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        tf = model(batch, log_mask, teacher_forcing=True)
        inf = model(batch, log_mask, teacher_forcing=False)
        # Outputs may coincide by chance on some points but not exactly
        # everywhere (the untrained model's feedback loops diverge).
        assert not np.allclose(tf.log_probs.data, inf.log_probs.data)

    def test_deterministic_given_seed(self, tiny_config, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        log_mask = tiny_mask.build(batch)
        a = LTEModel(tiny_config, np.random.default_rng(5))(batch, log_mask)
        b = LTEModel(tiny_config, np.random.default_rng(5))(batch, log_mask)
        np.testing.assert_allclose(a.log_probs.data, b.log_probs.data)

    def test_ratios_nonnegative(self, model, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        assert (out.ratios.data >= 0.0).all()  # ReLU head (Eq. 8)


class TestLoss:
    def test_components_positive(self, model, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        total, parts = model.loss(out, batch, mu=1.0)
        assert parts["ce"] > 0
        assert parts["mse"] >= 0
        assert total.item() == pytest.approx(parts["ce"] + parts["mse"])

    def test_mu_scales_mse(self, model, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        t1, p1 = model.loss(out, batch, mu=1.0)
        out2 = model(batch, tiny_mask.build(batch))
        t2, p2 = model.loss(out2, batch, mu=2.0)
        assert t2.item() == pytest.approx(p2["ce"] + 2 * p2["mse"])

    def test_backward_populates_all_parameters(self, model, tiny_dataset, tiny_mask):
        batch = tiny_dataset.full_batch()
        out = model(batch, tiny_mask.build(batch))
        total, _ = model.loss(out, batch)
        total.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no gradient for {missing}"


class TestTraining:
    def test_loss_decreases(self, tiny_config, tiny_dataset, tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(3))
        trainer = LocalTrainer(model, tiny_mask,
                               TrainingConfig(epochs=1, batch_size=8, lr=5e-3),
                               np.random.default_rng(0))
        losses = trainer.train_epochs(tiny_dataset, epochs=6)
        assert losses[-1] < losses[0]

    def test_training_beats_untrained_accuracy(self, tiny_config, tiny_dataset,
                                               tiny_mask):
        model = LTEModel(tiny_config, np.random.default_rng(3))
        trainer = LocalTrainer(model, tiny_mask,
                               TrainingConfig(epochs=1, batch_size=8, lr=5e-3),
                               np.random.default_rng(0))
        before = trainer.segment_accuracy(tiny_dataset)
        trainer.train_epochs(tiny_dataset, epochs=8)
        after = trainer.segment_accuracy(tiny_dataset)
        assert after >= before
