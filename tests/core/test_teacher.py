"""Tests for cyclic teacher training (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LTEModel, TeacherConfig, train_teacher
from repro.core.training import TrainingConfig, model_segment_accuracy


@pytest.fixture()
def client_splits(tiny_dataset, fresh_rng):
    """Three clients with small train/valid splits."""
    splits = []
    third = len(tiny_dataset) // 3
    for k in range(3):
        part = tiny_dataset.examples[k * third : (k + 1) * third]
        from repro.data import TrajectoryDataset
        shard = TrajectoryDataset(part, tiny_dataset.grid, tiny_dataset.network,
                                  tiny_dataset.keep_ratio)
        train, valid, _ = shard.split((0.6, 0.4, 0.0), rng=fresh_rng)
        splits.append((train, valid if len(valid) else train))
    return splits


def factory_for(config):
    def factory():
        return LTEModel(config, np.random.default_rng(11))
    return factory


class TestAlgorithm1:
    def test_produces_teacher_and_log(self, tiny_config, client_splits, tiny_mask,
                                      fresh_rng):
        config = TeacherConfig(lt=0.0, epochs_per_client=1, cycles=1,
                               training=TrainingConfig(epochs=1, batch_size=8,
                                                       lr=3e-3))
        result = train_teacher(factory_for(tiny_config), client_splits, tiny_mask,
                               config, fresh_rng)
        assert len(result.accepted) == 3
        assert len(result.accuracies) == 3
        assert not result.teacher.training  # returned in eval mode

    def test_zero_threshold_accepts_everything(self, tiny_config, client_splits,
                                               tiny_mask, fresh_rng):
        config = TeacherConfig(lt=0.0, epochs_per_client=1,
                               training=TrainingConfig(epochs=1, batch_size=8,
                                                       lr=3e-3))
        result = train_teacher(factory_for(tiny_config), client_splits, tiny_mask,
                               config, fresh_rng)
        assert all(result.accepted)

    def test_impossible_threshold_rolls_back_everything(self, tiny_config,
                                                        client_splits, tiny_mask,
                                                        fresh_rng):
        config = TeacherConfig(lt=1.0, epochs_per_client=1,
                               training=TrainingConfig(epochs=1, batch_size=8,
                                                       lr=3e-3))
        result = train_teacher(factory_for(tiny_config), client_splits, tiny_mask,
                               config, fresh_rng)
        assert not any(result.accepted)
        # All updates rolled back -> weights equal a fresh model.
        fresh = factory_for(tiny_config)()
        for (n1, p1), (n2, p2) in zip(result.teacher.named_parameters(),
                                      fresh.named_parameters()):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data)

    def test_cycles_multiply_visits(self, tiny_config, client_splits, tiny_mask,
                                    fresh_rng):
        config = TeacherConfig(lt=0.0, epochs_per_client=1, cycles=2,
                               training=TrainingConfig(epochs=1, batch_size=8,
                                                       lr=3e-3))
        result = train_teacher(factory_for(tiny_config), client_splits, tiny_mask,
                               config, fresh_rng)
        assert len(result.accepted) == 6

    def test_teacher_better_than_untrained(self, tiny_config, client_splits,
                                           tiny_mask, fresh_rng, tiny_dataset):
        config = TeacherConfig(lt=0.0, epochs_per_client=3,
                               training=TrainingConfig(epochs=1, batch_size=8,
                                                       lr=5e-3))
        result = train_teacher(factory_for(tiny_config), client_splits, tiny_mask,
                               config, fresh_rng)
        fresh = factory_for(tiny_config)()
        trained_acc = model_segment_accuracy(result.teacher, tiny_mask, tiny_dataset)
        fresh_acc = model_segment_accuracy(fresh, tiny_mask, tiny_dataset)
        assert trained_acc >= fresh_acc

    def test_empty_clients_raise(self, tiny_config, tiny_mask, fresh_rng):
        with pytest.raises(ValueError):
            train_teacher(factory_for(tiny_config), [], tiny_mask,
                          TeacherConfig(), fresh_rng)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TeacherConfig(lt=1.5)
        with pytest.raises(ValueError):
            TeacherConfig(subset_fraction=0.0)
        with pytest.raises(ValueError):
            TeacherConfig(cycles=0)
