"""Backend-seam lint as a tier-1 test.

Runs ``tools/check_backend.py`` (the same script CI or a human can run
directly) so kernel modules cannot regress to direct ``np.*`` math that
would silently bypass the selected array backend
(:mod:`repro.nn.backend`).
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_backend.py")


def test_backend_seam_check_passes():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, CHECKER], capture_output=True, text=True, env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"backend-seam check failed:\n{result.stdout}\n{result.stderr}"
    )


def test_lint_actually_detects_violations(tmp_path):
    """The tokenizer must flag a real ``np.exp`` call and honour the
    string/comment and allowlist exemptions."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
    try:
        import check_backend
    finally:
        sys.path.pop(0)
    sample = tmp_path / "kernel.py"
    sample.write_text(
        '"""Docstring may say np.exp freely."""\n'
        "import numpy as np\n"
        "x = np.asarray([1.0])      # allowed: construction edge\n"
        "y = np.exp(x)              # violation\n"
        "z = some.np.thing          # not the module\n"
    )
    problems = check_backend.check_module(
        os.path.relpath(sample, check_backend.REPO_ROOT))
    assert problems == [f"{os.path.relpath(sample, check_backend.REPO_ROOT)}"
                        f":4: np.exp"]
