"""Location inference error: MAE and RMSE (paper Eq. 20).

Distances between predicted and ground-truth points are measured along
the road network (``rndis``), taking the minimum of the two directions
because the network is directed.  Results are reported in kilometres,
matching the magnitudes of the paper's tables.
"""

from __future__ import annotations

import math

import numpy as np

from ..spatial.roadnet import RoadNetwork

__all__ = ["point_distance", "mae_rmse"]


def point_distance(network: RoadNetwork, true_seg: int, true_ratio: float,
                   pred_seg: int, pred_ratio: float) -> float:
    """``min(rndis(g, g'), rndis(g', g))`` in metres.

    Falls back to the Euclidean distance when the two points are
    mutually unreachable (cannot happen on strongly connected
    networks, but synthetic worlds in tests may be partial).
    """
    d = network.symmetric_route_distance(true_seg, true_ratio, pred_seg, pred_ratio)
    if math.isinf(d):
        a = network.position_at(true_seg, true_ratio)
        b = network.position_at(pred_seg, pred_ratio)
        return a.distance_to(b)
    return d


def mae_rmse(network: RoadNetwork,
             pred_segments: np.ndarray, pred_ratios: np.ndarray,
             true_segments: np.ndarray, true_ratios: np.ndarray,
             eval_mask: np.ndarray, unit: str = "km") -> tuple[float, float]:
    """Road-network MAE and RMSE over masked points.

    Parameters
    ----------
    pred_segments, pred_ratios, true_segments, true_ratios:
        Arrays of shape ``(B, T)``.
    eval_mask:
        Boolean ``(B, T)`` selecting the recovered points to score.
    unit:
        ``"km"`` (default, the paper's unit) or ``"m"``.
    """
    if unit not in ("km", "m"):
        raise ValueError(f"unknown unit {unit!r}")
    eval_mask = np.asarray(eval_mask, dtype=bool)
    if not eval_mask.any():
        raise ValueError("evaluation mask selected no points")
    scale = 1e-3 if unit == "km" else 1.0

    errors = []
    rows, cols = np.nonzero(eval_mask)
    for i, j in zip(rows, cols):
        d = point_distance(
            network,
            int(true_segments[i, j]), float(true_ratios[i, j]),
            int(pred_segments[i, j]), float(pred_ratios[i, j]),
        )
        errors.append(d * scale)
    errors = np.asarray(errors)
    mae = float(np.mean(np.abs(errors)))
    rmse = float(np.sqrt(np.mean(errors**2)))
    return mae, rmse
