"""Route recovery accuracy: Recall and Precision (paper Eq. 19).

The recovered road segments ``PR`` of each trajectory are compared as a
set against the ground-truth segments ``G`` of the points that had to
be recovered; recall is ``|PR & G| / |G|`` and precision is
``|PR & G| / |PR|``, averaged over trajectories.
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall_precision", "pointwise_accuracy"]


def recall_precision(pred_segments: np.ndarray, true_segments: np.ndarray,
                     eval_mask: np.ndarray) -> tuple[float, float]:
    """Mean per-trajectory recall and precision of recovered segments.

    Parameters
    ----------
    pred_segments, true_segments:
        Integer arrays of shape ``(B, T)``.
    eval_mask:
        Boolean ``(B, T)``; True marks the recovered (missing, valid)
        points that enter the comparison.
    """
    pred_segments = np.asarray(pred_segments)
    true_segments = np.asarray(true_segments)
    eval_mask = np.asarray(eval_mask, dtype=bool)
    if pred_segments.shape != true_segments.shape or pred_segments.shape != eval_mask.shape:
        raise ValueError("pred, true, and mask shapes must match")

    recalls, precisions = [], []
    for i in range(pred_segments.shape[0]):
        mask = eval_mask[i]
        if not mask.any():
            continue
        predicted = set(int(s) for s in pred_segments[i][mask])
        truth = set(int(s) for s in true_segments[i][mask])
        overlap = len(predicted & truth)
        recalls.append(overlap / len(truth))
        precisions.append(overlap / len(predicted))
    if not recalls:
        raise ValueError("evaluation mask selected no points")
    return float(np.mean(recalls)), float(np.mean(precisions))


def pointwise_accuracy(pred_segments: np.ndarray, true_segments: np.ndarray,
                       eval_mask: np.ndarray) -> float:
    """Fraction of masked points whose segment is exactly right."""
    eval_mask = np.asarray(eval_mask, dtype=bool)
    if not eval_mask.any():
        raise ValueError("evaluation mask selected no points")
    correct = np.asarray(pred_segments) == np.asarray(true_segments)
    return float(correct[eval_mask].mean())
