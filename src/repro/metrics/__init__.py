"""``repro.metrics`` - accuracy, distance error, and efficiency metrics."""

from .accuracy import pointwise_accuracy, recall_precision
from .distance import mae_rmse, point_distance
from .efficiency import EfficiencyReport, measure_epoch_seconds, profile_model
from .evaluation import (
    MetricRow,
    evaluate_model,
    evaluate_per_client,
    heterogeneity_summary,
)

__all__ = [
    "recall_precision", "pointwise_accuracy",
    "mae_rmse", "point_distance",
    "MetricRow", "evaluate_model", "evaluate_per_client", "heterogeneity_summary",
    "EfficiencyReport", "profile_model", "measure_epoch_seconds",
]
