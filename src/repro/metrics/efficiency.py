"""Efficiency accounting: running time, FLOPs, parameters (Figure 5).

Wall-clock epoch time is measured on the actual trainer; FLOPs and
parameter counts come from the analytic model in :mod:`repro.nn.flops`
— both the training-side forward cost and the serving-side
autoregressive decode cost (``decode_flops``), so inference cost is
reported alongside training cost.  Communication cost per round
follows from the parameter payload (the paper notes communication cost
is positively correlated with parameters and FLOPs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.base import RecoveryModel
from ..core.training import LocalTrainer
from ..data.dataset import TrajectoryDataset
from ..nn.flops import count_parameters, estimate_decode_flops, estimate_flops
from ..nn.serialization import state_dict_num_bytes

__all__ = ["EfficiencyReport", "profile_model", "measure_epoch_seconds"]


@dataclass(frozen=True)
class EfficiencyReport:
    """One bar group of Figure 5 for one method."""

    name: str
    parameters: int
    flops: float
    epoch_seconds: float
    payload_bytes: int
    decode_flops: float = 0.0  # autoregressive recovery of one sequence

    @property
    def parameters_m(self) -> float:
        """Parameters in millions (Figure 5b right axis)."""
        return self.parameters / 1e6

    @property
    def flops_m(self) -> float:
        """FLOPs in millions (Figure 5b left axis)."""
        return self.flops / 1e6

    @property
    def decode_flops_m(self) -> float:
        """Decode (inference) FLOPs in millions per recovered sequence."""
        return self.decode_flops / 1e6

    def __str__(self) -> str:
        return (f"{self.name}: {self.epoch_seconds:.3f}s/epoch, "
                f"{self.flops_m:.3f}M FLOPs, "
                f"{self.decode_flops_m:.3f}M decode FLOPs, "
                f"{self.parameters_m:.4f}M params, "
                f"{self.payload_bytes / 1024:.1f} KiB/round")


def measure_epoch_seconds(trainer: LocalTrainer, dataset: TrajectoryDataset,
                          repeats: int = 1) -> float:
    """Median wall-clock seconds of one training epoch."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_epoch(dataset)
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def profile_model(name: str, model: RecoveryModel, trainer: LocalTrainer,
                  dataset: TrajectoryDataset, seq_len: int,
                  repeats: int = 1) -> EfficiencyReport:
    """Measure one method's full efficiency row."""
    seconds = measure_epoch_seconds(trainer, dataset, repeats=repeats)
    return EfficiencyReport(
        name=name,
        parameters=count_parameters(model),
        flops=estimate_flops(model, seq_len=seq_len),
        epoch_seconds=seconds,
        payload_bytes=state_dict_num_bytes(model.state_dict()),
        decode_flops=estimate_decode_flops(model, seq_len=seq_len),
    )
