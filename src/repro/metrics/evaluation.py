"""One-call model evaluation: all four paper metrics at once.

Evaluates a recovery model on a dataset's *missing* points (observed
points are inputs, not predictions) and returns the row format used by
every table in the paper: Recall, Precision, MAE, RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..core.base import RecoveryModel
from ..core.mask import ConstraintMaskBuilder
from ..data.dataset import TrajectoryDataset
from ..serving import decode_model
from .accuracy import pointwise_accuracy, recall_precision
from .distance import mae_rmse

__all__ = ["MetricRow", "evaluate_model", "evaluate_per_client",
           "heterogeneity_summary"]


@dataclass(frozen=True)
class MetricRow:
    """Recall / Precision / MAE / RMSE of one (method, setting) cell."""

    recall: float
    precision: float
    mae: float
    rmse: float
    accuracy: float  # pointwise segment accuracy (diagnostic, not in tables)

    def as_dict(self) -> dict[str, float]:
        return {
            "recall": self.recall,
            "precision": self.precision,
            "mae": self.mae,
            "rmse": self.rmse,
            "accuracy": self.accuracy,
        }

    def __str__(self) -> str:
        return (f"recall={self.recall:.3f} precision={self.precision:.3f} "
                f"mae={self.mae:.3f} rmse={self.rmse:.3f}")


def evaluate_model(model: RecoveryModel, mask_builder: ConstraintMaskBuilder,
                   dataset: TrajectoryDataset, unit: str = "km",
                   decode_batch: int | None = None) -> MetricRow:
    """Run inference and compute all metrics over missing points.

    Inference goes through the packed decode engine
    (:mod:`repro.serving`): trajectories decode to their true lengths,
    ``decode_batch`` at a time (``None`` = the whole dataset as one
    working set).  Metrics only read valid missing steps, where packed
    output matches the padded decode bit-for-bit.
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    batch = dataset.full_batch()
    log_mask = mask_builder.build_for(batch, model)
    model.eval()
    with nn.no_grad():
        output = decode_model(model, batch, log_mask,
                              decode_batch=decode_batch)
    model.train()

    eval_mask = batch.tgt_mask & ~batch.observed_flags
    pred_segments = output.segments
    pred_ratios = np.clip(output.ratios.data, 0.0, 1.0)
    recall, precision = recall_precision(pred_segments, batch.tgt_segments, eval_mask)
    mae, rmse = mae_rmse(dataset.network, pred_segments, pred_ratios,
                         batch.tgt_segments, batch.tgt_ratios, eval_mask, unit=unit)
    accuracy = pointwise_accuracy(pred_segments, batch.tgt_segments, eval_mask)
    return MetricRow(recall=recall, precision=precision, mae=mae, rmse=rmse,
                     accuracy=accuracy)


def evaluate_per_client(model: RecoveryModel, mask_builder: ConstraintMaskBuilder,
                        client_datasets: list[TrajectoryDataset],
                        unit: str = "km",
                        decode_batch: int | None = None) -> list[MetricRow]:
    """Evaluate one (global) model on each client's local data.

    The per-client spread quantifies how well a single global model
    serves Non-IID clients - the heterogeneity the meta-knowledge
    module targets.  Clients with empty datasets are skipped by the
    caller; passing one raises.  ``decode_batch`` bounds each client's
    packed decode working set (see :func:`evaluate_model`).
    """
    return [evaluate_model(model, mask_builder, dataset, unit=unit,
                           decode_batch=decode_batch)
            for dataset in client_datasets]


def heterogeneity_summary(rows: list[MetricRow]) -> dict[str, float]:
    """Mean / std / worst-client recall over per-client metric rows."""
    if not rows:
        raise ValueError("need at least one client row")
    recalls = np.array([r.recall for r in rows])
    return {
        "mean_recall": float(recalls.mean()),
        "std_recall": float(recalls.std()),
        "worst_recall": float(recalls.min()),
        "best_recall": float(recalls.max()),
    }
