"""Synthetic trajectory generation (the Geolife / T-Drive stand-ins).

The paper's datasets are real Beijing GPS traces, which are not
available offline.  This module generates the closest synthetic
equivalent: drivers with heterogeneous behaviour (home region, speed,
turn preferences) perform random-walk trips on a synthetic road
network; positions are sampled every ``epsilon`` seconds to give the
ground-truth map-matched trajectory, and Gaussian GPS noise produces
the raw trace fed to the HMM matcher.

Two presets mirror the statistics that matter (Table III):

* ``geolife_like`` - few drivers, more and longer trajectories each,
  mild GPS noise (Geolife is a long-span, data-rich collection).
* ``tdrive_like`` - many drivers, fewer/shorter/noisier trajectories
  each (T-Drive is a one-week taxi snapshot; the paper calls it sparse).

Driver home regions concentrate each driver's trips in one part of the
city, so partitioning clients by driver yields the Non-IID data
distribution the meta-knowledge module is designed to handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..spatial.generators import grid_city
from ..spatial.geometry import Point
from ..spatial.grid import Grid
from ..spatial.roadnet import RoadNetwork, RoadSegment
from .trajectory import MatchedPoint, MatchedTrajectory, RawPoint, RawTrajectory

__all__ = ["DriverProfile", "SyntheticConfig", "SyntheticDataset", "generate_dataset",
           "geolife_like", "tdrive_like"]


@dataclass(frozen=True)
class DriverProfile:
    """Behavioural parameters of one synthetic driver."""

    driver_id: int
    home_node: int
    speed_mps: float
    turn_bias: float  # preference for continuing straight, in [0, 1]
    wander: float  # probability of starting away from home


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic dataset generator."""

    name: str = "synthetic"
    num_drivers: int = 20
    trajectories_per_driver: int = 10
    points_per_trajectory: int = 33
    epsilon: float = 15.0  # seconds between consecutive points
    speed_range: tuple[float, float] = (6.0, 14.0)  # m/s
    gps_noise_std: float = 12.0  # metres
    grid_cell_size: float = 150.0
    network_nx: int = 8
    network_ny: int = 8
    network_spacing: float = 250.0
    home_concentration: float = 0.8  # prob. a trip starts near home

    def __post_init__(self):
        if self.num_drivers < 1:
            raise ValueError("need at least one driver")
        if self.points_per_trajectory < 3:
            raise ValueError("trajectories must have at least 3 points")
        if not 0.0 <= self.home_concentration <= 1.0:
            raise ValueError("home_concentration must be in [0, 1]")


@dataclass
class SyntheticDataset:
    """A generated world: network, grid, drivers, and their trajectories."""

    name: str
    network: RoadNetwork
    grid: Grid
    drivers: list[DriverProfile]
    raw: list[RawTrajectory]
    matched: list[MatchedTrajectory]
    config: SyntheticConfig = field(repr=False, default=None)  # type: ignore[assignment]

    def trajectories_of(self, driver_id: int) -> list[MatchedTrajectory]:
        """Ground-truth trajectories belonging to one driver."""
        return [t for t in self.matched if t.driver_id == driver_id]


def generate_dataset(config: SyntheticConfig, seed: int = 0,
                     network: RoadNetwork | None = None) -> SyntheticDataset:
    """Generate a full synthetic dataset from a config.

    The ground-truth matched trajectory is exact (the walker moves on
    the network), and the raw GPS trace adds isotropic Gaussian noise,
    so the HMM matcher has realistic work to do.
    """
    rng = np.random.default_rng(seed)
    if network is None:
        network = grid_city(
            nx=config.network_nx,
            ny=config.network_ny,
            spacing=config.network_spacing,
            rng=np.random.default_rng(seed + 1),
        )

    drivers = _make_drivers(config, network, rng)
    raw: list[RawTrajectory] = []
    matched: list[MatchedTrajectory] = []
    traj_id = 0
    for driver in drivers:
        for _ in range(config.trajectories_per_driver):
            walked = _walk_trajectory(network, driver, config, rng, traj_id)
            if walked is None:
                continue
            matched_traj, raw_traj = walked
            matched.append(matched_traj)
            raw.append(raw_traj)
            traj_id += 1

    min_x, min_y, max_x, max_y = network.bounding_box()
    margin = 3.0 * config.gps_noise_std + config.grid_cell_size
    grid = Grid(min_x - margin, min_y - margin, max_x + margin, max_y + margin,
                config.grid_cell_size)
    return SyntheticDataset(
        name=config.name, network=network, grid=grid, drivers=drivers,
        raw=raw, matched=matched, config=config,
    )


def geolife_like(num_drivers: int = 20, trajectories_per_driver: int = 12,
                 points_per_trajectory: int = 33, seed: int = 42,
                 **overrides) -> SyntheticDataset:
    """Geolife stand-in: data-rich, long-span, low-noise (see Table III)."""
    config = SyntheticConfig(
        name="geolife_like",
        num_drivers=num_drivers,
        trajectories_per_driver=trajectories_per_driver,
        points_per_trajectory=points_per_trajectory,
        gps_noise_std=8.0,
        speed_range=(4.0, 12.0),
        **overrides,
    )
    return generate_dataset(config, seed=seed)


def tdrive_like(num_drivers: int = 20, trajectories_per_driver: int = 6,
                points_per_trajectory: int = 33, seed: int = 1337,
                **overrides) -> SyntheticDataset:
    """T-Drive stand-in: sparser per driver and noisier (taxi GPS)."""
    config = SyntheticConfig(
        name="tdrive_like",
        num_drivers=num_drivers,
        trajectories_per_driver=trajectories_per_driver,
        points_per_trajectory=points_per_trajectory,
        gps_noise_std=16.0,
        speed_range=(7.0, 16.0),
        **overrides,
    )
    return generate_dataset(config, seed=seed)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------

def _make_drivers(config: SyntheticConfig, network: RoadNetwork,
                  rng: np.random.Generator) -> list[DriverProfile]:
    node_ids = sorted(network.nodes)
    lo, hi = config.speed_range
    drivers = []
    for d in range(config.num_drivers):
        drivers.append(
            DriverProfile(
                driver_id=d,
                home_node=int(rng.choice(node_ids)),
                speed_mps=float(rng.uniform(lo, hi)),
                turn_bias=float(rng.uniform(0.5, 0.9)),
                wander=1.0 - config.home_concentration,
            )
        )
    return drivers


def _start_segment(network: RoadNetwork, driver: DriverProfile,
                   rng: np.random.Generator) -> RoadSegment:
    if rng.random() < driver.wander:
        return network.segments[int(rng.integers(network.num_segments))]
    candidates = network.out_segments(driver.home_node)
    if not candidates:
        return network.segments[int(rng.integers(network.num_segments))]
    return candidates[int(rng.integers(len(candidates)))]


def _pick_next_segment(network: RoadNetwork, current: RoadSegment,
                       driver: DriverProfile, rng: np.random.Generator) -> RoadSegment:
    successors = network.successors(current.segment_id)
    if not successors:
        # Dead end: legal only by U-turn.
        return _reverse_of(network, current)
    forward = [s for s in successors if s.end_node != current.start_node]
    pool = forward if (forward and rng.random() < driver.turn_bias + 0.1) else successors
    weights = np.ones(len(pool))
    # Prefer roughly straight continuations (dot product of directions).
    cur_dir = np.array([current.end.x - current.start.x, current.end.y - current.start.y])
    cur_norm = np.linalg.norm(cur_dir) + 1e-9
    for i, seg in enumerate(pool):
        nxt = np.array([seg.end.x - seg.start.x, seg.end.y - seg.start.y])
        cos = float(cur_dir @ nxt / (cur_norm * (np.linalg.norm(nxt) + 1e-9)))
        weights[i] = np.exp(driver.turn_bias * 2.0 * cos)
    weights /= weights.sum()
    return pool[int(rng.choice(len(pool), p=weights))]


def _reverse_of(network: RoadNetwork, segment: RoadSegment) -> RoadSegment:
    for seg in network.out_segments(segment.end_node):
        if seg.end_node == segment.start_node:
            return seg
    return segment  # one-way dead end: stay put (walker will stall)


def _walk_trajectory(network: RoadNetwork, driver: DriverProfile,
                     config: SyntheticConfig, rng: np.random.Generator,
                     traj_id: int) -> tuple[MatchedTrajectory, RawTrajectory] | None:
    segment = _start_segment(network, driver, rng)
    ratio = float(rng.uniform(0.0, 0.5))
    t0 = float(rng.uniform(0.0, 86_400.0))
    speed = driver.speed_mps * float(rng.uniform(0.85, 1.15))

    matched_points: list[MatchedPoint] = []
    raw_points: list[RawPoint] = []
    for i in range(config.points_per_trajectory):
        t = t0 + i * config.epsilon
        matched_points.append(MatchedPoint(segment.segment_id, ratio, t, tid=i))
        pos = segment.position_at(ratio)
        noise = rng.normal(0.0, config.gps_noise_std, size=2)
        raw_points.append(RawPoint(pos.x + float(noise[0]), pos.y + float(noise[1]), t))

        # Advance along the network for epsilon seconds.
        remaining = speed * config.epsilon * float(rng.uniform(0.8, 1.2))
        guard = 0
        while remaining > 0 and guard < 64:
            guard += 1
            seg_len = max(segment.length, 1e-6)
            ahead = (1.0 - ratio) * seg_len
            if remaining < ahead:
                ratio += remaining / seg_len
                remaining = 0.0
            else:
                remaining -= ahead
                segment = _pick_next_segment(network, segment, driver, rng)
                ratio = 0.0
    if len(matched_points) < 3:
        return None
    matched = MatchedTrajectory(
        traj_id=traj_id, driver_id=driver.driver_id,
        epsilon=config.epsilon, points=tuple(matched_points),
    )
    raw = RawTrajectory(traj_id=traj_id, driver_id=driver.driver_id,
                        points=tuple(raw_points))
    return matched, raw
