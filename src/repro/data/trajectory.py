"""Trajectory data types (paper Definitions 2-6).

Three representations flow through the system:

* :class:`RawTrajectory` - noisy GPS points straight off the device.
* :class:`MatchedTrajectory` - map-matched, uniform epsilon-sampling-rate
  points ``(e, r, t)`` produced by the HMM matcher (Definition 5).
* :class:`IncompleteTrajectory` - a matched trajectory with most points
  removed by downsampling (Definition 6); the model's input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spatial.geometry import Point
from ..spatial.roadnet import RoadNetwork

__all__ = ["RawPoint", "RawTrajectory", "MatchedPoint", "MatchedTrajectory", "IncompleteTrajectory"]


@dataclass(frozen=True)
class RawPoint:
    """A GPS fix in the local planar frame (Definition 2)."""

    x: float
    y: float
    t: float

    def as_point(self) -> Point:
        """Drop the timestamp."""
        return Point(self.x, self.y)


@dataclass(frozen=True)
class RawTrajectory:
    """A sequence of raw GPS fixes (Definition 3)."""

    traj_id: int
    driver_id: int
    points: tuple[RawPoint, ...]

    def __post_init__(self):
        if len(self.points) < 2:
            raise ValueError("a trajectory needs at least two points")
        times = [p.t for p in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("timestamps must be strictly increasing")

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class MatchedPoint:
    """A map-matched trajectory point ``(e, r)`` at time ``t`` (Definition 5).

    ``tid`` is the discrete time index ``floor((t - t0) / epsilon)`` the
    paper uses to tell the model how many points to recover (Eq. 4).
    """

    segment_id: int
    ratio: float
    t: float
    tid: int

    def position(self, network: RoadNetwork) -> Point:
        """Planar position of this matched point."""
        return network.position_at(self.segment_id, self.ratio)


@dataclass(frozen=True)
class MatchedTrajectory:
    """A uniform epsilon-sampling-rate map-matched trajectory."""

    traj_id: int
    driver_id: int
    epsilon: float
    points: tuple[MatchedPoint, ...]

    def __post_init__(self):
        if len(self.points) < 2:
            raise ValueError("a matched trajectory needs at least two points")
        if self.epsilon <= 0:
            raise ValueError("sampling rate epsilon must be positive")

    def __len__(self) -> int:
        return len(self.points)

    def segment_ids(self) -> list[int]:
        """The road-segment label sequence."""
        return [p.segment_id for p in self.points]

    def ratios(self) -> list[float]:
        """The moving-ratio sequence."""
        return [p.ratio for p in self.points]

    def positions(self, network: RoadNetwork) -> list[Point]:
        """Planar positions of every point."""
        return [p.position(network) for p in self.points]


@dataclass(frozen=True)
class IncompleteTrajectory:
    """A matched trajectory with missing interior points (Definition 6).

    ``observed_indices`` index into the *complete* trajectory of length
    ``full_length``; the points at those indices are kept, everything
    else must be recovered.
    """

    source: MatchedTrajectory
    observed_indices: tuple[int, ...]
    keep_ratio: float = field(default=0.0)

    def __post_init__(self):
        n = len(self.source)
        idx = self.observed_indices
        if len(idx) < 2:
            raise ValueError("need at least two observed points (endpoints)")
        if idx[0] != 0 or idx[-1] != n - 1:
            raise ValueError("endpoints of the trajectory must be observed")
        if any(b <= a for a, b in zip(idx, idx[1:])):
            raise ValueError("observed indices must be strictly increasing")
        if idx[-1] >= n:
            raise IndexError("observed index out of range")

    @property
    def full_length(self) -> int:
        """Length of the complete trajectory to recover."""
        return len(self.source)

    @property
    def observed_points(self) -> list[MatchedPoint]:
        """The observed (kept) points."""
        return [self.source.points[i] for i in self.observed_indices]

    @property
    def missing_indices(self) -> list[int]:
        """Indices of the points that must be recovered."""
        observed = set(self.observed_indices)
        return [i for i in range(self.full_length) if i not in observed]

    def observed_flags(self) -> list[bool]:
        """Boolean per complete-trajectory index: was it observed?"""
        observed = set(self.observed_indices)
        return [i in observed for i in range(self.full_length)]
