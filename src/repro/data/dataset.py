"""Encoding trajectories into model-ready arrays, splits, and batching.

A :class:`RecoveryExample` is one (incomplete -> complete) training pair:
the observed points encoded as grid-cell ids + time indices (the paper's
``g_i = (x_i, y_i, tid_i)``), the target segment/ratio sequences, and a
per-timestep *guide position* (linear interpolation between the
surrounding observed points) that the constraint-mask layer uses to
restrict the candidate road segments (paper Eq. 10-11).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, fields

import numpy as np

from ..nn.backend import get_backend
from ..nn.dtypes import get_compute_dtype
from ..spatial.grid import Grid
from ..spatial.roadnet import RoadNetwork
from .downsample import downsample
from .trajectory import IncompleteTrajectory, MatchedTrajectory

__all__ = ["RecoveryExample", "Batch", "TrajectoryDataset", "encode_example"]


@dataclass(frozen=True)
class RecoveryExample:
    """One encoded recovery problem (arrays, ready for the model)."""

    traj_id: int
    driver_id: int
    obs_cells: np.ndarray  # (n_obs,) int64 grid cell ids
    obs_tids: np.ndarray  # (n_obs,) int64 time indices
    obs_xy: np.ndarray  # (n_obs, 2) float64 matched planar positions
    tgt_segments: np.ndarray  # (n_full,) int64 road segment labels
    tgt_ratios: np.ndarray  # (n_full,) float64 moving ratios
    observed_flags: np.ndarray  # (n_full,) bool - True where the point was observed
    guide_xy: np.ndarray  # (n_full, 2) float64 interpolated guide positions

    @property
    def num_observed(self) -> int:
        return int(self.obs_cells.shape[0])

    @property
    def full_length(self) -> int:
        return int(self.tgt_segments.shape[0])


@dataclass(frozen=True)
class Batch:
    """A padded mini-batch of recovery examples.

    Model-input float fields (``obs_feats``, ``tgt_ratios``) collate in
    the active *compute dtype* (:func:`repro.nn.set_compute_dtype`) so
    float32 runs never pay a float64 copy per batch; ``guide_xy`` stays
    float64 — it feeds spatial mask building, not model kernels.
    """

    obs_cells: np.ndarray  # (B, To) int64
    obs_feats: np.ndarray  # (B, To, 2) compute dtype: [tid frac, gap frac]
    obs_mask: np.ndarray  # (B, To) bool
    tgt_segments: np.ndarray  # (B, T) int64
    tgt_ratios: np.ndarray  # (B, T) compute dtype
    tgt_mask: np.ndarray  # (B, T) bool - valid (non-padding) timesteps
    observed_flags: np.ndarray  # (B, T) bool
    guide_xy: np.ndarray  # (B, T, 2) float64
    traj_ids: np.ndarray  # (B,) int64

    @property
    def size(self) -> int:
        return int(self.obs_cells.shape[0])

    @property
    def steps(self) -> int:
        return int(self.tgt_segments.shape[1])


def encode_example(incomplete: IncompleteTrajectory, grid: Grid,
                   network: RoadNetwork) -> RecoveryExample:
    """Encode an incomplete trajectory and its ground truth into arrays."""
    source = incomplete.source
    n_full = incomplete.full_length
    obs_idx = np.asarray(incomplete.observed_indices, dtype=np.int64)

    positions = np.array(
        [[p.x, p.y] for p in source.positions(network)], dtype=np.float64
    )
    obs_xy = positions[obs_idx]
    obs_cells = np.array(
        [grid.cell_id(source.points[i].position(network)) for i in obs_idx],
        dtype=np.int64,
    )
    obs_tids = np.array([source.points[i].tid for i in obs_idx], dtype=np.int64)

    guide = _interpolate_guides(obs_idx, obs_xy, n_full)

    return RecoveryExample(
        traj_id=source.traj_id,
        driver_id=source.driver_id,
        obs_cells=obs_cells,
        obs_tids=obs_tids,
        obs_xy=obs_xy,
        tgt_segments=np.array(source.segment_ids(), dtype=np.int64),
        tgt_ratios=np.array(source.ratios(), dtype=np.float64),
        observed_flags=np.array(incomplete.observed_flags(), dtype=bool),
        guide_xy=guide,
    )


def _interpolate_guides(obs_idx: np.ndarray, obs_xy: np.ndarray, n_full: int) -> np.ndarray:
    """Linear interpolation of observed positions at every timestep.

    This approximates where the vehicle plausibly was between two
    observations and anchors the constraint mask there.
    """
    steps = np.arange(n_full, dtype=np.float64)
    gx = np.interp(steps, obs_idx.astype(np.float64), obs_xy[:, 0])
    gy = np.interp(steps, obs_idx.astype(np.float64), obs_xy[:, 1])
    return np.stack([gx, gy], axis=1)


#: Upper bound on memoised collated batches per dataset.  Shuffled epoch
#: loops produce fresh chunk keys every pass, so without a cap the cache
#: would grow by one entry per batch forever; LRU eviction keeps the
#: recurring keys (full-batch evaluation, unshuffled iteration) resident.
_BATCH_CACHE_CAP = 128


class TrajectoryDataset:
    """A list of encoded recovery examples plus the world they live in.

    Collated batches are memoised per chunk key (the exact example-index
    tuple): evaluation's :meth:`full_batch` and deterministic
    :meth:`batches` iteration re-pad once instead of every epoch.  The
    cached arrays are returned read-only because callers share them;
    ``copy.deepcopy`` a batch before mutating it.  A new dataset (e.g.
    from :meth:`split`) starts with an empty cache; call
    :meth:`clear_batch_cache` after mutating ``examples`` in place.
    """

    def __init__(self, examples: list[RecoveryExample], grid: Grid,
                 network: RoadNetwork, keep_ratio: float):
        self.examples = list(examples)
        self.grid = grid
        self.network = network
        self.keep_ratio = keep_ratio
        # Per-example observed-feature rows, computed once: epoch loops
        # re-collate the same examples every pass (only batch composition
        # changes with the shuffle).
        self._obs_feat_cache: dict[int, np.ndarray] = {}
        # Collated-Batch memo, LRU-bounded, keyed by example-index tuple.
        self._batch_cache: "OrderedDict[tuple[int, ...], Batch]" = OrderedDict()
        self._batch_cache_cap = _BATCH_CACHE_CAP

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index: int) -> RecoveryExample:
        return self.examples[index]

    @property
    def num_segments(self) -> int:
        """Road-segment vocabulary size."""
        return self.network.num_segments

    @property
    def num_cells(self) -> int:
        """Grid-cell vocabulary size."""
        return self.grid.num_cells

    @classmethod
    def from_matched(cls, trajectories: list[MatchedTrajectory], grid: Grid,
                     network: RoadNetwork, keep_ratio: float) -> "TrajectoryDataset":
        """Downsample and encode complete trajectories into a dataset."""
        examples = [
            encode_example(downsample(traj, keep_ratio), grid, network)
            for traj in trajectories
        ]
        return cls(examples, grid, network, keep_ratio)

    def split(self, fractions: tuple[float, float, float] = (0.7, 0.2, 0.1),
              rng: np.random.Generator | None = None
              ) -> tuple["TrajectoryDataset", "TrajectoryDataset", "TrajectoryDataset"]:
        """Shuffle and split into train/valid/test (paper ratio 7:2:1)."""
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError("split fractions must sum to 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        order = rng.permutation(len(self.examples))
        n_train = int(round(fractions[0] * len(order)))
        n_valid = int(round(fractions[1] * len(order)))
        picks = (
            order[:n_train],
            order[n_train : n_train + n_valid],
            order[n_train + n_valid :],
        )
        return tuple(
            TrajectoryDataset([self.examples[i] for i in part], self.grid,
                              self.network, self.keep_ratio)
            for part in picks
        )  # type: ignore[return-value]

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield padded :class:`Batch` objects (shuffled when ``rng`` given)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = np.arange(len(self.examples))
        if rng is not None:
            order = rng.permutation(order)
        for start in range(0, len(order), batch_size):
            yield self._collate_cached(
                tuple(int(i) for i in order[start : start + batch_size])
            )

    def full_batch(self) -> Batch:
        """The whole dataset as one batch (used for evaluation).

        Cached: every round's evaluation pass reuses one padded batch.
        """
        if not self.examples:
            raise ValueError("dataset is empty")
        return self._collate_cached(tuple(range(len(self.examples))))

    def clear_batch_cache(self) -> None:
        """Drop memoised collated batches (after mutating ``examples``)."""
        self._batch_cache.clear()

    def set_batch_cache_limit(self, limit: int) -> None:
        """Bound this dataset's collation memo to ``limit`` entries.

        The module default (``_BATCH_CACHE_CAP``) is sized for a
        handful of datasets; a thousand-client federation holds 3N + 1
        of them, so the per-dataset budget becomes a hidden memory
        multiplier — ``FederatedConfig.collation_cache_entries``
        forwards here to shrink it.  Lowering the limit evicts
        immediately (LRU order); caching itself cannot be disabled
        (``limit >= 1``) because :meth:`full_batch` consumers rely on
        the shared read-only batch.
        """
        if limit < 1:
            raise ValueError("batch cache limit must be >= 1")
        self._batch_cache_cap = int(limit)
        while len(self._batch_cache) > self._batch_cache_cap:
            self._batch_cache.popitem(last=False)

    def _collate_cached(self, key: tuple[int, ...]) -> Batch:
        """Collate the examples at ``key``, memoising per index tuple.

        The memo key carries the compute dtype and the array-backend
        name: flipping either mid-run re-collates instead of serving
        arrays built under the previous configuration.
        """
        key = (get_compute_dtype().char, get_backend()) + key
        batch = self._batch_cache.get(key)
        if batch is not None:
            self._batch_cache.move_to_end(key)
            return batch
        batch = self._collate([self.examples[i] for i in key[2:]])
        for spec in fields(Batch):  # shared across callers: freeze
            getattr(batch, spec.name).flags.writeable = False
        self._batch_cache[key] = batch
        while len(self._batch_cache) > self._batch_cache_cap:
            self._batch_cache.popitem(last=False)
        return batch

    def _collate(self, chunk: list[RecoveryExample]) -> Batch:
        b = len(chunk)
        to = max(e.num_observed for e in chunk)
        t = max(e.full_length for e in chunk)
        dtype = get_compute_dtype()
        obs_cells = np.zeros((b, to), dtype=np.int64)
        obs_feats = np.zeros((b, to, 2), dtype=dtype)
        obs_mask = np.zeros((b, to), dtype=bool)
        tgt_segments = np.zeros((b, t), dtype=np.int64)
        tgt_ratios = np.zeros((b, t), dtype=dtype)
        tgt_mask = np.zeros((b, t), dtype=bool)
        observed_flags = np.zeros((b, t), dtype=bool)
        guide_xy = np.zeros((b, t, 2), dtype=np.float64)
        traj_ids = np.array([e.traj_id for e in chunk], dtype=np.int64)
        for i, e in enumerate(chunk):
            no, nf = e.num_observed, e.full_length
            obs_cells[i, :no] = e.obs_cells
            feats = self._obs_feat_cache.get(id(e))
            if feats is None:
                denom = max(1.0, float(nf - 1))
                gaps = np.diff(e.obs_tids, prepend=e.obs_tids[0])
                feats = np.stack([e.obs_tids / denom, gaps / denom], axis=1)
                self._obs_feat_cache[id(e)] = feats
            obs_feats[i, :no] = feats
            obs_mask[i, :no] = True
            tgt_segments[i, :nf] = e.tgt_segments
            tgt_ratios[i, :nf] = e.tgt_ratios
            tgt_mask[i, :nf] = True
            observed_flags[i, :nf] = e.observed_flags
            guide_xy[i, :nf] = e.guide_xy
            if nf < t:
                guide_xy[i, nf:] = e.guide_xy[-1]
        return Batch(
            obs_cells=obs_cells, obs_feats=obs_feats, obs_mask=obs_mask,
            tgt_segments=tgt_segments, tgt_ratios=tgt_ratios, tgt_mask=tgt_mask,
            observed_flags=observed_flags, guide_xy=guide_xy, traj_ids=traj_ids,
        )
