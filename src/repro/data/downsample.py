"""Downsampling complete trajectories to low-sampling-rate inputs.

The paper transforms complete (high-sampling-rate) trajectories into
incomplete ones by removing points with a *keep ratio* of 6.25%, 12.5%
or 25% - i.e. strides of 16, 8 and 4 - so that "six points between each
two consecutive points ... are required to be restored averagely"
(Section V-A5).  Both endpoint observations are always kept.
"""

from __future__ import annotations

import numpy as np

from .trajectory import IncompleteTrajectory, MatchedTrajectory

__all__ = ["downsample", "downsample_random", "stride_for_keep_ratio", "KEEP_RATIOS"]

#: The keep ratios evaluated in the paper (Tables IV/VI).
KEEP_RATIOS = (0.0625, 0.125, 0.25)


def stride_for_keep_ratio(keep_ratio: float) -> int:
    """Sampling stride corresponding to a keep ratio (e.g. 12.5% -> 8)."""
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError(f"keep ratio must be in (0, 1], got {keep_ratio}")
    return max(1, int(round(1.0 / keep_ratio)))


def downsample(trajectory: MatchedTrajectory, keep_ratio: float) -> IncompleteTrajectory:
    """Deterministic strided downsampling (the paper's evaluation setting).

    Keeps indices ``0, k, 2k, ...`` and always the final point, where
    ``k = round(1 / keep_ratio)``.
    """
    stride = stride_for_keep_ratio(keep_ratio)
    n = len(trajectory)
    indices = list(range(0, n, stride))
    if indices[-1] != n - 1:
        indices.append(n - 1)
    return IncompleteTrajectory(
        source=trajectory,
        observed_indices=tuple(indices),
        keep_ratio=keep_ratio,
    )


def downsample_random(trajectory: MatchedTrajectory, keep_ratio: float,
                      rng: np.random.Generator) -> IncompleteTrajectory:
    """Random interior downsampling (keeps endpoints; used in robustness tests).

    Each interior point survives independently with probability
    ``keep_ratio``, matching the paper's "randomly remove points"
    wording; at least one interior point is kept when possible so
    sequences never collapse to bare endpoints on long trajectories.
    """
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError(f"keep ratio must be in (0, 1], got {keep_ratio}")
    n = len(trajectory)
    interior = [i for i in range(1, n - 1) if rng.random() < keep_ratio]
    indices = [0, *interior, n - 1]
    return IncompleteTrajectory(
        source=trajectory,
        observed_indices=tuple(indices),
        keep_ratio=keep_ratio,
    )
