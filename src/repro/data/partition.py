"""Partitioning trajectories across federated clients.

The paper's clients are platform centres, each holding its own drivers'
trajectories.  Because drivers have home regions, the per-client data
distributions differ (Non-IID) - the statistical heterogeneity that the
meta-knowledge module targets (Challenge II).

Two schemes are provided:

* ``by_driver`` (default, Non-IID): drivers are clustered spatially by
  home location and contiguous clusters are assigned to clients.
* ``iid``: trajectories are shuffled uniformly; the homogeneous control
  used in heterogeneity ablations.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset
from .trajectory import MatchedTrajectory

__all__ = ["partition_dataset", "partition_trajectories"]


def partition_dataset(dataset: SyntheticDataset, num_clients: int,
                      scheme: str = "by_driver",
                      rng: np.random.Generator | None = None
                      ) -> list[list[MatchedTrajectory]]:
    """Split a synthetic dataset's trajectories into per-client shards."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if scheme == "iid":
        return partition_trajectories(dataset.matched, num_clients, rng)
    if scheme != "by_driver":
        raise ValueError(f"unknown partition scheme {scheme!r}")
    if num_clients < 1:
        raise ValueError("need at least one client")
    if num_clients > len(dataset.drivers):
        raise ValueError(
            f"cannot spread {len(dataset.drivers)} drivers over {num_clients} clients"
        )

    # Order drivers by home location (simple spatial sweep: x then y),
    # so contiguous chunks share a region -> Non-IID clients.
    def home_key(driver):
        p = dataset.network.nodes[driver.home_node]
        return (round(p.x / 500.0), p.y)

    ordered = sorted(dataset.drivers, key=home_key)
    chunks = np.array_split(np.arange(len(ordered)), num_clients)
    shards: list[list[MatchedTrajectory]] = []
    for chunk in chunks:
        driver_ids = {ordered[i].driver_id for i in chunk}
        shard = [t for t in dataset.matched if t.driver_id in driver_ids]
        shards.append(shard)
    _validate_shards(shards)
    return shards


def partition_trajectories(trajectories: list[MatchedTrajectory], num_clients: int,
                           rng: np.random.Generator) -> list[list[MatchedTrajectory]]:
    """Uniform IID split of a trajectory list into ``num_clients`` shards."""
    if num_clients < 1:
        raise ValueError("need at least one client")
    if len(trajectories) < num_clients:
        raise ValueError(
            f"cannot spread {len(trajectories)} trajectories over {num_clients} clients"
        )
    order = rng.permutation(len(trajectories))
    shards = [
        [trajectories[i] for i in part]
        for part in np.array_split(order, num_clients)
    ]
    _validate_shards(shards)
    return shards


def _validate_shards(shards: list[list[MatchedTrajectory]]) -> None:
    empty = [i for i, s in enumerate(shards) if not s]
    if empty:
        raise ValueError(f"clients {empty} received no trajectories; "
                         "use fewer clients or more data")
