"""Trajectory I/O: real-dataset parsers and a CSV interchange format.

The paper evaluates on Geolife and T-Drive.  Those datasets cannot be
bundled here, but a downstream user who has them needs ingestion code,
so this module provides:

* :func:`parse_geolife_plt` - Geolife ``.plt`` files (one per trip:
  six header lines, then ``lat,lng,0,alt,days,date,time`` rows).
* :func:`parse_tdrive_txt` - T-Drive taxi logs (one per taxi:
  ``taxi_id,YYYY-MM-DD HH:MM:SS,lng,lat`` rows).
* :func:`save_trajectories_csv` / :func:`load_trajectories_csv` - a
  simple interchange format for raw trajectories in the local planar
  frame (used by examples and for caching synthetic worlds).

Latitude/longitude inputs are projected into the local planar frame
around a reference point (defaults to central Beijing, both datasets'
home city).
"""

from __future__ import annotations

import csv
import datetime as _dt
import io
import os
from typing import Iterable, TextIO

from ..spatial.geometry import latlng_to_local
from .trajectory import RawPoint, RawTrajectory

__all__ = [
    "BEIJING_REF",
    "parse_geolife_plt",
    "parse_tdrive_txt",
    "save_trajectories_csv",
    "load_trajectories_csv",
]

#: Reference point for the equirectangular projection (central Beijing).
BEIJING_REF = (39.9042, 116.4074)

_GEOLIFE_HEADER_LINES = 6
_EPOCH = _dt.datetime(1970, 1, 1)


def _as_lines(source: str | TextIO) -> Iterable[str]:
    if isinstance(source, str):
        if "\n" not in source and os.path.exists(source):
            with open(source, "r") as handle:
                yield from handle.read().splitlines()
            return
        yield from io.StringIO(source)
    else:
        yield from source


def parse_geolife_plt(source: str | TextIO, traj_id: int = 0,
                      driver_id: int = 0,
                      ref: tuple[float, float] = BEIJING_REF) -> RawTrajectory:
    """Parse one Geolife ``.plt`` trip into a :class:`RawTrajectory`.

    ``source`` may be a path, the file's text, or an open file object.
    Rows with unparseable fields are skipped (Geolife has occasional
    truncated lines).  Raises ``ValueError`` if fewer than two valid
    points remain.
    """
    points: list[RawPoint] = []
    for i, line in enumerate(_as_lines(source)):
        if i < _GEOLIFE_HEADER_LINES:
            continue
        fields = line.strip().split(",")
        if len(fields) < 7:
            continue
        try:
            lat = float(fields[0])
            lng = float(fields[1])
            stamp = _dt.datetime.strptime(f"{fields[5]} {fields[6]}",
                                          "%Y-%m-%d %H:%M:%S")
        except ValueError:
            continue
        local = latlng_to_local(lat, lng, ref[0], ref[1])
        points.append(RawPoint(local.x, local.y, (stamp - _EPOCH).total_seconds()))
    return _build(points, traj_id, driver_id, "Geolife .plt")


def parse_tdrive_txt(source: str | TextIO, traj_id: int = 0,
                     driver_id: int | None = None,
                     ref: tuple[float, float] = BEIJING_REF) -> RawTrajectory:
    """Parse one T-Drive taxi log into a :class:`RawTrajectory`.

    The taxi id in the file becomes ``driver_id`` unless overridden.
    Duplicate timestamps (T-Drive has many) keep the first fix only.
    """
    points: list[RawPoint] = []
    parsed_driver = driver_id
    last_t: float | None = None
    for line in _as_lines(source):
        fields = line.strip().split(",")
        if len(fields) != 4:
            continue
        try:
            taxi = int(fields[0])
            stamp = _dt.datetime.strptime(fields[1], "%Y-%m-%d %H:%M:%S")
            lng = float(fields[2])
            lat = float(fields[3])
        except ValueError:
            continue
        if parsed_driver is None:
            parsed_driver = taxi
        t = (stamp - _EPOCH).total_seconds()
        if last_t is not None and t <= last_t:
            continue
        last_t = t
        local = latlng_to_local(lat, lng, ref[0], ref[1])
        points.append(RawPoint(local.x, local.y, t))
    return _build(points, traj_id, parsed_driver or 0, "T-Drive log")


def save_trajectories_csv(trajectories: list[RawTrajectory], path: str) -> None:
    """Write raw trajectories to a single CSV (columns:
    traj_id, driver_id, x, y, t)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["traj_id", "driver_id", "x", "y", "t"])
        for traj in trajectories:
            for p in traj.points:
                writer.writerow([traj.traj_id, traj.driver_id,
                                 repr(p.x), repr(p.y), repr(p.t)])


def load_trajectories_csv(path: str) -> list[RawTrajectory]:
    """Read trajectories written by :func:`save_trajectories_csv`.

    Points are grouped by ``traj_id``; each group must be a valid
    trajectory (>= 2 points, strictly increasing timestamps).
    """
    groups: dict[int, tuple[int, list[RawPoint]]] = {}
    with open(path, "r", newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"traj_id", "driver_id", "x", "y", "t"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(f"CSV at {path!r} is missing columns "
                             f"{sorted(required)}")
        for row in reader:
            traj_id = int(row["traj_id"])
            driver_id, points = groups.setdefault(
                traj_id, (int(row["driver_id"]), [])
            )
            points.append(RawPoint(float(row["x"]), float(row["y"]),
                                   float(row["t"])))
    return [
        RawTrajectory(traj_id=tid, driver_id=driver, points=tuple(points))
        for tid, (driver, points) in sorted(groups.items())
    ]


def _build(points: list[RawPoint], traj_id: int, driver_id: int,
           kind: str) -> RawTrajectory:
    if len(points) < 2:
        raise ValueError(f"{kind} produced fewer than two valid points")
    return RawTrajectory(traj_id=traj_id, driver_id=driver_id,
                         points=tuple(points))
