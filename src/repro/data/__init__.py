"""``repro.data`` - trajectory types, synthetic datasets, encoding, partitioning."""

from .dataset import Batch, RecoveryExample, TrajectoryDataset, encode_example
from .downsample import KEEP_RATIOS, downsample, downsample_random, stride_for_keep_ratio
from .io import (
    BEIJING_REF,
    load_trajectories_csv,
    parse_geolife_plt,
    parse_tdrive_txt,
    save_trajectories_csv,
)
from .partition import partition_dataset, partition_trajectories
from .synthetic import (
    DriverProfile,
    SyntheticConfig,
    SyntheticDataset,
    generate_dataset,
    geolife_like,
    tdrive_like,
)
from .trajectory import (
    IncompleteTrajectory,
    MatchedPoint,
    MatchedTrajectory,
    RawPoint,
    RawTrajectory,
)

__all__ = [
    "RawPoint", "RawTrajectory", "MatchedPoint", "MatchedTrajectory",
    "IncompleteTrajectory",
    "downsample", "downsample_random", "stride_for_keep_ratio", "KEEP_RATIOS",
    "RecoveryExample", "Batch", "TrajectoryDataset", "encode_example",
    "DriverProfile", "SyntheticConfig", "SyntheticDataset", "generate_dataset",
    "geolife_like", "tdrive_like",
    "partition_dataset", "partition_trajectories",
    "BEIJING_REF", "parse_geolife_plt", "parse_tdrive_txt",
    "save_trajectories_csv", "load_trajectories_csv",
]
