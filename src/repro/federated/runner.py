"""Pluggable round execution backends for :class:`FederatedTrainer`.

The paper's Algorithm 3 is embarrassingly parallel across the clients
selected in a round: each client downloads the same flat global vector,
trains locally on private data, and uploads a flat vector.  This module
factors the *execution* of one round out of the trainer into a
:class:`RoundRunner` with two backends:

:class:`SerialRunner`
    Runs the selected clients in-process against the trainer's live
    :class:`~repro.federated.client.FederatedClient` objects — exactly
    the original sequential behaviour, and the default.

:class:`ProcessPoolRunner`
    Ships each selected client a picklable :class:`RoundTask` — the
    flat global ``(P,)`` vector, the client id, the epoch count, the
    frozen teacher's flat state, and the client's
    :class:`~repro.federated.client.ClientSessionState` (RNG +
    optimiser moments) — to a persistent pool of worker processes.
    Each worker rebuilds the model, constraint-mask builder, and client
    datasets **once** (from the :class:`WorkerSetup` passed to the pool
    initializer) and reuses them across every round.

Determinism guarantee
---------------------
With fixed seeds, serial and process-pool runs produce **bit-identical**
round histories and final global parameters:

* every task carries the client's full mutable state (RNG bit-generator
  state, flat Adam/SGD moments), so results do not depend on which
  worker executes which client, or on pool scheduling;
* tasks also re-assert the process-global switches inside the worker —
  the kernel-fusion flag, the sparse-constraint-mask flag, the
  packed-decode flag (the accuracy gates of Algorithm 2 run inference
  through :mod:`repro.serving`), the exchange dtype, the compute
  dtype (worker-side models are cast in place if the parent flipped it
  after pool start-up), and the array-backend selection
  (:func:`repro.nn.set_backend`) — so both sides run the same kernels
  over the same mask representation at the same precision;
* the trainer submits tasks in ascending client-id order and the
  runners return results in task order, so aggregation order never
  depends on completion order;
* injected faults (:mod:`repro.federated.faults`) are a pure function
  of ``(round, client, attempt)``, so the failure/retry/survivor
  schedule — and therefore the aggregated history — is identical under
  both backends too.

RoundTask shipping contract
---------------------------
A :class:`RoundTask` must stay cheap to pickle and self-sufficient: the
flat ``(P,)`` global vector, the client id, the round index, the local
epoch count, the frozen teacher's flat state (or ``None``), the
client's session snapshot (or ``None`` for in-process execution), and
the six global switches above.  Heavy, rebuildable objects never ride
on tasks — the datasets, road network, constraint-mask builder, and
fault plan travel once in the :class:`WorkerSetup` (the builder pickles
*cache-free*: its sparse row pool and dense row mirrors are dropped by
``__getstate__`` and re-warmed in the worker via
:meth:`ConstraintMaskBuilder.warm`, which fills sparse rows only).

Failure handling
----------------
Per-client failures (an injected fault, a task exception, a blown
per-task deadline) are **per-task outcomes**, not round aborts:
:meth:`RoundRunner.run_round_tolerant` retries the same
:class:`RoundTask` up to :attr:`RetryPolicy.retries` times — the
session snapshot inside the task makes re-execution exact — and then
records a :class:`ClientFailure` instead of raising.  Only a
*whole-pool* failure (dead workers after one in-round pool rebuild)
raises :class:`RoundExecutionError`; the trainer then re-executes just
that round with a :class:`SerialRunner` and keeps the pool for the
next round — permanent serial demotion is the last resort after
consecutive whole-pool failures.  The strict :meth:`RoundRunner.run_round`
API (fail the round on any error) is kept for callers that want the
original fail-closed behaviour.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..core.base import RecoveryModel
from ..core.distill import MetaKnowledgeDistiller
from ..core.mask import ConstraintMaskBuilder
from ..core.training import TrainingConfig
from ..nn.flatten import FlatParameterSpace
from .arena import ModelArena
from .client import ClientData, ClientSessionState, FederatedClient
from .communication import (
    EncodedPayload,
    codec_by_name,
    decode_payload,
    encode_with_feedback,
    payload_num_bytes,
)
from .faults import ClientFaultError, FaultEvent, FaultPlan

__all__ = [
    "RoundTask", "RoundResult", "RoundExecutionError", "WorkerSetup",
    "RetryPolicy", "ClientFailure", "RoundExecution", "TaskExecutor",
    "RoundRunner", "SerialRunner", "ArenaRunner", "ProcessPoolRunner",
    "preferred_start_method",
]


class RoundExecutionError(RuntimeError):
    """A parallel round could not be executed at all (whole-pool
    failure that survived an in-round rebuild, or pickling failure).
    The trainer re-runs the round serially."""


def preferred_start_method() -> str | None:
    """The multiprocessing start method the pool runner uses by default.

    ``fork`` when the platform offers it: workers inherit the parent's
    world (datasets, road network, model factory closures) without any
    pickling, so pool start-up is milliseconds.  Otherwise the platform
    default, which requires every :class:`WorkerSetup` field to pickle.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else None


# ----------------------------------------------------------------------
# wire types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSetup:
    """Everything a worker rebuilds once and reuses across rounds.

    ``teacher_flat`` is the frozen teacher's flat float64 snapshot,
    shipped **once** with the setup instead of riding on every task:
    tasks built after the teacher is trained set
    :attr:`RoundTask.use_setup_teacher` and carry ``teacher_flat=None``,
    so a thousand-task round pickles the ``(P,)`` teacher exactly once
    per worker instead of once per task.
    """

    model_factory: Callable[[], RecoveryModel]
    client_data: tuple[ClientData, ...]
    mask_builder: ConstraintMaskBuilder
    training: TrainingConfig
    lambda0: float = 5.0
    lt: float = 0.4
    dynamic_lambda: bool = True
    fault_plan: FaultPlan | None = None
    teacher_flat: np.ndarray | None = None  # shared distillation substrate


@dataclass(frozen=True)
class RoundTask:
    """One selected client's work for one communication round.

    ``global_flat`` is the broadcast wire payload: a flat vector under
    the identity codec, an :class:`~repro.federated.communication.EncodedPayload`
    otherwise — executors decode it before loading.  ``exchange_codec``
    names the codec the client encodes its upload with (the error-
    feedback residual lives in the session state, so retries and pool
    workers encode bit-identically).  ``defer_stragglers`` switches an
    injected straggler fault from a real ``time.sleep`` to a virtual
    delay surfaced on :attr:`RoundResult.straggler_delay` — the async
    trainer feeds it into the simulated arrival clock instead of
    stalling a worker.
    """

    client_id: int
    global_flat: "np.ndarray | EncodedPayload"
    epochs: int
    teacher_flat: np.ndarray | None  # float64; None = no distillation
    session: ClientSessionState | None  # None = run on live client state
    fused_kernels: bool = True
    sparse_masks: bool = True
    packed_decode: bool = True
    exchange_dtype: str = "float64"
    compute_dtype: str = "float64"
    backend: str = "reference"
    round_index: int = 0  # fault-plan coordinate
    exchange_codec: str = "identity"  # uplink/downlink wire codec name
    defer_stragglers: bool = False  # async mode: no real sleeps
    use_setup_teacher: bool = False  # distill from WorkerSetup.teacher_flat
    # (shipped once with the setup) instead of a per-task teacher copy


@dataclass(frozen=True)
class RoundResult:
    """What one client's local round produced."""

    client_id: int
    upload_flat: np.ndarray  # decoded upload (privatisation happens server-side)
    metrics: dict
    session: ClientSessionState | None  # None when the live client ran in-process
    params_flat: np.ndarray | None = None  # exact float64 params when the
    # exchange dtype is reduced or the codec is lossy (sync-back must not
    # round the live client) or when the upload was fault-corrupted
    # (sync-back must not adopt the corruption — only the wire payload
    # is poisoned)
    payload_bytes: int | None = None  # measured wire size of the encoded
    # upload (None for hand-built results: the trainer falls back to
    # metering upload_flat directly)
    straggler_delay: float = 0.0  # deferred straggler seconds (async mode)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task failure handling knobs of one tolerant round."""

    retries: int = 1  # re-attempts after the first failure
    deadline: float | None = None  # per-task wall-clock seconds
    backoff: float = 0.0  # sleep ``backoff * attempt`` before a retry

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")


@dataclass(frozen=True)
class ClientFailure:
    """One client's final failure for one round (after retries)."""

    client_id: int
    kind: str  # "crash" | "dropout" | "timeout" | "corrupt" | "error" | "rejected"
    attempts: int
    message: str = ""


@dataclass
class RoundExecution:
    """Everything a tolerant round produced."""

    results: list[RoundResult]  # survivors, in task (= client-id) order
    failures: list[ClientFailure] = field(default_factory=list)
    retry_counts: dict[int, int] = field(default_factory=dict)  # extra attempts
    pool_rebuilds: int = 0


# ----------------------------------------------------------------------
# fault-injection hooks shared by both backends
# ----------------------------------------------------------------------
def _inject_pre_train(plan: FaultPlan | None, task: RoundTask, attempt: int,
                      deadline: float | None) -> FaultEvent | None:
    """Consult the plan before local training.

    Raises :class:`ClientFaultError` for no-shows and deadline-busting
    stragglers; sleeps surviving stragglers (or defers them to the
    virtual clock when the task asks); returns the event for faults
    handled after training (crash / corrupt / deferred straggler)."""
    if plan is None:
        return None
    fault = plan.draw(task.round_index, task.client_id, attempt)
    if fault is None:
        return None
    if fault.kind == "dropout":
        raise ClientFaultError("dropout", task.client_id, "injected no-show")
    if fault.kind == "straggler":
        if task.defer_stragglers:
            # Async mode: the delay becomes virtual arrival time, so a
            # straggler never stalls a worker (and never times out —
            # the buffered aggregator simply applies it late).
            return fault
        if deadline is not None and fault.delay >= deadline:
            raise ClientFaultError(
                "timeout", task.client_id,
                f"injected straggler delay {fault.delay:g}s >= deadline "
                f"{deadline:g}s")
        time.sleep(fault.delay)
        return None
    return fault  # crash / corrupt: handled post-training


def _inject_post_train(plan: FaultPlan, task: RoundTask, attempt: int,
                       fault: FaultEvent, flat: np.ndarray
                       ) -> tuple[np.ndarray, bool]:
    """Apply a post-training fault: raise for a crash, corrupt the
    upload copy otherwise.  Returns ``(upload, corrupted)``."""
    if fault.kind == "crash":
        raise ClientFaultError("crash", task.client_id,
                               "injected crash before upload")
    if fault.kind == "corrupt":
        corrupted = plan.corrupt_upload(flat, task.round_index, task.client_id,
                                        attempt, fault.corrupt_mode)
        return corrupted, True
    return flat, False


def _apply_post_fault(plan: FaultPlan | None, task: RoundTask, attempt: int,
                      fault: FaultEvent | None, upload: np.ndarray
                      ) -> tuple[np.ndarray, bool, float]:
    """Resolve a pending fault event against the finished upload.

    Returns ``(upload, corrupted, straggler_delay)``.  Corruption is
    applied to the *decoded* wire vector — after the codec — because
    that is what the server validates; quantising a NaN-poisoned vector
    would be undefined.  A deferred straggler surfaces as a virtual
    delay for the async arrival clock."""
    if fault is None:
        return upload, False, 0.0
    if fault.kind == "straggler":
        return upload, False, fault.delay
    upload, corrupted = _inject_post_train(plan, task, attempt, fault, upload)
    return upload, corrupted, 0.0


def _encode_upload(task: RoundTask, client: FederatedClient,
                   flat: np.ndarray) -> tuple[np.ndarray, int, np.ndarray | None]:
    """Encode one trained upload for the wire.

    Returns ``(upload, payload_bytes, exact_params)``: the decoded
    float64 vector the server will aggregate, the measured wire size of
    the encoded payload, and the client's exact float64 parameters when
    sync-back must not adopt the lossy wire vector (None when the wire
    carries the parameters exactly, i.e. the identity codec).

    Under a non-identity codec the exchange-dtype ladder is bypassed:
    the codec quantises the *exact* float64 parameters (plus the
    carried error-feedback residual) and fully determines the wire
    bytes.  The residual update is a pure function of the parameters
    and the previous residual, so serial and pool execution — and
    retries, which restore the session snapshot first — encode
    bit-identically."""
    codec = codec_by_name(task.exchange_codec)
    if codec.is_identity:
        return flat, payload_num_bytes(flat), None
    exact = client.flat_parameters(dtype=np.float64)
    payload, decoded, residual = encode_with_feedback(
        codec, exact, client.codec_residual)
    if codec.error_feedback:
        client.codec_residual = residual
    return decoded, payload_num_bytes(payload), exact


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class RoundRunner:
    """Executes the selected clients of one round.

    ``ships_state`` tells the trainer whether tasks must carry session
    snapshots (and results must be synced back into the live clients);
    ``fallible`` marks backends whose whole-round failures should
    trigger the serial fallback instead of propagating.
    """

    ships_state = False
    fallible = False

    def run_round(self, tasks: Sequence[RoundTask],
                  distiller: MetaKnowledgeDistiller | None = None
                  ) -> list[RoundResult]:
        """Strict execution: any failure fails the whole round."""
        raise NotImplementedError

    def run_round_tolerant(self, tasks: Sequence[RoundTask],
                           distiller: MetaKnowledgeDistiller | None = None,
                           policy: RetryPolicy | None = None
                           ) -> RoundExecution:
        """Per-client execution: failures become :class:`ClientFailure`
        entries instead of aborting the round.  The base implementation
        wraps the strict path (all-or-nothing) for custom runners that
        only override :meth:`run_round`."""
        return RoundExecution(results=self.run_round(tasks, distiller))

    def close(self) -> None:
        """Release backend resources (idempotent)."""


class SerialRunner(RoundRunner):
    """In-process execution against the trainer's live clients."""

    def __init__(self, clients: Sequence[FederatedClient],
                 fault_plan: FaultPlan | None = None):
        self.clients = clients
        self.fault_plan = fault_plan

    def run_round(self, tasks: Sequence[RoundTask],
                  distiller: MetaKnowledgeDistiller | None = None
                  ) -> list[RoundResult]:
        results = []
        for task in tasks:
            client = self.clients[task.client_id]
            if task.session is not None:
                # Fallback path: restore the pre-round snapshot so a
                # round that failed mid-flight on a pool re-runs from
                # the exact same state.
                client.load_session_state(task.session)
            client.receive_global_flat(decode_payload(task.global_flat))
            flat, metrics = client.local_train_flat(task.epochs, distiller)
            upload, nbytes, _ = _encode_upload(task, client, flat)
            results.append(RoundResult(task.client_id, upload, metrics, None,
                                       payload_bytes=nbytes))
        return results

    def _attempt(self, client: FederatedClient, task: RoundTask, attempt: int,
                 distiller: MetaKnowledgeDistiller | None,
                 deadline: float | None) -> RoundResult:
        fault = _inject_pre_train(self.fault_plan, task, attempt, deadline)
        if task.session is not None:
            client.load_session_state(task.session)
        client.receive_global_flat(decode_payload(task.global_flat))
        flat, metrics = client.local_train_flat(task.epochs, distiller)
        upload, nbytes, _ = _encode_upload(task, client, flat)
        upload, _, delay = _apply_post_fault(self.fault_plan, task, attempt,
                                             fault, upload)
        return RoundResult(task.client_id, upload, metrics, None,
                           payload_bytes=nbytes, straggler_delay=delay)

    def run_round_tolerant(self, tasks: Sequence[RoundTask],
                           distiller: MetaKnowledgeDistiller | None = None,
                           policy: RetryPolicy | None = None
                           ) -> RoundExecution:
        policy = policy if policy is not None else RetryPolicy()
        execution = RoundExecution(results=[])
        for task in tasks:
            client = self.clients[task.client_id]
            # Snapshot the exact pre-round parameters: a finally-failed
            # client must end the round in its pre-round state, exactly
            # like a pool run whose failed client never syncs back.
            saved_params = (client.flat_parameters(dtype=np.float64)
                            if task.session is not None else None)
            attempt = 0
            while True:
                try:
                    result = self._attempt(client, task, attempt, distiller,
                                           policy.deadline)
                    execution.results.append(result)
                    break
                except ClientFaultError as exc:
                    # Only injected/typed client faults are tolerated in
                    # serial execution — real exceptions propagate (an
                    # in-process bug is a bug, not a degraded client).
                    if attempt < policy.retries and task.session is not None:
                        attempt += 1
                        if policy.backoff:
                            time.sleep(policy.backoff * attempt)
                        continue
                    if task.session is not None:
                        client.load_session_state(task.session)
                        client.receive_global_flat(saved_params)
                    execution.failures.append(ClientFailure(
                        task.client_id, exc.kind, attempt + 1, exc.message))
                    break
            if attempt:
                execution.retry_counts[task.client_id] = attempt
        return execution


# --- worker-process side of the pool backend ---------------------------
# One module-global per worker process, installed by the pool
# initializer: the world is rebuilt once and reused for every task.
_WORKER: "TaskExecutor | None" = None


def _init_worker(setup: WorkerSetup) -> None:
    global _WORKER
    _WORKER = TaskExecutor(setup)


def _execute_task(task: RoundTask, attempt: int = 0,
                  deadline: float | None = None) -> RoundResult:
    assert _WORKER is not None, "worker pool used before initialization"
    return _WORKER.execute(task, attempt, deadline)


class TaskExecutor:
    """Executes :class:`RoundTask`\\ s against a bounded model arena.

    This is the per-worker-process world of the pool backend *and* the
    in-process engine of :class:`ArenaRunner`: one
    :class:`~repro.federated.arena.ModelArena` slot (plus one teacher)
    serves every client the executor ever sees.  A checkout rebinds the
    slot to the task's client id/data; the session restore + broadcast
    then fully hydrate it, so the slot's previous occupant can never
    leak state into the next task.  Compared to the historical
    per-client client cache this caps worker memory at
    ``O(arena_size * P)`` instead of ``O(clients_seen * P)`` — the
    difference between tens and thousands of trainable clients.
    """

    def __init__(self, setup: WorkerSetup, arena: ModelArena | None = None):
        self.setup = setup
        self.mask_builder = setup.mask_builder
        self.arena = (arena if arena is not None
                      else ModelArena(setup.model_factory, setup.mask_builder,
                                      setup.training, size=1))
        self.teacher: RecoveryModel | None = None
        self.teacher_space: FlatParameterSpace | None = None

    def _resolve_teacher_flat(self, task: RoundTask) -> np.ndarray | None:
        if task.teacher_flat is not None:
            return task.teacher_flat
        if task.use_setup_teacher:
            if self.setup.teacher_flat is None:
                raise RuntimeError(
                    "task asks for the setup teacher but WorkerSetup "
                    "carries none (teacher_flat=None)")
            return self.setup.teacher_flat
        return None

    def _distiller(self, teacher_flat: np.ndarray | None
                   ) -> MetaKnowledgeDistiller | None:
        if teacher_flat is None:
            return None
        if self.teacher is None:
            self.teacher = self.setup.model_factory()
            self.teacher_space = FlatParameterSpace.from_module(self.teacher)
        self.teacher_space.set_flat(teacher_flat)
        return MetaKnowledgeDistiller(
            self.teacher, self.mask_builder, lambda0=self.setup.lambda0,
            lt=self.setup.lt, dynamic=self.setup.dynamic_lambda,
        )

    def _ensure_model_dtype(self) -> None:
        """Align the executor's long-lived models with the active
        compute dtype.

        Arena slots (and the teacher) are built once and reused; if the
        parent flips the compute dtype between rounds, later tasks would
        run a stale-precision model (float32 inputs against float64
        weights silently upcast every kernel).  Casting parameters in
        place keeps every existing FlatParameterSpace view valid.
        """
        dtype = nn.get_compute_dtype()
        for model in (*self.arena.models(), self.teacher):
            if model is None:
                continue
            for p in model.parameters():
                if p.data.dtype != dtype:
                    p.data = p.data.astype(dtype)

    def execute(self, task: RoundTask, attempt: int = 0,
                deadline: float | None = None) -> RoundResult:
        # Mirror the parent's process-global switches so both backends
        # run identical kernels over the same mask representation at
        # identical compute and wire precision.  The previous values are
        # restored afterwards: every task re-asserts its own flags, so
        # worker processes lose nothing, and in-process execution (tests,
        # debugging) cannot leak a task's flags into the caller.
        previous = (
            nn.set_fused_kernels(task.fused_kernels),
            nn.set_sparse_masks(task.sparse_masks),
            nn.set_packed_decode(task.packed_decode),
            nn.set_default_dtype(task.exchange_dtype),
            nn.set_compute_dtype(task.compute_dtype),
            nn.set_backend(task.backend),
        )
        try:
            plan = self.setup.fault_plan
            fault = _inject_pre_train(plan, task, attempt, deadline)
            self._ensure_model_dtype()
            client = self.arena.checkout(task.client_id,
                                         self.setup.client_data[task.client_id])
            try:
                # Hydrate fully: session (or the pristine template for
                # session-less in-process execution — deterministic zero
                # state, matching a freshly built client) + broadcast.
                session = (task.session if task.session is not None
                           else self.arena.pristine_session)
                client.load_session_state(session)
                client.receive_global_flat(decode_payload(task.global_flat))
                distiller = self._distiller(self._resolve_teacher_flat(task))
                flat, metrics = client.local_train_flat(task.epochs, distiller)
                upload, nbytes, params_flat = _encode_upload(task, client, flat)
                if (params_flat is None
                        and np.dtype(task.exchange_dtype) != np.float64):
                    params_flat = client.flat_parameters(dtype=np.float64)
                upload, corrupted, delay = _apply_post_fault(
                    plan, task, attempt, fault, upload)
                if corrupted and params_flat is None:
                    # Only the wire payload is poisoned: ship the exact
                    # parameters so sync-back matches a serial client,
                    # whose local model never saw the corruption.
                    params_flat = client.flat_parameters(dtype=np.float64)
                return RoundResult(task.client_id, upload, metrics,
                                   client.session_state(), params_flat,
                                   payload_bytes=nbytes, straggler_delay=delay)
            finally:
                self.arena.checkin(client)
        finally:
            nn.set_fused_kernels(previous[0])
            nn.set_sparse_masks(previous[1])
            nn.set_packed_decode(previous[2])
            nn.set_default_dtype(previous[3])
            nn.set_compute_dtype(previous[4])
            nn.set_backend(previous[5])


#: Backwards-compatible alias (tests patch ``runner._WorkerState``).
_WorkerState = TaskExecutor


class ArenaRunner(RoundRunner):
    """In-process round execution through a bounded model arena.

    The lazy-clients dual of :class:`SerialRunner`: instead of running
    against ``N`` live client objects it drives one
    :class:`TaskExecutor` (sharing the trainer's arena), so tasks are
    executed exactly like a pool worker would — session hydration,
    flag re-assertion, fault injection — but in-process and with at
    most ``arena_size`` live models.  ``ships_state`` is True: every
    task carries its shard's session and every result returns the
    trained snapshot for the trainer to store back into the shard.
    """

    ships_state = True
    fallible = False

    def __init__(self, setup: WorkerSetup, arena: ModelArena | None = None):
        self.executor = TaskExecutor(setup, arena)

    def run_round(self, tasks: Sequence[RoundTask],
                  distiller: MetaKnowledgeDistiller | None = None
                  ) -> list[RoundResult]:
        # ``distiller`` is unused: the executor rebuilds one from the
        # teacher snapshot, exactly like a pool worker.
        return [self.executor.execute(task) for task in tasks]

    def run_round_tolerant(self, tasks: Sequence[RoundTask],
                           distiller: MetaKnowledgeDistiller | None = None,
                           policy: RetryPolicy | None = None
                           ) -> RoundExecution:
        policy = policy if policy is not None else RetryPolicy()
        execution = RoundExecution(results=[])
        for task in tasks:
            attempt = 0
            while True:
                try:
                    execution.results.append(
                        self.executor.execute(task, attempt, policy.deadline))
                    break
                except ClientFaultError as exc:
                    # Retries are exact: the task's session snapshot is
                    # reloaded on re-execution, and a finally-failed
                    # client needs no restore at all — its shard was
                    # never touched.
                    if attempt < policy.retries and task.session is not None:
                        attempt += 1
                        if policy.backoff:
                            time.sleep(policy.backoff * attempt)
                        continue
                    execution.failures.append(ClientFailure(
                        task.client_id, exc.kind, attempt + 1, exc.message))
                    break
            if attempt:
                execution.retry_counts[task.client_id] = attempt
        return execution


class ProcessPoolRunner(RoundRunner):
    """Persistent process-pool execution of round tasks.

    Parameters
    ----------
    setup:
        The immutable per-worker world.  Under the ``fork`` start
        method it is inherited; under ``spawn``/``forkserver`` it must
        pickle (a module-level ``model_factory``, not a closure).
    workers:
        Number of worker processes (>= 1).
    start_method:
        Multiprocessing start method override; default
        :func:`preferred_start_method`.
    task_timeout:
        Optional per-task wall-clock limit in seconds for the strict
        :meth:`run_round` path; an overrun raises
        :class:`RoundExecutionError`.  The tolerant path takes its
        deadline from the :class:`RetryPolicy` instead.
    """

    ships_state = True
    fallible = True

    def __init__(self, setup: WorkerSetup, workers: int,
                 start_method: str | None = None,
                 task_timeout: float | None = None):
        if workers < 1:
            raise ValueError("ProcessPoolRunner needs at least one worker")
        self.setup = setup
        self.workers = workers
        self.start_method = (start_method if start_method is not None
                             else preferred_start_method())
        self.task_timeout = task_timeout
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = mp.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=_init_worker, initargs=(self.setup,),
            )
        return self._pool

    def run_round(self, tasks: Sequence[RoundTask],
                  distiller: MetaKnowledgeDistiller | None = None
                  ) -> list[RoundResult]:
        # ``distiller`` is unused: workers rebuild one from the task's
        # teacher_flat so the live teacher never crosses the wire.
        try:
            pool = self._ensure_pool()
            submitted = time.monotonic()
            futures = [pool.submit(_execute_task, task) for task in tasks]
            # Collect in submission (= client-id) order: aggregation
            # never depends on completion order.  Each future's budget
            # is measured from round start, not from the previous
            # future's completion — earlier waits must not silently
            # extend a later task's allowance.
            results = []
            for future in futures:
                remaining = None
                if self.task_timeout is not None:
                    remaining = max(
                        0.0, submitted + self.task_timeout - time.monotonic())
                results.append(future.result(timeout=remaining))
            return results
        except Exception as exc:
            self._abort()
            raise RoundExecutionError(
                f"process-pool round execution failed: {exc!r}") from exc

    # ------------------------------------------------------------------
    # tolerant execution: per-task outcomes, retries, pool rebuild
    # ------------------------------------------------------------------
    def run_round_tolerant(self, tasks: Sequence[RoundTask],
                           distiller: MetaKnowledgeDistiller | None = None,
                           policy: RetryPolicy | None = None
                           ) -> RoundExecution:
        policy = policy if policy is not None else RetryPolicy()
        if policy.deadline is None and self.task_timeout is not None:
            # A runner-level task_timeout keeps bounding tasks on the
            # tolerant path too.
            policy = RetryPolicy(policy.retries, self.task_timeout,
                                 policy.backoff)
        execution = RoundExecution(results=[])
        task_by_client = {task.client_id: task for task in tasks}
        attempts = {task.client_id: 0 for task in tasks}
        results_by_client: dict[int, RoundResult] = {}
        pending: dict = {}  # future -> (client_id, deadline timestamp)
        abandoned: list = []  # timed-out futures that may still be running
        rebuilt = False

        def submit(client_id: int) -> None:
            pool = self._ensure_pool()
            future = pool.submit(_execute_task, task_by_client[client_id],
                                 attempts[client_id], policy.deadline)
            expiry = (time.monotonic() + policy.deadline
                      if policy.deadline is not None else None)
            pending[future] = (client_id, expiry)

        def fail_or_retry(client_id: int, kind: str, message: str) -> None:
            if attempts[client_id] < policy.retries:
                attempts[client_id] += 1
                execution.retry_counts[client_id] = attempts[client_id]
                if policy.backoff:
                    time.sleep(policy.backoff * attempts[client_id])
                submit(client_id)
            else:
                execution.failures.append(ClientFailure(
                    client_id, kind, attempts[client_id] + 1, message))

        def rebuild_pool(outstanding: list[int], cause: Exception) -> None:
            nonlocal rebuilt
            pending.clear()
            self._abort()
            execution.pool_rebuilds += 1
            if rebuilt:
                raise RoundExecutionError(
                    f"process pool died again after an in-round rebuild: "
                    f"{cause!r}") from cause
            rebuilt = True
            for client_id in outstanding:
                submit(client_id)

        try:
            for task in tasks:
                try:
                    submit(task.client_id)
                except BrokenExecutor as exc:
                    # Futures already pending on the broken pool will
                    # never complete: resubmit every unfinished task.
                    remaining = [t.client_id for t in tasks
                                 if t.client_id not in results_by_client]
                    rebuild_pool(remaining, exc)
                    break  # rebuild_pool resubmitted everything outstanding

            while pending:
                now = time.monotonic()
                expiries = [expiry for _, expiry in pending.values()
                            if expiry is not None]
                timeout = (max(0.0, min(expiries) - now) if expiries else None)
                done, _ = wait(set(pending), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    client_id, _ = pending.pop(future)
                    exc = future.exception()
                    if exc is None:
                        results_by_client[client_id] = future.result()
                    elif isinstance(exc, ClientFaultError):
                        fail_or_retry(client_id, exc.kind, exc.message)
                    elif isinstance(exc, BrokenExecutor):
                        # A dead worker kills every in-flight future:
                        # rebuild the pool once and re-ship everything
                        # outstanding (session snapshots make the
                        # re-execution exact).  Worker death is not the
                        # tasks' fault, so attempt counts are unchanged.
                        outstanding = [client_id]
                        outstanding += [cid for cid, _ in pending.values()]
                        rebuild_pool(sorted(set(outstanding)), exc)
                        break  # pending was rebuilt; restart the wait
                    else:
                        fail_or_retry(client_id, "error", repr(exc))
                else:
                    # No pool rebuild happened: expire overdue futures.
                    now = time.monotonic()
                    overdue = [future for future, (_, expiry) in pending.items()
                               if expiry is not None and expiry <= now]
                    for future in overdue:
                        client_id, _ = pending.pop(future)
                        if not future.cancel():
                            # Already running: the worker stays busy with
                            # it; remember to recycle the pool afterwards.
                            abandoned.append(future)
                        fail_or_retry(
                            client_id, "timeout",
                            f"task exceeded the {policy.deadline:g}s deadline")
        except BrokenExecutor as exc:
            self._abort()
            raise RoundExecutionError(
                f"process-pool round execution failed: {exc!r}") from exc

        if any(not future.done() for future in abandoned):
            # Hung tasks still occupy workers: recycle the pool so the
            # next round starts with a clean set of processes.
            self._abort()
            execution.pool_rebuilds += 1

        execution.results = [results_by_client[task.client_id]
                             for task in tasks
                             if task.client_id in results_by_client]
        execution.failures.sort(key=lambda failure: failure.client_id)
        return execution

    def _abort(self) -> None:
        """Tear the pool down without waiting (a worker is dead or hung)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            # Workers are idle between rounds: a waiting shutdown is
            # immediate and leaves no half-closed executor pipes behind
            # (which would print "Exception ignored" noise at exit).
            pool.shutdown(wait=True, cancel_futures=True)
