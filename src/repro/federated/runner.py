"""Pluggable round execution backends for :class:`FederatedTrainer`.

The paper's Algorithm 3 is embarrassingly parallel across the clients
selected in a round: each client downloads the same flat global vector,
trains locally on private data, and uploads a flat vector.  This module
factors the *execution* of one round out of the trainer into a
:class:`RoundRunner` with two backends:

:class:`SerialRunner`
    Runs the selected clients in-process against the trainer's live
    :class:`~repro.federated.client.FederatedClient` objects — exactly
    the original sequential behaviour, and the default.

:class:`ProcessPoolRunner`
    Ships each selected client a picklable :class:`RoundTask` — the
    flat global ``(P,)`` vector, the client id, the epoch count, the
    frozen teacher's flat state, and the client's
    :class:`~repro.federated.client.ClientSessionState` (RNG +
    optimiser moments) — to a persistent pool of worker processes.
    Each worker rebuilds the model, constraint-mask builder, and client
    datasets **once** (from the :class:`WorkerSetup` passed to the pool
    initializer) and reuses them across every round.

Determinism guarantee
---------------------
With fixed seeds, serial and process-pool runs produce **bit-identical**
round histories and final global parameters:

* every task carries the client's full mutable state (RNG bit-generator
  state, flat Adam/SGD moments), so results do not depend on which
  worker executes which client, or on pool scheduling;
* tasks also re-assert the process-global switches inside the worker —
  the kernel-fusion flag, the sparse-constraint-mask flag, the
  packed-decode flag (the accuracy gates of Algorithm 2 run inference
  through :mod:`repro.serving`), the exchange dtype, the compute
  dtype (worker-side models are cast in place if the parent flipped it
  after pool start-up), and the array-backend selection
  (:func:`repro.nn.set_backend`) — so both sides run the same kernels
  over the same mask representation at the same precision;
* the trainer submits tasks in ascending client-id order and the
  runners return results in task order, so aggregation order never
  depends on completion order.

RoundTask shipping contract
---------------------------
A :class:`RoundTask` must stay cheap to pickle and self-sufficient: the
flat ``(P,)`` global vector, the client id, the local epoch count, the
frozen teacher's flat state (or ``None``), the client's session
snapshot (or ``None`` for in-process execution), and the six global
switches above.  Heavy, rebuildable objects never ride on tasks — the
datasets, road network, and constraint-mask builder travel once in the
:class:`WorkerSetup` (the builder pickles *cache-free*: its sparse row
pool and dense row mirrors are dropped by ``__getstate__`` and
re-warmed in the worker via :meth:`ConstraintMaskBuilder.warm`, which
fills sparse rows only).

Failure handling: a dead worker, unpicklable payload, or task timeout
raises :class:`RoundExecutionError`; the trainer catches it, warns, and
re-executes the round with a :class:`SerialRunner` — the session
snapshots inside the tasks restore the exact pre-round state, so the
run continues deterministically.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..core.base import RecoveryModel
from ..core.distill import MetaKnowledgeDistiller
from ..core.mask import ConstraintMaskBuilder
from ..core.training import TrainingConfig
from ..nn.flatten import FlatParameterSpace
from .client import ClientData, ClientSessionState, FederatedClient

__all__ = [
    "RoundTask", "RoundResult", "RoundExecutionError", "WorkerSetup",
    "RoundRunner", "SerialRunner", "ProcessPoolRunner", "preferred_start_method",
]


class RoundExecutionError(RuntimeError):
    """A parallel round could not be executed (worker crash, pickling
    failure, or timeout).  The trainer falls back to serial execution."""


def preferred_start_method() -> str | None:
    """The multiprocessing start method the pool runner uses by default.

    ``fork`` when the platform offers it: workers inherit the parent's
    world (datasets, road network, model factory closures) without any
    pickling, so pool start-up is milliseconds.  Otherwise the platform
    default, which requires every :class:`WorkerSetup` field to pickle.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else None


# ----------------------------------------------------------------------
# wire types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSetup:
    """Everything a worker rebuilds once and reuses across rounds."""

    model_factory: Callable[[], RecoveryModel]
    client_data: tuple[ClientData, ...]
    mask_builder: ConstraintMaskBuilder
    training: TrainingConfig
    lambda0: float = 5.0
    lt: float = 0.4
    dynamic_lambda: bool = True


@dataclass(frozen=True)
class RoundTask:
    """One selected client's work for one communication round."""

    client_id: int
    global_flat: np.ndarray
    epochs: int
    teacher_flat: np.ndarray | None  # float64; None = no distillation
    session: ClientSessionState | None  # None = run on live client state
    fused_kernels: bool = True
    sparse_masks: bool = True
    packed_decode: bool = True
    exchange_dtype: str = "float64"
    compute_dtype: str = "float64"
    backend: str = "reference"


@dataclass(frozen=True)
class RoundResult:
    """What one client's local round produced."""

    client_id: int
    upload_flat: np.ndarray  # raw upload (privatisation happens server-side)
    metrics: dict
    session: ClientSessionState | None  # None when the live client ran in-process
    params_flat: np.ndarray | None = None  # exact float64 params when the
    # exchange dtype is reduced (sync-back must not round the live client)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class RoundRunner:
    """Executes the selected clients of one round.

    ``ships_state`` tells the trainer whether tasks must carry session
    snapshots (and results must be synced back into the live clients);
    ``fallible`` marks backends whose failures should trigger the
    serial fallback instead of propagating.
    """

    ships_state = False
    fallible = False

    def run_round(self, tasks: Sequence[RoundTask],
                  distiller: MetaKnowledgeDistiller | None = None
                  ) -> list[RoundResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""


class SerialRunner(RoundRunner):
    """In-process execution against the trainer's live clients."""

    def __init__(self, clients: Sequence[FederatedClient]):
        self.clients = clients

    def run_round(self, tasks: Sequence[RoundTask],
                  distiller: MetaKnowledgeDistiller | None = None
                  ) -> list[RoundResult]:
        results = []
        for task in tasks:
            client = self.clients[task.client_id]
            if task.session is not None:
                # Fallback path: restore the pre-round snapshot so a
                # round that failed mid-flight on a pool re-runs from
                # the exact same state.
                client.load_session_state(task.session)
            client.receive_global_flat(task.global_flat)
            flat, metrics = client.local_train_flat(task.epochs, distiller)
            results.append(RoundResult(task.client_id, flat, metrics, None))
        return results


# --- worker-process side of the pool backend ---------------------------
# One module-global per worker process, installed by the pool
# initializer: the world is rebuilt once and reused for every task.
_WORKER: "_WorkerState | None" = None


def _init_worker(setup: WorkerSetup) -> None:
    global _WORKER
    _WORKER = _WorkerState(setup)


def _execute_task(task: RoundTask) -> RoundResult:
    assert _WORKER is not None, "worker pool used before initialization"
    return _WORKER.execute(task)


class _WorkerState:
    """Per-worker-process world: one model (+ one teacher), the mask
    builder, and per-client executors, built lazily and reused."""

    def __init__(self, setup: WorkerSetup):
        self.setup = setup
        self.model = setup.model_factory()
        self.mask_builder = setup.mask_builder
        self.clients: dict[int, FederatedClient] = {}
        self.teacher: RecoveryModel | None = None
        self.teacher_space: FlatParameterSpace | None = None

    def _client(self, client_id: int) -> FederatedClient:
        client = self.clients.get(client_id)
        if client is None:
            data = self.setup.client_data[client_id]
            # All of this worker's clients share the single model: each
            # task overwrites parameters (global broadcast) and
            # optimiser/RNG state (session snapshot) anyway.
            client = FederatedClient(
                client_id=client_id, data=data, model=self.model,
                mask_builder=self.mask_builder, training=self.setup.training,
                rng=np.random.default_rng(0),  # replaced by the session state
            )
            self.mask_builder.warm(data.train)
            self.clients[client_id] = client
        return client

    def _distiller(self, teacher_flat: np.ndarray | None
                   ) -> MetaKnowledgeDistiller | None:
        if teacher_flat is None:
            return None
        if self.teacher is None:
            self.teacher = self.setup.model_factory()
            self.teacher_space = FlatParameterSpace.from_module(self.teacher)
        self.teacher_space.set_flat(teacher_flat)
        return MetaKnowledgeDistiller(
            self.teacher, self.mask_builder, lambda0=self.setup.lambda0,
            lt=self.setup.lt, dynamic=self.setup.dynamic_lambda,
        )

    def _ensure_model_dtype(self) -> None:
        """Align the worker's long-lived models with the active compute
        dtype.

        The worker model is built once at pool start-up; if the parent
        flips the compute dtype between rounds, later tasks would run a
        stale-precision model (float32 inputs against float64 weights
        silently upcast every kernel).  Casting parameters in place
        keeps every existing FlatParameterSpace view valid.
        """
        dtype = nn.get_compute_dtype()
        for model in (self.model, self.teacher):
            if model is None:
                continue
            for p in model.parameters():
                if p.data.dtype != dtype:
                    p.data = p.data.astype(dtype)

    def execute(self, task: RoundTask) -> RoundResult:
        # Mirror the parent's process-global switches so both backends
        # run identical kernels over the same mask representation at
        # identical compute and wire precision.  The previous values are
        # restored afterwards: every task re-asserts its own flags, so
        # worker processes lose nothing, and in-process execution (tests,
        # debugging) cannot leak a task's flags into the caller.
        previous = (
            nn.set_fused_kernels(task.fused_kernels),
            nn.set_sparse_masks(task.sparse_masks),
            nn.set_packed_decode(task.packed_decode),
            nn.set_default_dtype(task.exchange_dtype),
            nn.set_compute_dtype(task.compute_dtype),
            nn.set_backend(task.backend),
        )
        try:
            self._ensure_model_dtype()
            client = self._client(task.client_id)
            if task.session is not None:
                client.load_session_state(task.session)
            client.receive_global_flat(task.global_flat)
            distiller = self._distiller(task.teacher_flat)
            flat, metrics = client.local_train_flat(task.epochs, distiller)
            params_flat = None
            if np.dtype(task.exchange_dtype) != np.float64:
                params_flat = client.flat_parameters(dtype=np.float64)
            return RoundResult(task.client_id, flat, metrics,
                               client.session_state(), params_flat)
        finally:
            nn.set_fused_kernels(previous[0])
            nn.set_sparse_masks(previous[1])
            nn.set_packed_decode(previous[2])
            nn.set_default_dtype(previous[3])
            nn.set_compute_dtype(previous[4])
            nn.set_backend(previous[5])


class ProcessPoolRunner(RoundRunner):
    """Persistent process-pool execution of round tasks.

    Parameters
    ----------
    setup:
        The immutable per-worker world.  Under the ``fork`` start
        method it is inherited; under ``spawn``/``forkserver`` it must
        pickle (a module-level ``model_factory``, not a closure).
    workers:
        Number of worker processes (>= 1).
    start_method:
        Multiprocessing start method override; default
        :func:`preferred_start_method`.
    task_timeout:
        Optional per-task wall-clock limit in seconds; an overrun
        raises :class:`RoundExecutionError` (and thereby triggers the
        trainer's serial fallback).
    """

    ships_state = True
    fallible = True

    def __init__(self, setup: WorkerSetup, workers: int,
                 start_method: str | None = None,
                 task_timeout: float | None = None):
        if workers < 1:
            raise ValueError("ProcessPoolRunner needs at least one worker")
        self.setup = setup
        self.workers = workers
        self.start_method = (start_method if start_method is not None
                             else preferred_start_method())
        self.task_timeout = task_timeout
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = mp.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=_init_worker, initargs=(self.setup,),
            )
        return self._pool

    def run_round(self, tasks: Sequence[RoundTask],
                  distiller: MetaKnowledgeDistiller | None = None
                  ) -> list[RoundResult]:
        # ``distiller`` is unused: workers rebuild one from the task's
        # teacher_flat so the live teacher never crosses the wire.
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_execute_task, task) for task in tasks]
            # Collect in submission (= client-id) order: aggregation
            # never depends on completion order.
            return [future.result(timeout=self.task_timeout)
                    for future in futures]
        except Exception as exc:
            self._abort()
            raise RoundExecutionError(
                f"process-pool round execution failed: {exc!r}") from exc

    def _abort(self) -> None:
        """Tear the pool down without waiting (a worker is dead or hung)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            # Workers are idle between rounds: a waiting shutdown is
            # immediate and leaves no half-closed executor pipes behind
            # (which would print "Exception ignored" noise at exit).
            pool.shutdown(wait=True, cancel_futures=True)
