"""``repro.federated`` - client/server FedAvg orchestration for LightTR."""

from .aggregation import average_flat, average_states, fedavg
from .arena import (
    ClientShard,
    LazyClientList,
    ModelArena,
    forced_lazy_from_env,
    get_lazy_clients,
    resolve_lazy_clients,
    set_lazy_clients,
    use_lazy_clients,
)
from .asynchrony import (
    AsyncAggregatorState,
    LatencyModel,
    LatencySpec,
    PendingUpload,
    resolve_latency_model,
    staleness_weights,
)
from .checkpoint import FederatedCheckpoint, checkpoint_path, latest_checkpoint
from .client import ClientData, ClientSessionState, FederatedClient
from .communication import (
    Codec,
    CommunicationLedger,
    EncodedPayload,
    Float32Codec,
    IdentityCodec,
    Int8Codec,
    PAYLOAD_HEADER_BYTES,
    RoundCost,
    available_codecs,
    codec_by_name,
    decode_payload,
    encode_with_feedback,
    forced_codec_from_env,
    get_exchange_codec,
    payload_num_bytes,
    resolve_exchange_codec,
    set_exchange_codec,
    use_exchange_codec,
)
from .faults import (
    ClientFaultError,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    forced_plan_from_env,
    resolve_fault_plan,
)
from .privacy import GaussianMechanism
from .runner import (
    ArenaRunner,
    ClientFailure,
    ProcessPoolRunner,
    RetryPolicy,
    RoundExecution,
    RoundExecutionError,
    RoundResult,
    RoundRunner,
    RoundTask,
    SerialRunner,
    TaskExecutor,
    WorkerSetup,
)
from .server import AggregationSlab, FederatedServer
from .trainer import (
    FederatedConfig,
    FederatedResult,
    FederatedTrainer,
    RoundRecord,
    build_federation,
    train_isolated_then_average,
)

__all__ = [
    "average_flat", "average_states", "fedavg",
    "AsyncAggregatorState", "LatencyModel", "LatencySpec", "PendingUpload",
    "resolve_latency_model", "staleness_weights",
    "ClientData", "ClientSessionState", "FederatedClient",
    "CommunicationLedger", "RoundCost", "payload_num_bytes",
    "Codec", "EncodedPayload", "IdentityCodec", "Float32Codec", "Int8Codec",
    "PAYLOAD_HEADER_BYTES", "available_codecs", "codec_by_name",
    "decode_payload", "encode_with_feedback", "forced_codec_from_env",
    "get_exchange_codec", "resolve_exchange_codec", "set_exchange_codec",
    "use_exchange_codec",
    "ClientFaultError", "FaultEvent", "FaultPlan", "FaultSpec",
    "forced_plan_from_env", "resolve_fault_plan",
    "FederatedCheckpoint", "checkpoint_path", "latest_checkpoint",
    "GaussianMechanism",
    "ClientShard", "LazyClientList", "ModelArena",
    "forced_lazy_from_env", "get_lazy_clients", "resolve_lazy_clients",
    "set_lazy_clients", "use_lazy_clients",
    "RoundRunner", "SerialRunner", "ArenaRunner", "ProcessPoolRunner",
    "TaskExecutor",
    "RoundTask", "RoundResult", "RoundExecutionError", "WorkerSetup",
    "RetryPolicy", "ClientFailure", "RoundExecution",
    "FederatedServer", "AggregationSlab",
    "FederatedConfig", "FederatedTrainer", "FederatedResult", "RoundRecord",
    "build_federation", "train_isolated_then_average",
]
