"""``repro.federated`` - client/server FedAvg orchestration for LightTR."""

from .aggregation import average_flat, average_states, fedavg
from .checkpoint import FederatedCheckpoint, checkpoint_path, latest_checkpoint
from .client import ClientData, ClientSessionState, FederatedClient
from .communication import CommunicationLedger, RoundCost, payload_num_bytes
from .faults import (
    ClientFaultError,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    forced_plan_from_env,
    resolve_fault_plan,
)
from .privacy import GaussianMechanism
from .runner import (
    ClientFailure,
    ProcessPoolRunner,
    RetryPolicy,
    RoundExecution,
    RoundExecutionError,
    RoundResult,
    RoundRunner,
    RoundTask,
    SerialRunner,
    WorkerSetup,
)
from .server import FederatedServer
from .trainer import (
    FederatedConfig,
    FederatedResult,
    FederatedTrainer,
    RoundRecord,
    build_federation,
    train_isolated_then_average,
)

__all__ = [
    "average_flat", "average_states", "fedavg",
    "ClientData", "ClientSessionState", "FederatedClient",
    "CommunicationLedger", "RoundCost", "payload_num_bytes",
    "ClientFaultError", "FaultEvent", "FaultPlan", "FaultSpec",
    "forced_plan_from_env", "resolve_fault_plan",
    "FederatedCheckpoint", "checkpoint_path", "latest_checkpoint",
    "GaussianMechanism",
    "RoundRunner", "SerialRunner", "ProcessPoolRunner",
    "RoundTask", "RoundResult", "RoundExecutionError", "WorkerSetup",
    "RetryPolicy", "ClientFailure", "RoundExecution",
    "FederatedServer",
    "FederatedConfig", "FederatedTrainer", "FederatedResult", "RoundRecord",
    "build_federation", "train_isolated_then_average",
]
