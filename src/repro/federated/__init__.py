"""``repro.federated`` - client/server FedAvg orchestration for LightTR."""

from .aggregation import average_flat, average_states, fedavg
from .client import ClientData, ClientSessionState, FederatedClient
from .communication import CommunicationLedger, RoundCost, payload_num_bytes
from .privacy import GaussianMechanism
from .runner import (
    ProcessPoolRunner,
    RoundExecutionError,
    RoundResult,
    RoundRunner,
    RoundTask,
    SerialRunner,
    WorkerSetup,
)
from .server import FederatedServer
from .trainer import (
    FederatedConfig,
    FederatedResult,
    FederatedTrainer,
    RoundRecord,
    build_federation,
    train_isolated_then_average,
)

__all__ = [
    "average_flat", "average_states", "fedavg",
    "ClientData", "ClientSessionState", "FederatedClient",
    "CommunicationLedger", "RoundCost", "payload_num_bytes",
    "GaussianMechanism",
    "RoundRunner", "SerialRunner", "ProcessPoolRunner",
    "RoundTask", "RoundResult", "RoundExecutionError", "WorkerSetup",
    "FederatedServer",
    "FederatedConfig", "FederatedTrainer", "FederatedResult", "RoundRecord",
    "build_federation", "train_isolated_then_average",
]
