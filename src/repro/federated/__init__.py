"""``repro.federated`` - client/server FedAvg orchestration for LightTR."""

from .aggregation import average_flat, average_states, fedavg
from .client import ClientData, FederatedClient
from .communication import CommunicationLedger, RoundCost, payload_num_bytes
from .privacy import GaussianMechanism
from .server import FederatedServer
from .trainer import (
    FederatedConfig,
    FederatedResult,
    FederatedTrainer,
    RoundRecord,
    build_federation,
    train_isolated_then_average,
)

__all__ = [
    "average_flat", "average_states", "fedavg",
    "ClientData", "FederatedClient",
    "CommunicationLedger", "RoundCost", "payload_num_bytes",
    "GaussianMechanism",
    "FederatedServer",
    "FederatedConfig", "FederatedTrainer", "FederatedResult", "RoundRecord",
    "build_federation", "train_isolated_then_average",
]
