"""Lazy client materialisation: shards, the model arena, and the knob.

At thousand-client scale the live-object model breaks down: every
:class:`~repro.federated.client.FederatedClient` permanently owns a
full model, a :class:`~repro.core.training.LocalTrainer` (with ~6
``(P,)`` float64 Adam/optimiser buffers), and a
:class:`~repro.nn.flatten.FlatParameterSpace`.  A federation of ``N``
clients therefore costs ``O(N * P)`` memory even though only the
sampled fraction trains each round.

This module makes client count a *data-size* problem instead:

:class:`ClientShard`
    The whole persistent identity of one client, as flat vectors: its
    private data splits plus the session snapshot the round runners
    already ship (:class:`~repro.federated.client.ClientSessionState`
    — batch-shuffle RNG, flat optimiser moments, model dropout
    generator states, codec error-feedback residual) and its exact
    float64 parameters *if they ever diverged from the pristine
    factory initialisation* (``None`` until the client first trains —
    untrained shards cost almost nothing).

:class:`ModelArena`
    A bounded pool of reusable model/trainer instances.  When a client
    is sampled into a round or wave, a slot is checked out, rebound to
    the client's id and data, hydrated from the shard via
    ``set_flat``/``load_state_flat`` (the same two calls the pool
    workers have always made), and returned after the upload.  Peak
    live-model count is the arena size, not the federation size.

:class:`LazyClientList`
    A read-only sequence view that materialises a fresh
    :class:`FederatedClient` from a shard on demand, so result
    consumers (``result.clients[i].test_accuracy()``) keep working
    unchanged in lazy mode.

Bitwise contract
----------------
Lazy and eager runs are **bit-identical**: hydration is exactly the
session-restore path the process-pool workers use, the pristine
parameter/session template reproduces the eager constructor's
deterministic ``model_factory()`` + zeroed-optimiser state, and each
shard's initial RNG state is the same ``default_rng(seed + 101 + i)``
the eager constructor seeds.

The ``REPRO_LAZY_CLIENTS`` environment knob forces lazy mode for every
trainer whose config leaves ``lazy_clients=None`` — the same forcing
idiom as ``REPRO_EXCHANGE_CODEC`` — which is how the CI
``tier1-lazy-clients`` leg runs the whole federated suite through the
arena path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.base import RecoveryModel
from ..core.mask import ConstraintMaskBuilder
from ..core.training import TrainingConfig
from .client import ClientData, ClientSessionState, FederatedClient

__all__ = [
    "ClientShard", "ModelArena", "LazyClientList",
    "forced_lazy_from_env", "get_lazy_clients", "set_lazy_clients",
    "use_lazy_clients", "resolve_lazy_clients",
]


@dataclass
class ClientShard:
    """One client's persistent identity between rounds (no live model).

    ``params_flat is None`` means the client still holds the pristine
    factory-initialised parameters (it has never trained), so the
    federation's untrained majority shares one parameter vector — the
    arena's pristine template — instead of owning ``N`` copies.
    """

    client_id: int
    data: ClientData
    session: ClientSessionState
    params_flat: np.ndarray | None = None  # exact float64; None = pristine


class ModelArena:
    """A bounded pool of reusable model/trainer slots.

    Slots are built lazily (the first checkout builds the first slot)
    and rebound on every checkout: the slot's
    :class:`FederatedClient` gets the sampled client's id and data,
    and the caller hydrates parameters and session state from the
    shard.  Because every checkout fully overwrites parameters
    (global broadcast or shard params) *and* mutable training state
    (session restore), state can never bleed between clients sharing
    a slot — the same argument that makes pool workers reusable.
    """

    def __init__(self, model_factory: Callable[[], RecoveryModel],
                 mask_builder: ConstraintMaskBuilder,
                 training: TrainingConfig, size: int = 1):
        if size < 1:
            raise ValueError("arena size must be >= 1")
        self.model_factory = model_factory
        self.mask_builder = mask_builder
        self.training = training
        self.size = size
        self._slots: list[FederatedClient] = []
        self._free: list[FederatedClient] = []
        self._pristine_params: np.ndarray | None = None
        self._pristine_session: ClientSessionState | None = None
        self._warmed: set[int] = set()

    # ------------------------------------------------------------------
    # pristine template
    # ------------------------------------------------------------------
    @property
    def pristine_params(self) -> np.ndarray:
        """Exact float64 parameters of a freshly built model (the state
        every untrained shard implicitly holds)."""
        if self._pristine_params is None:
            raise RuntimeError("arena has no slot yet; call template() "
                               "or checkout() first")
        return self._pristine_params

    @property
    def pristine_session(self) -> ClientSessionState:
        """Session template of a freshly built client: zeroed optimiser
        moments, construction-time model RNG states, no codec residual.
        The ``rng_state`` is a placeholder — shard builders replace it
        with the client's own seeded batch-shuffle generator state."""
        if self._pristine_session is None:
            raise RuntimeError("arena has no slot yet; call template() "
                               "or checkout() first")
        return self._pristine_session

    def template(self, data: ClientData
                 ) -> tuple[np.ndarray, ClientSessionState]:
        """Build the first slot (if needed) and return the pristine
        ``(params, session)`` template.  ``data`` is only used to
        satisfy the client constructor; the slot is rebound before any
        real execution."""
        if self._pristine_params is None:
            slot = self._new_slot(0, data)
            self._slots.append(slot)
            self._free.append(slot)
        return self.pristine_params, self.pristine_session

    def _new_slot(self, client_id: int, data: ClientData) -> FederatedClient:
        client = FederatedClient(
            client_id=client_id, data=data, model=self.model_factory(),
            mask_builder=self.mask_builder, training=self.training,
            rng=np.random.default_rng(0),  # replaced by the session restore
        )
        if self._pristine_params is None:
            # Captured before any training touches the slot: the factory
            # is deterministic, so this is the parameter vector every
            # eager client starts from too.
            self._pristine_params = client.flat_parameters(dtype=np.float64)
            self._pristine_session = client.session_state()
        return client

    # ------------------------------------------------------------------
    # checkout / checkin
    # ------------------------------------------------------------------
    @property
    def live_slots(self) -> int:
        """Slots built so far (the arena's actual model count)."""
        return len(self._slots)

    def checkout(self, client_id: int, data: ClientData) -> FederatedClient:
        """Borrow a slot rebound to ``client_id``/``data``.

        The caller must fully hydrate it (broadcast or shard params +
        session restore) before training, and :meth:`checkin` it when
        done — including on failure paths, so a fault never leaks a
        slot."""
        if client_id not in self._warmed:
            # Warm the mask builder's sparse row pool once per client
            # dataset, exactly like the pool-worker initialisation.
            self.mask_builder.warm(data.train)
            self._warmed.add(client_id)
        if self._free:
            client = self._free.pop()
        elif len(self._slots) < self.size:
            client = self._new_slot(client_id, data)
            self._slots.append(client)
        else:
            raise RuntimeError(
                f"model arena exhausted: all {self.size} slot(s) are "
                f"checked out (raise FederatedConfig.arena_size)")
        client.client_id = client_id
        client.data = data
        return client

    def checkin(self, client: FederatedClient) -> None:
        """Return a checked-out slot to the free pool."""
        self._free.append(client)

    def models(self):
        """The live slot models (for in-place dtype alignment)."""
        return [slot.model for slot in self._slots]


class LazyClientList(Sequence):
    """Read-only ``trainer.clients`` view over shards.

    Indexing materialises a *fresh* :class:`FederatedClient` hydrated
    from the shard (current parameters + session), so inspection-style
    consumers — accuracy probes, parameter snapshots, codec residual
    checks — see exactly what an eager trainer's live client would
    hold.  Mutations to a materialised client are **not** written back
    to the shard; tests that sabotage live-client internals carry the
    ``eager_clients`` marker instead.
    """

    def __init__(self, trainer):
        self._trainer = trainer

    def __len__(self) -> int:
        return len(self._trainer.shards)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = range(len(self))[index]  # normalise negatives, bound-check
        return self._trainer._materialize_client(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyClientList({len(self)} shards)"


# ----------------------------------------------------------------------
# the lazy-clients knob (REPRO_LAZY_CLIENTS forcing)
# ----------------------------------------------------------------------
_TRUE_VALUES = ("1", "true", "on", "yes")
_FALSE_VALUES = ("0", "false", "off", "no")

#: The active process default; ``None`` = not yet resolved, in which
#: case the ``REPRO_LAZY_CLIENTS`` environment forcing (if any) applies
#: on first read.
_ACTIVE_LAZY: bool | None = None


def _parse_lazy(value: "bool | str") -> bool:
    if isinstance(value, bool):
        return value
    text = value.strip().lower()
    if text in _TRUE_VALUES:
        return True
    if text in _FALSE_VALUES:
        return False
    raise ValueError(
        f"cannot interpret lazy-clients value {value!r}; expected one of "
        f"{_TRUE_VALUES + _FALSE_VALUES}")


def forced_lazy_from_env() -> bool | None:
    """The mode forced by ``REPRO_LAZY_CLIENTS`` (None if unset)."""
    raw = os.environ.get("REPRO_LAZY_CLIENTS")
    if raw is None or not raw.strip():
        return None
    return _parse_lazy(raw)


def get_lazy_clients() -> bool:
    """The process-default client mode (eager unless configured)."""
    global _ACTIVE_LAZY
    if _ACTIVE_LAZY is None:
        forced = forced_lazy_from_env()
        _ACTIVE_LAZY = False if forced is None else forced
    return _ACTIVE_LAZY


def set_lazy_clients(value: "bool | str") -> bool:
    """Set the process default; returns the previous mode."""
    global _ACTIVE_LAZY
    previous = get_lazy_clients()
    _ACTIVE_LAZY = _parse_lazy(value)
    return previous


@contextmanager
def use_lazy_clients(value: "bool | str"):
    """Temporarily switch the process-default client mode."""
    previous = set_lazy_clients(value)
    try:
        yield get_lazy_clients()
    finally:
        set_lazy_clients(previous)


def resolve_lazy_clients(value: "bool | None") -> bool:
    """Normalise a config-level ``lazy_clients`` value.

    ``None`` defers to the process default (itself seeded from the
    ``REPRO_LAZY_CLIENTS`` forcing); an explicit bool wins.
    """
    if value is None:
        return get_lazy_clients()
    return bool(value)
