"""Differential privacy for uploaded model parameters.

LightTR's privacy argument is architectural (raw trajectories never
leave the client), but the FL literature the paper builds on [20]
strengthens this with differentially-private uploads.  This module adds
the standard Gaussian mechanism: clip each client's *update* (delta from
the broadcast global model) to a global L2 norm, then add isotropic
Gaussian noise calibrated by a noise multiplier.

The epsilon estimate uses the classic analytic bound for the Gaussian
mechanism under k-fold composition - intentionally simple (no RDP
accounting) and documented as an upper-bound sketch, which is the right
scope for a reproduction.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

__all__ = ["GaussianMechanism"]


class GaussianMechanism:
    """Clip-and-noise privatisation of client updates.

    Parameters
    ----------
    clip_norm:
        Maximum global L2 norm of a client's update (delta of all
        parameters, concatenated).
    noise_multiplier:
        Noise standard deviation as a multiple of ``clip_norm``
        (``sigma = noise_multiplier * clip_norm``).  0 disables noise
        (clipping still applies).
    rng:
        Seeded generator for the noise.
    """

    def __init__(self, clip_norm: float, noise_multiplier: float,
                 rng: np.random.Generator):
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self._rng = rng

    def privatize_update_flat(self, local_flat: np.ndarray,
                              global_flat: np.ndarray) -> np.ndarray:
        """Clip-and-noise one flat parameter vector (the hot-path variant).

        Identical mechanism to :meth:`privatize_update`, but the update
        delta, its norm, the clipping, and the noise are all single
        vectorized operations on ``(P,)`` arrays.
        """
        # Deliberate float64 upcast (not a hot-path leak): clipping norms
        # and noise calibration run at master precision whatever the
        # compute/exchange dtypes; the trainer re-casts the privatised
        # vector to the exchange dtype before aggregation.
        local_flat = np.asarray(local_flat, dtype=np.float64)
        global_flat = np.asarray(global_flat, dtype=np.float64)
        if local_flat.shape != global_flat.shape:
            raise ValueError("local and global vectors have different sizes")
        delta = local_flat - global_flat
        total_norm = float(np.sqrt(np.dot(delta, delta)))
        scale = min(1.0, self.clip_norm / (total_norm + 1e-12))
        clipped = delta * scale
        sigma = self.noise_multiplier * self.clip_norm
        if sigma > 0:
            clipped = clipped + self._rng.normal(0.0, sigma, size=clipped.shape)
        return global_flat + clipped

    def privatize_update(self, local_state: dict, global_state: dict) -> dict:
        """Return a privatised version of ``local_state``.

        The update ``local - global`` is clipped to ``clip_norm`` and
        noised; the result is ``global + clipped_noised_update`` so the
        server-side aggregation code is unchanged.
        """
        keys = list(local_state.keys())
        if set(keys) != set(global_state.keys()):
            raise KeyError("local and global states have different parameters")
        deltas = {k: np.asarray(local_state[k], dtype=np.float64)
                  - np.asarray(global_state[k], dtype=np.float64)
                  for k in keys}
        total_norm = math.sqrt(sum(float((d * d).sum()) for d in deltas.values()))
        scale = min(1.0, self.clip_norm / (total_norm + 1e-12))
        sigma = self.noise_multiplier * self.clip_norm
        private = OrderedDict()
        for k in keys:
            clipped = deltas[k] * scale
            if sigma > 0:
                clipped = clipped + self._rng.normal(0.0, sigma,
                                                     size=clipped.shape)
            private[k] = np.asarray(global_state[k], dtype=np.float64) + clipped
        return private

    def epsilon_estimate(self, rounds: int, delta: float = 1e-5) -> float:
        """Rough (eps, delta)-DP upper bound after ``rounds`` releases.

        Single release: the Gaussian mechanism with
        ``sigma = z * clip`` and sensitivity ``clip`` satisfies
        ``eps_1 = sqrt(2 ln(1.25/delta)) / z``.  Under basic
        composition over k rounds, ``eps <= k * eps_1``.  Returns
        ``inf`` when noise is disabled.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if self.noise_multiplier == 0:
            return math.inf
        eps_single = math.sqrt(2.0 * math.log(1.25 / delta)) / self.noise_multiplier
        return rounds * eps_single
