"""Round-granular checkpoint/resume for federated training.

A long federated run should survive the process dying: with
``FederatedConfig(checkpoint_every=K, checkpoint_dir=...)`` the trainer
persists a :class:`FederatedCheckpoint` after every K-th completed
round, and ``resume_from=`` restarts a run from the latest (or a
specific) checkpoint file.

Bit-identical resume contract
-----------------------------
A resumed run must be indistinguishable from the uninterrupted one, so
a checkpoint captures *every* mutable input of the remaining rounds:

* the global flat parameter vector (exact float64 — never the reduced
  exchange dtype);
* each client's exact float64 parameters and
  :class:`~repro.federated.client.ClientSessionState` (batch-shuffle
  RNG, flat optimiser moments, model dropout generator states);
* the trainer's client-selection RNG state;
* the frozen teacher's flat parameters (the worker-side distiller is
  rebuilt from this snapshot, so distillation continues exactly);
* the accumulated round history, communication ledger, the held
  accuracy of the last aggregated round, and the consecutive
  pool-failure count;
* the exchange codec's error-feedback residuals — the per-client
  uplink residuals ride inside each
  :class:`~repro.federated.client.ClientSessionState`, and the
  server's downlink residual is stored explicitly — so a resumed
  quantised run encodes the identical payload stream;
* the async aggregator's
  :class:`~repro.federated.asynchrony.AsyncAggregatorState` (virtual
  clock, flush count, in-flight and buffered uploads), so a killed
  async run replays the identical arrival/flush schedule.

Everything *immutable* — datasets, the road network, the model
architecture, the config — is deliberately **not** stored: the caller
reconstructs the same :class:`~repro.federated.trainer.FederatedTrainer`
(same seeds, same world) and the checkpoint only rewinds its mutable
state.  That keeps checkpoints small (a few parameter-vector copies)
and sidesteps pickling the whole world.

Format: one pickle per checkpoint, named ``round_<NNNN>.ckpt``, written
atomically (temp file + ``os.replace``) so a kill mid-write can never
leave a truncated latest checkpoint.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

import numpy as np

from .asynchrony import AsyncAggregatorState
from .client import ClientSessionState

__all__ = ["FederatedCheckpoint", "checkpoint_path", "latest_checkpoint"]

#: Bump when the checkpoint layout changes incompatibly.
#: Version history:
#: 1 — synchronous-only state (PR 7).
#: 2 — adds the exchange codec's error-feedback residuals (per-client
#:     inside ClientSessionState + the server's downlink residual) and
#:     the async aggregator state.  Version-1 files lack both, so a
#:     resumed run could not reproduce the uninterrupted byte/flush
#:     stream — they are rejected with a clear error.
#: 3 — lazy-clients support (PR 10): ``client_params`` entries may be
#:     ``None`` (a shard that never trained still holds the pristine
#:     factory parameters, so persisting ``N`` identical copies would
#:     defeat the lazy memory model) and ``lazy_clients`` records the
#:     client mode so a resume cannot silently mix shard state with
#:     live-client state.  Version-2 files still load — they are
#:     always eager with every parameter vector present.
CHECKPOINT_VERSION = 3


@dataclass
class FederatedCheckpoint:
    """The full mutable state of a federated run after ``next_round - 1``
    completed rounds (resume continues *at* ``next_round``)."""

    next_round: int
    global_flat: np.ndarray  # exact float64 global parameters
    client_sessions: tuple[ClientSessionState, ...]
    # Exact float64 per-client params; a ``None`` entry (version >= 3,
    # lazy mode only) marks a shard still holding the pristine factory
    # initialisation.
    client_params: "tuple[np.ndarray | None, ...]"
    trainer_rng_state: dict  # client-selection generator
    teacher_flat: np.ndarray | None
    history: list = field(default_factory=list)  # RoundRecord entries
    ledger_rounds: list = field(default_factory=list)  # RoundCost entries
    last_accuracy: float | None = None  # held accuracy for quorum-failed rounds
    pool_failures: int = 0  # consecutive whole-pool failures so far
    downlink_residual: np.ndarray | None = None  # server-side error feedback
    async_state: AsyncAggregatorState | None = None  # None = synchronous run
    lazy_clients: bool = False  # True = client state lives in shards
    version: int = CHECKPOINT_VERSION

    def save(self, path: str) -> str:
        """Atomically persist this checkpoint to ``path``."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "FederatedCheckpoint":
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
        if not isinstance(checkpoint, cls):
            raise ValueError(f"{path} is not a FederatedCheckpoint")
        if checkpoint.version not in (2, CHECKPOINT_VERSION):
            raise ValueError(
                f"checkpoint {path} has version {checkpoint.version}, "
                f"this build reads versions 2 and {CHECKPOINT_VERSION}")
        if not hasattr(checkpoint, "lazy_clients"):
            # Version-2 pickles restore __dict__ directly and predate
            # the field; they were always taken from eager runs.
            checkpoint.lazy_clients = False
        return checkpoint


def checkpoint_path(directory: str, next_round: int) -> str:
    """Canonical file name of the checkpoint taken before ``next_round``."""
    return os.path.join(directory, f"round_{next_round:04d}.ckpt")


def latest_checkpoint(path: str) -> str | None:
    """Resolve a resume target: a checkpoint file as-is, or the
    highest-round ``round_*.ckpt`` inside a directory (None if empty)."""
    if os.path.isfile(path):
        return path
    if not os.path.isdir(path):
        return None
    names = [name for name in os.listdir(path)
             if name.startswith("round_") and name.endswith(".ckpt")]
    if not names:
        return None
    return os.path.join(path, max(names))
