"""The central server of the horizontal FL architecture.

Holds the global model, samples a client fraction each round
(Algorithm 3 line 2), and aggregates uploaded parameters (line 11).

The server views the global model through a
:class:`~repro.nn.flatten.FlatParameterSpace`: broadcast and
aggregation move single ``(P,)`` vectors, and averaging ``C`` uploads
is one ``np.average`` over the stacked ``(C, P)`` matrix.  The wire
vectors honour the exchange dtype (:func:`repro.nn.set_default_dtype`):
with float32 enabled, broadcasts and uploads ship at half the bytes
while aggregation still averages in float64.
"""

from __future__ import annotations

import numpy as np

from ..core.base import RecoveryModel
from ..nn.flatten import FlatParameterSpace
from .aggregation import average_flat, average_states

__all__ = ["FederatedServer"]

#: Default ceiling on the L2 norm of an accepted upload.  Healthy
#: uploads sit orders of magnitude below this; a norm-blowup corruption
#: (:data:`repro.federated.faults.NORM_BLOWUP`) sits orders above.
DEFAULT_MAX_UPLOAD_NORM = 1e6


class FederatedServer:
    """Orchestrates parameter exchange; never sees raw trajectories."""

    def __init__(self, global_model: RecoveryModel):
        self.global_model = global_model
        self._space = FlatParameterSpace.from_module(global_model)

    def global_state(self) -> dict:
        """The current global parameters as a state dict."""
        return self.global_model.state_dict()

    def global_flat(self, dtype=None) -> np.ndarray:
        """The current global parameters as one flat ``(P,)`` vector.

        Allocated in ``dtype`` when given, else the exchange dtype —
        this is the broadcast payload, so its dtype is what the
        communication ledger meters.
        """
        return self._space.get_flat(dtype=dtype)

    def load_global_flat(self, flat: np.ndarray) -> None:
        """Overwrite the global parameters from one flat ``(P,)`` vector
        (checkpoint restore)."""
        self._space.set_flat(flat)

    @property
    def num_parameters(self) -> int:
        """Size ``P`` of the flat parameter vector."""
        return self._space.total_size

    def select_clients(self, num_clients: int, fraction: float,
                       rng: np.random.Generator,
                       candidates: "list[int] | None" = None) -> list[int]:
        """Randomly sample ``ceil(fraction * num_clients)`` client ids.

        ``candidates`` restricts the draw to a subset (the async
        trainer's idle clients); the target count is still computed
        from the federation size, capped by the candidates available.
        An empty candidate list selects nobody.  The ``candidates=None``
        path consumes the RNG exactly as before, so synchronous
        histories are unchanged.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"client fraction must be in (0, 1], got {fraction}")
        count = max(1, int(np.ceil(fraction * num_clients)))
        if candidates is None:
            picks = rng.choice(num_clients, size=min(count, num_clients),
                               replace=False)
        else:
            if not candidates:
                return []
            pool = np.asarray(sorted(candidates), dtype=np.int64)
            picks = rng.choice(pool, size=min(count, pool.size), replace=False)
        return sorted(int(i) for i in picks)

    def validate_upload(self, vector,
                        max_norm: float | None = DEFAULT_MAX_UPLOAD_NORM
                        ) -> str | None:
        """Why this upload must be rejected, or None if it is acceptable.

        Checks — in order — that the payload is an array of the global
        shape ``(P,)``, of a floating dtype, fully finite, and (when
        ``max_norm`` is given) of bounded L2 norm.  The trainer treats
        a rejection as a client failure for the round, so one poisoned
        payload can never NaN the global average.
        """
        arr = np.asarray(vector)
        expected = self._space.total_size
        if arr.shape != (expected,):
            return f"shape {arr.shape} != ({expected},)"
        if not np.issubdtype(arr.dtype, np.floating):
            return f"non-float dtype {arr.dtype}"
        if not np.all(np.isfinite(arr)):
            bad = int(arr.size - np.isfinite(arr).sum())
            return f"{bad} non-finite entries"
        if max_norm is not None:
            norm = float(np.linalg.norm(arr.astype(np.float64, copy=False)))
            if norm > max_norm:
                return f"norm {norm:.3g} exceeds {max_norm:g}"
        return None

    def aggregate_flat(self, vectors: list[np.ndarray],
                       weights: list[float] | None = None) -> np.ndarray:
        """Average uploaded flat vectors into the global model.

        Uploads may arrive in any float dtype (float32 on the wire with
        the reduced exchange dtype); the average itself runs in float64.
        Non-finite uploads are refused outright — callers wanting
        per-client tolerance screen with :meth:`validate_upload` first.
        """
        if not vectors:
            raise ValueError("cannot aggregate zero states")
        expected = self._space.total_size
        for i, vec in enumerate(vectors):
            arr = np.asarray(vec)
            if arr.shape != (expected,):
                raise ValueError(
                    f"client vector {i} has shape {arr.shape}, "
                    f"expected ({expected},)"
                )
            if not np.all(np.isfinite(arr)):
                raise ValueError(
                    f"client vector {i} contains non-finite entries; "
                    f"screen uploads with validate_upload() first"
                )
        new_flat = average_flat(np.stack(vectors), weights)
        self._space.set_flat(new_flat)
        return new_flat

    def aggregate(self, states: list[dict],
                  weights: list[float] | None = None) -> dict:
        """Average uploaded state dicts into the global model (dict shim).

        The paper's Algorithm 3 uses the uniform mean; passing
        ``weights`` gives example-count-weighted FedAvg instead.
        """
        new_state = average_states(states, weights)
        self.global_model.load_state_dict(new_state)
        return new_state
