"""The central server of the horizontal FL architecture.

Holds the global model, samples a client fraction each round
(Algorithm 3 line 2), and aggregates uploaded parameters (line 11).

The server views the global model through a
:class:`~repro.nn.flatten.FlatParameterSpace`: broadcast and
aggregation move single ``(P,)`` vectors, and averaging ``C`` uploads
is one ``np.average`` over the stacked ``(C, P)`` matrix.  The wire
vectors honour the exchange dtype (:func:`repro.nn.set_default_dtype`):
with float32 enabled, broadcasts and uploads ship at half the bytes
while aggregation still averages in float64.
"""

from __future__ import annotations

import numpy as np

from ..core.base import RecoveryModel
from ..nn.flatten import FlatParameterSpace
from .aggregation import average_flat, average_states

__all__ = ["FederatedServer", "AggregationSlab", "DEFAULT_MAX_UPLOAD_NORM"]

#: Default ceiling on the L2 norm of an accepted upload.  Healthy
#: uploads sit orders of magnitude below this; a norm-blowup corruption
#: (:data:`repro.federated.faults.NORM_BLOWUP`) sits orders above.
DEFAULT_MAX_UPLOAD_NORM = 1e6


class AggregationSlab:
    """A preallocated, grow-only ``(capacity, P)`` float64 staging
    buffer for one round's uploads.

    The trainer decodes every accepted upload straight into a slab row
    instead of keeping ``C`` per-client float64 vectors alive; finite
    validation and the FedAvg reduction then run over one contiguous
    2-D array.  Because :func:`~repro.federated.aggregation.average_flat`
    already upcasts its stacked input to a C-contiguous float64 matrix,
    feeding it a slab view is **bitwise identical** to the historical
    stack-of-vectors path — float32→float64 casts are exact and the
    reduction sees the same memory layout either way.

    The slab never shrinks: growth is geometric on capacity and linear
    on ``P`` changes (only relevant to tests that rebuild worlds), so a
    steady-state trainer allocates it once.
    """

    def __init__(self, num_parameters: int, capacity: int = 0):
        if num_parameters < 1:
            raise ValueError("slab needs at least one parameter column")
        self.num_parameters = int(num_parameters)
        capacity = max(1, int(capacity))
        self._buf = np.empty((capacity, self.num_parameters), dtype=np.float64)

    @property
    def capacity(self) -> int:
        return self._buf.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing buffer (for memory accounting)."""
        return self._buf.nbytes

    def rows(self, count: int) -> np.ndarray:
        """A writable ``(count, P)`` float64 view, growing the backing
        buffer if this round samples more clients than any before."""
        if count < 0:
            raise ValueError(f"cannot stage {count} rows")
        if count > self._buf.shape[0]:
            grown = max(count, 2 * self._buf.shape[0])
            self._buf = np.empty((grown, self.num_parameters),
                                 dtype=np.float64)
        return self._buf[:count]


class FederatedServer:
    """Orchestrates parameter exchange; never sees raw trajectories."""

    def __init__(self, global_model: RecoveryModel):
        self.global_model = global_model
        self._space = FlatParameterSpace.from_module(global_model)

    def global_state(self) -> dict:
        """The current global parameters as a state dict."""
        return self.global_model.state_dict()

    def global_flat(self, dtype=None) -> np.ndarray:
        """The current global parameters as one flat ``(P,)`` vector.

        Allocated in ``dtype`` when given, else the exchange dtype —
        this is the broadcast payload, so its dtype is what the
        communication ledger meters.
        """
        return self._space.get_flat(dtype=dtype)

    def load_global_flat(self, flat: np.ndarray) -> None:
        """Overwrite the global parameters from one flat ``(P,)`` vector
        (checkpoint restore)."""
        self._space.set_flat(flat)

    @property
    def num_parameters(self) -> int:
        """Size ``P`` of the flat parameter vector."""
        return self._space.total_size

    def select_clients(self, num_clients: int, fraction: float,
                       rng: np.random.Generator,
                       candidates: "list[int] | None" = None) -> list[int]:
        """Randomly sample ``ceil(fraction * num_clients)`` client ids.

        ``candidates`` restricts the draw to a subset (the async
        trainer's idle clients); the target count is still computed
        from the federation size, capped by the candidates available.
        An empty candidate list selects nobody.  The ``candidates=None``
        path consumes the RNG exactly as before, so synchronous
        histories are unchanged.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"client fraction must be in (0, 1], got {fraction}")
        count = max(1, int(np.ceil(fraction * num_clients)))
        if candidates is None:
            picks = rng.choice(num_clients, size=min(count, num_clients),
                               replace=False)
        else:
            if not candidates:
                return []
            pool = np.asarray(sorted(candidates), dtype=np.int64)
            picks = rng.choice(pool, size=min(count, pool.size), replace=False)
        return sorted(int(i) for i in picks)

    def validate_upload(self, vector,
                        max_norm: float | None = DEFAULT_MAX_UPLOAD_NORM
                        ) -> str | None:
        """Why this upload must be rejected, or None if it is acceptable.

        Checks — in order — that the payload is an array of the global
        shape ``(P,)``, of a floating dtype, fully finite, and (when
        ``max_norm`` is given) of bounded L2 norm.  The trainer treats
        a rejection as a client failure for the round, so one poisoned
        payload can never NaN the global average.
        """
        arr = np.asarray(vector)
        expected = self._space.total_size
        if arr.shape != (expected,):
            return f"shape {arr.shape} != ({expected},)"
        if not np.issubdtype(arr.dtype, np.floating):
            return f"non-float dtype {arr.dtype}"
        if not np.all(np.isfinite(arr)):
            bad = int(arr.size - np.isfinite(arr).sum())
            return f"{bad} non-finite entries"
        if max_norm is not None:
            norm = float(np.linalg.norm(arr.astype(np.float64, copy=False)))
            if norm > max_norm:
                return f"norm {norm:.3g} exceeds {max_norm:g}"
        return None

    def screen_upload(self, vector) -> str | None:
        """The cheap pre-slab half of :meth:`validate_upload`.

        Shape and dtype must be checked *before* an upload is copied
        into a slab row (a wrong-shaped vector cannot be staged at
        all); finiteness and norm are checked afterwards over the whole
        slab by :meth:`validate_rows`.  The reason strings match
        :meth:`validate_upload` exactly, so rejection records are
        identical whichever path screened them.
        """
        arr = np.asarray(vector)
        expected = self._space.total_size
        if arr.shape != (expected,):
            return f"shape {arr.shape} != ({expected},)"
        if not np.issubdtype(arr.dtype, np.floating):
            return f"non-float dtype {arr.dtype}"
        return None

    def validate_rows(self, matrix: np.ndarray,
                      max_norm: float | None = DEFAULT_MAX_UPLOAD_NORM
                      ) -> "list[str | None]":
        """Per-row rejection reasons for staged uploads (None = accept).

        The finiteness test is vectorised over the whole ``(C, P)``
        slab; the norm is computed per row over the 1-D view because
        ``np.linalg.norm(matrix, axis=1)`` reduces in a different
        association order than the per-vector call and would not be
        bitwise-comparable with :meth:`validate_upload`'s reasons.
        Rows are assumed pre-screened (:meth:`screen_upload`), hence
        float64 of the right width.
        """
        finite_rows = np.isfinite(matrix).all(axis=1)
        reasons: "list[str | None]" = []
        for i, row in enumerate(matrix):
            if not finite_rows[i]:
                bad = int(row.size - np.isfinite(row).sum())
                reasons.append(f"{bad} non-finite entries")
                continue
            if max_norm is not None:
                norm = float(np.linalg.norm(row))
                if norm > max_norm:
                    reasons.append(f"norm {norm:.3g} exceeds {max_norm:g}")
                    continue
            reasons.append(None)
        return reasons

    def aggregate_rows(self, matrix: np.ndarray,
                       weights: list[float] | None = None) -> np.ndarray:
        """Average a staged ``(C, P)`` slab view into the global model.

        The zero-copy dual of :meth:`aggregate_flat`: the rows were
        decoded straight into the slab, so no stacking happens here —
        :func:`average_flat` reduces the float64 matrix as-is, which is
        bitwise identical to stacking ``C`` separate vectors first.
        Rows must already have passed :meth:`validate_rows`.
        """
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError(
                f"cannot aggregate slab of shape {np.shape(matrix)}; "
                f"need a non-empty (C, P) matrix")
        if matrix.shape[1] != self._space.total_size:
            raise ValueError(
                f"slab width {matrix.shape[1]} != global parameter "
                f"count {self._space.total_size}")
        new_flat = average_flat(matrix, weights)
        self._space.set_flat(new_flat)
        return new_flat

    def aggregate_flat(self, vectors: list[np.ndarray],
                       weights: list[float] | None = None) -> np.ndarray:
        """Average uploaded flat vectors into the global model.

        Uploads may arrive in any float dtype (float32 on the wire with
        the reduced exchange dtype); the average itself runs in float64.
        Non-finite uploads are refused outright — callers wanting
        per-client tolerance screen with :meth:`validate_upload` first.
        """
        if not vectors:
            raise ValueError("cannot aggregate zero states")
        expected = self._space.total_size
        for i, vec in enumerate(vectors):
            arr = np.asarray(vec)
            if arr.shape != (expected,):
                raise ValueError(
                    f"client vector {i} has shape {arr.shape}, "
                    f"expected ({expected},)"
                )
            if not np.all(np.isfinite(arr)):
                raise ValueError(
                    f"client vector {i} contains non-finite entries; "
                    f"screen uploads with validate_upload() first"
                )
        new_flat = average_flat(np.stack(vectors), weights)
        self._space.set_flat(new_flat)
        return new_flat

    def aggregate(self, states: list[dict],
                  weights: list[float] | None = None) -> dict:
        """Average uploaded state dicts into the global model (dict shim).

        The paper's Algorithm 3 uses the uniform mean; passing
        ``weights`` gives example-count-weighted FedAvg instead.
        """
        new_state = average_states(states, weights)
        self.global_model.load_state_dict(new_state)
        return new_state
