"""The central server of the horizontal FL architecture.

Holds the global model, samples a client fraction each round
(Algorithm 3 line 2), and aggregates uploaded parameters (line 11).
"""

from __future__ import annotations

import numpy as np

from ..core.base import RecoveryModel
from .aggregation import average_states

__all__ = ["FederatedServer"]


class FederatedServer:
    """Orchestrates parameter exchange; never sees raw trajectories."""

    def __init__(self, global_model: RecoveryModel):
        self.global_model = global_model

    def global_state(self) -> dict:
        """The current global parameters (what gets broadcast)."""
        return self.global_model.state_dict()

    def select_clients(self, num_clients: int, fraction: float,
                       rng: np.random.Generator) -> list[int]:
        """Randomly sample ``ceil(fraction * num_clients)`` client ids."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"client fraction must be in (0, 1], got {fraction}")
        count = max(1, int(np.ceil(fraction * num_clients)))
        picks = rng.choice(num_clients, size=min(count, num_clients), replace=False)
        return sorted(int(i) for i in picks)

    def aggregate(self, states: list[dict],
                  weights: list[float] | None = None) -> dict:
        """Average uploaded parameters into the global model.

        The paper's Algorithm 3 uses the uniform mean; passing
        ``weights`` gives example-count-weighted FedAvg instead.
        """
        new_state = average_states(states, weights)
        self.global_model.load_state_dict(new_state)
        return new_state
