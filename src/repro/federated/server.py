"""The central server of the horizontal FL architecture.

Holds the global model, samples a client fraction each round
(Algorithm 3 line 2), and aggregates uploaded parameters (line 11).

The server views the global model through a
:class:`~repro.nn.flatten.FlatParameterSpace`: broadcast and
aggregation move single ``(P,)`` vectors, and averaging ``C`` uploads
is one ``np.average`` over the stacked ``(C, P)`` matrix.  The wire
vectors honour the exchange dtype (:func:`repro.nn.set_default_dtype`):
with float32 enabled, broadcasts and uploads ship at half the bytes
while aggregation still averages in float64.
"""

from __future__ import annotations

import numpy as np

from ..core.base import RecoveryModel
from ..nn.flatten import FlatParameterSpace
from .aggregation import average_flat, average_states

__all__ = ["FederatedServer"]


class FederatedServer:
    """Orchestrates parameter exchange; never sees raw trajectories."""

    def __init__(self, global_model: RecoveryModel):
        self.global_model = global_model
        self._space = FlatParameterSpace.from_module(global_model)

    def global_state(self) -> dict:
        """The current global parameters as a state dict."""
        return self.global_model.state_dict()

    def global_flat(self, dtype=None) -> np.ndarray:
        """The current global parameters as one flat ``(P,)`` vector.

        Allocated in ``dtype`` when given, else the exchange dtype —
        this is the broadcast payload, so its dtype is what the
        communication ledger meters.
        """
        return self._space.get_flat(dtype=dtype)

    @property
    def num_parameters(self) -> int:
        """Size ``P`` of the flat parameter vector."""
        return self._space.total_size

    def select_clients(self, num_clients: int, fraction: float,
                       rng: np.random.Generator) -> list[int]:
        """Randomly sample ``ceil(fraction * num_clients)`` client ids."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"client fraction must be in (0, 1], got {fraction}")
        count = max(1, int(np.ceil(fraction * num_clients)))
        picks = rng.choice(num_clients, size=min(count, num_clients), replace=False)
        return sorted(int(i) for i in picks)

    def aggregate_flat(self, vectors: list[np.ndarray],
                       weights: list[float] | None = None) -> np.ndarray:
        """Average uploaded flat vectors into the global model.

        Uploads may arrive in any float dtype (float32 on the wire with
        the reduced exchange dtype); the average itself runs in float64.
        """
        if not vectors:
            raise ValueError("cannot aggregate zero states")
        expected = self._space.total_size
        for i, vec in enumerate(vectors):
            if np.asarray(vec).shape != (expected,):
                raise ValueError(
                    f"client vector {i} has shape {np.asarray(vec).shape}, "
                    f"expected ({expected},)"
                )
        new_flat = average_flat(np.stack(vectors), weights)
        self._space.set_flat(new_flat)
        return new_flat

    def aggregate(self, states: list[dict],
                  weights: list[float] | None = None) -> dict:
        """Average uploaded state dicts into the global model (dict shim).

        The paper's Algorithm 3 uses the uniform mean; passing
        ``weights`` gives example-count-weighted FedAvg instead.
        """
        new_state = average_states(states, weights)
        self.global_model.load_state_dict(new_state)
        return new_state
