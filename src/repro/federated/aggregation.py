"""Parameter aggregation rules.

Algorithm 3 line 11 averages the uploaded client parameters uniformly
(``theta_s <- sum 1/C theta_ci``); we also provide the data-weighted
FedAvg variant of McMahan et al. [21], used by the baselines'
``+FL`` wrappers.

Aggregation is flat-vector native: each client's parameters are one
``(P,)`` vector and averaging ``C`` clients is a single ``np.average``
over the stacked ``(C, P)`` matrix.  The dict-based
:func:`average_states` API is kept as a thin shim (with its validation
errors intact) for callers that still hold state dicts.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..nn.flatten import FlatLayout

__all__ = ["average_flat", "average_states", "fedavg"]


def _validated_weights(weights: list[float] | None, count: int) -> np.ndarray | None:
    """Check weight count/positivity; None means the uniform mean."""
    if weights is None:
        return None
    if len(weights) != count:
        raise ValueError("need one weight per state")
    weights = np.asarray(weights, dtype=np.float64)
    if float(weights.sum()) <= 0:
        raise ValueError("aggregation weights must sum to a positive value")
    return weights


def average_flat(stacked: np.ndarray, weights: list[float] | None = None
                 ) -> np.ndarray:
    """Weighted average of flat client vectors.

    Parameters
    ----------
    stacked:
        ``(C, P)`` matrix of one flat parameter vector per client.
    weights:
        Optional per-client weights; uniform mean when None.
    """
    stacked = np.asarray(stacked, dtype=np.float64)
    if stacked.ndim != 2 or stacked.shape[0] == 0:
        raise ValueError("cannot aggregate zero states")
    weights = _validated_weights(weights, stacked.shape[0])
    if weights is None:
        return stacked.mean(axis=0)
    return np.average(stacked, axis=0, weights=weights)


def average_states(states: list[dict], weights: list[float] | None = None
                   ) -> "OrderedDict[str, np.ndarray]":
    """Weighted average of state dicts (uniform when ``weights`` is None).

    All states must share exactly the same keys and shapes; this is
    validated so a mis-matched client model fails loudly.  This is the
    dict shim over :func:`average_flat`.
    """
    if not states:
        raise ValueError("cannot aggregate zero states")
    keys = list(states[0].keys())
    for i, state in enumerate(states[1:], start=1):
        if list(state.keys()) != keys:
            raise KeyError(f"client state {i} keys do not match client 0")
    layout = FlatLayout.from_state(states[0])
    stacked = np.empty((len(states), layout.total_size))
    for row, state in zip(stacked, states):
        try:
            layout.flatten_state(state, out=row)
        except ValueError as exc:
            raise ValueError(f"shape mismatch during aggregation: {exc}") from exc
    return layout.unflatten(average_flat(stacked, weights))


def fedavg(states: list[dict], num_examples: list[int]) -> "OrderedDict[str, np.ndarray]":
    """FedAvg: average weighted by each client's local example count."""
    if any(n <= 0 for n in num_examples):
        raise ValueError("example counts must be positive")
    return average_states(states, [float(n) for n in num_examples])
