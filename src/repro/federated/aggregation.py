"""Parameter aggregation rules.

Algorithm 3 line 11 averages the uploaded client parameters uniformly
(``theta_s <- sum 1/C theta_ci``); we also provide the data-weighted
FedAvg variant of McMahan et al. [21], used by the baselines'
``+FL`` wrappers.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["average_states", "fedavg"]


def average_states(states: list[dict], weights: list[float] | None = None
                   ) -> "OrderedDict[str, np.ndarray]":
    """Weighted average of state dicts (uniform when ``weights`` is None).

    All states must share exactly the same keys and shapes; this is
    validated so a mis-matched client model fails loudly.
    """
    if not states:
        raise ValueError("cannot aggregate zero states")
    keys = list(states[0].keys())
    for i, state in enumerate(states[1:], start=1):
        if list(state.keys()) != keys:
            raise KeyError(f"client state {i} keys do not match client 0")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("need one weight per state")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("aggregation weights must sum to a positive value")

    result: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key in keys:
        first = np.asarray(states[0][key], dtype=np.float64)
        acc = np.zeros_like(first)
        for state, w in zip(states, weights):
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != first.shape:
                raise ValueError(f"shape mismatch for {key!r} during aggregation")
            acc += (w / total) * value
        result[key] = acc
    return result


def fedavg(states: list[dict], num_examples: list[int]) -> "OrderedDict[str, np.ndarray]":
    """FedAvg: average weighted by each client's local example count."""
    if any(n <= 0 for n in num_examples):
        raise ValueError("example counts must be positive")
    return average_states(states, [float(n) for n in num_examples])
