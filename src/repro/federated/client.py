"""A federated client (platform centre, paper Definition 7).

Each client owns a private train/valid/test split of its local
trajectories, a local recovery model, and a trainer.  During a round it
downloads the global parameters, optionally computes its adaptive
distillation weight against the shared teacher (Algorithm 2), trains
locally, and uploads its parameters.  Raw trajectories never leave the
client - only state dicts cross the wire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import RecoveryModel
from ..core.distill import MetaKnowledgeDistiller
from ..core.mask import ConstraintMaskBuilder
from ..core.training import LocalTrainer, TrainingConfig
from ..data.dataset import TrajectoryDataset
from ..nn.flatten import FlatParameterSpace

__all__ = ["ClientData", "ClientSessionState", "FederatedClient"]


@dataclass(frozen=True)
class ClientData:
    """A client's private data splits."""

    train: TrajectoryDataset
    valid: TrajectoryDataset
    test: TrajectoryDataset

    @property
    def num_train(self) -> int:
        return len(self.train)


@dataclass(frozen=True)
class ClientSessionState:
    """The round-to-round mutable training state of one client.

    Everything a worker process needs (beyond the broadcast parameters)
    to continue this client's local optimisation exactly where the
    previous round left off: the batch-shuffling generator state, the
    optimiser's flat moment buffers, the state of every stochastic
    forward-pass generator inside the model (dropout), and the
    exchange codec's error-feedback residual (the quantisation error
    the client still owes the wire).  Shipping this with each round
    task makes results independent of *which* worker executes the
    client, so serial and process-pool rounds are bit-identical.
    """

    rng_state: dict
    optimizer_state: dict
    model_rng_states: tuple[dict, ...] = ()
    codec_residual: np.ndarray | None = None


class FederatedClient:
    """One participant in the federation."""

    def __init__(self, client_id: int, data: ClientData, model: RecoveryModel,
                 mask_builder: ConstraintMaskBuilder, training: TrainingConfig,
                 rng: np.random.Generator):
        if data.num_train == 0:
            raise ValueError(f"client {client_id} has no training data")
        self.client_id = client_id
        self.data = data
        self.model = model
        self.trainer = LocalTrainer(model, mask_builder, training, rng)
        self._space = FlatParameterSpace.from_module(model)
        # Error-feedback residual of the uplink exchange codec: the
        # quantisation error carried into the next round's encode.
        # None until the first quantised upload.
        self.codec_residual: np.ndarray | None = None

    def receive_global(self, global_state: dict) -> None:
        """Download the server's parameters (Algorithm 3 line 4)."""
        self.model.load_state_dict(global_state)

    def receive_global_flat(self, global_flat: np.ndarray) -> None:
        """Download the server's parameters as one flat vector."""
        self._space.set_flat(global_flat)

    def _train_locally(self, epochs: int,
                       distiller: MetaKnowledgeDistiller | None
                       ) -> dict[str, float]:
        lam = 0.0
        if distiller is not None and len(self.data.valid) > 0:
            lam = distiller.lambda_for_client(self.model, self.data.valid)
        losses = self.trainer.train_epochs(self.data.train, epochs=epochs,
                                           distiller=distiller, lam=lam)
        return {
            "loss": float(np.mean(losses)),
            "lambda": lam,
            "num_examples": float(self.data.num_train),
        }

    def local_train(self, epochs: int,
                    distiller: MetaKnowledgeDistiller | None = None
                    ) -> tuple[dict, dict[str, float]]:
        """Meta-knowledge enhanced local training (Algorithm 2).

        Returns the uploaded state dict and a metrics dict containing
        the mean local loss and the lambda that was used.
        """
        metrics = self._train_locally(epochs, distiller)
        return self.model.state_dict(), metrics

    def local_train_flat(self, epochs: int,
                         distiller: MetaKnowledgeDistiller | None = None
                         ) -> tuple[np.ndarray, dict[str, float]]:
        """Like :meth:`local_train` but uploads one flat ``(P,)`` vector."""
        metrics = self._train_locally(epochs, distiller)
        return self._space.get_flat(), metrics

    def flat_parameters(self, dtype=None) -> np.ndarray:
        """The current local parameters as one flat vector (exchange
        dtype by default; pass ``dtype=np.float64`` for an exact copy)."""
        return self._space.get_flat(dtype=dtype)

    # ------------------------------------------------------------------
    # session state (parallel round runners)
    # ------------------------------------------------------------------
    def _model_generators(self) -> list[np.random.Generator]:
        """Distinct forward-pass generators inside the model (dropout),
        in module traversal order.  Layers typically share the single
        construction generator; deduplicate by object identity so a
        shared stream is snapshotted/restored exactly once."""
        generators: list[np.random.Generator] = []
        seen: set[int] = set()
        for module in self.model.modules():
            rng = getattr(module, "_rng", None)
            if isinstance(rng, np.random.Generator) and id(rng) not in seen:
                seen.add(id(rng))
                generators.append(rng)
        return generators

    def session_state(self) -> ClientSessionState:
        """Snapshot the mutable local-training state (copies)."""
        return ClientSessionState(
            rng_state=self.trainer.rng.bit_generator.state,
            optimizer_state=self.trainer.optimizer.state_flat(),
            model_rng_states=tuple(g.bit_generator.state
                                   for g in self._model_generators()),
            codec_residual=(None if self.codec_residual is None
                            else self.codec_residual.copy()),
        )

    def load_session_state(self, state: ClientSessionState) -> None:
        """Restore a :meth:`session_state` snapshot exactly."""
        self.trainer.rng.bit_generator.state = state.rng_state
        self.trainer.optimizer.load_state_flat(state.optimizer_state)
        generators = self._model_generators()
        if len(generators) != len(state.model_rng_states):
            raise ValueError(
                f"session snapshot has {len(state.model_rng_states)} model "
                f"generator states, model exposes {len(generators)}"
            )
        for generator, rng_state in zip(generators, state.model_rng_states):
            generator.bit_generator.state = rng_state
        self.codec_residual = (None if state.codec_residual is None
                               else state.codec_residual.copy())

    def apply_round_result(self, upload_flat: np.ndarray,
                           session: ClientSessionState,
                           params_flat: np.ndarray | None = None) -> None:
        """Adopt a round executed elsewhere (a worker process): the
        trained parameters become the local model state and the returned
        session snapshot replaces the local one.  ``params_flat`` is the
        exact float64 parameter snapshot when the exchange dtype is
        reduced (the upload alone would lose the sub-float32 bits a
        serial client keeps)."""
        self._space.set_flat(upload_flat if params_flat is None else params_flat)
        self.load_session_state(session)

    def validation_accuracy(self) -> float:
        """Segment accuracy on the client's validation split."""
        if len(self.data.valid) == 0:
            return 0.0
        return self.trainer.segment_accuracy(self.data.valid)

    def test_accuracy(self) -> float:
        """Segment accuracy on the client's test split."""
        if len(self.data.test) == 0:
            return 0.0
        return self.trainer.segment_accuracy(self.data.test)
