"""A federated client (platform centre, paper Definition 7).

Each client owns a private train/valid/test split of its local
trajectories, a local recovery model, and a trainer.  During a round it
downloads the global parameters, optionally computes its adaptive
distillation weight against the shared teacher (Algorithm 2), trains
locally, and uploads its parameters.  Raw trajectories never leave the
client - only state dicts cross the wire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import RecoveryModel
from ..core.distill import MetaKnowledgeDistiller
from ..core.mask import ConstraintMaskBuilder
from ..core.training import LocalTrainer, TrainingConfig
from ..data.dataset import TrajectoryDataset
from ..nn.flatten import FlatParameterSpace

__all__ = ["ClientData", "FederatedClient"]


@dataclass(frozen=True)
class ClientData:
    """A client's private data splits."""

    train: TrajectoryDataset
    valid: TrajectoryDataset
    test: TrajectoryDataset

    @property
    def num_train(self) -> int:
        return len(self.train)


class FederatedClient:
    """One participant in the federation."""

    def __init__(self, client_id: int, data: ClientData, model: RecoveryModel,
                 mask_builder: ConstraintMaskBuilder, training: TrainingConfig,
                 rng: np.random.Generator):
        if data.num_train == 0:
            raise ValueError(f"client {client_id} has no training data")
        self.client_id = client_id
        self.data = data
        self.model = model
        self.trainer = LocalTrainer(model, mask_builder, training, rng)
        self._space = FlatParameterSpace.from_module(model)

    def receive_global(self, global_state: dict) -> None:
        """Download the server's parameters (Algorithm 3 line 4)."""
        self.model.load_state_dict(global_state)

    def receive_global_flat(self, global_flat: np.ndarray) -> None:
        """Download the server's parameters as one flat vector."""
        self._space.set_flat(global_flat)

    def _train_locally(self, epochs: int,
                       distiller: MetaKnowledgeDistiller | None
                       ) -> dict[str, float]:
        lam = 0.0
        if distiller is not None and len(self.data.valid) > 0:
            lam = distiller.lambda_for_client(self.model, self.data.valid)
        losses = self.trainer.train_epochs(self.data.train, epochs=epochs,
                                           distiller=distiller, lam=lam)
        return {
            "loss": float(np.mean(losses)),
            "lambda": lam,
            "num_examples": float(self.data.num_train),
        }

    def local_train(self, epochs: int,
                    distiller: MetaKnowledgeDistiller | None = None
                    ) -> tuple[dict, dict[str, float]]:
        """Meta-knowledge enhanced local training (Algorithm 2).

        Returns the uploaded state dict and a metrics dict containing
        the mean local loss and the lambda that was used.
        """
        metrics = self._train_locally(epochs, distiller)
        return self.model.state_dict(), metrics

    def local_train_flat(self, epochs: int,
                         distiller: MetaKnowledgeDistiller | None = None
                         ) -> tuple[np.ndarray, dict[str, float]]:
        """Like :meth:`local_train` but uploads one flat ``(P,)`` vector."""
        metrics = self._train_locally(epochs, distiller)
        return self._space.get_flat(), metrics

    def validation_accuracy(self) -> float:
        """Segment accuracy on the client's validation split."""
        if len(self.data.valid) == 0:
            return 0.0
        return self.trainer.segment_accuracy(self.data.valid)

    def test_accuracy(self) -> float:
        """Segment accuracy on the client's test split."""
        if len(self.data.test) == 0:
            return 0.0
        return self.trainer.segment_accuracy(self.data.test)
