"""Federated training orchestration (paper Algorithm 3 + Section IV-C).

:func:`build_federation` shards a synthetic world into per-client
train/valid/test datasets (Non-IID by driver home region by default),
and :class:`FederatedTrainer` runs the LightTR training loop:

1. (optional) pre-train the teacher meta-learner cyclically over the
   clients (Algorithm 1);
2. for each communication round: sample a client fraction, broadcast
   the global model, run meta-knowledge enhanced local training
   (Algorithm 2) on each selected client, and aggregate (Algorithm 3);
3. log per-round losses, accuracies, and communication bytes.

The trainer is model-agnostic: pass a different ``model_factory`` to
train any of the ``+FL`` baselines with the identical protocol (the
paper's FC+FL / RNN+FL / MTrajRec+FL / RNTrajRec+FL setting).

Round execution is pluggable (:mod:`repro.federated.runner`): with
``FederatedConfig(workers=N)`` (or ``FederatedTrainer(...,
workers=N)``) the selected clients of each round train in ``N``
persistent worker processes instead of sequentially.  With fixed seeds
the parallel run is bit-identical to the serial one — tasks carry each
client's RNG/optimiser session state and uploads are aggregated in
client-id order — and a failing pool falls back to serial execution
with a warning, continuing the run deterministically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import nn
from ..core.base import RecoveryModel
from ..core.distill import MetaKnowledgeDistiller
from ..core.mask import ConstraintMaskBuilder
from ..core.teacher import TeacherConfig, TeacherTrainingResult, train_teacher
from ..core.training import TrainingConfig, model_segment_accuracy
from ..data.dataset import TrajectoryDataset
from ..data.partition import partition_dataset
from ..data.synthetic import SyntheticDataset
from ..nn.flatten import FlatParameterSpace
from .client import ClientData, FederatedClient
from .communication import CommunicationLedger
from .runner import (
    ProcessPoolRunner,
    RoundExecutionError,
    RoundRunner,
    RoundTask,
    SerialRunner,
    WorkerSetup,
)
from .server import FederatedServer

__all__ = ["FederatedConfig", "RoundRecord", "FederatedResult",
           "build_federation", "FederatedTrainer", "train_isolated_then_average"]


@dataclass(frozen=True)
class FederatedConfig:
    """Knobs of the federated run (Algorithm 3 inputs)."""

    rounds: int = 10
    client_fraction: float = 1.0
    local_epochs: int = 2
    training: TrainingConfig = field(default_factory=TrainingConfig)
    use_meta: bool = True  # the meta-knowledge module (w/o Meta ablation: False)
    teacher: TeacherConfig = field(default_factory=TeacherConfig)
    lambda0: float = 5.0
    lt: float = 0.4
    dynamic_lambda: bool = True  # False = fixed lambda0 (design ablation)
    aggregation: str = "uniform"  # "uniform" (Alg. 3) or "fedavg" (weighted)
    workers: int = 0  # 0 = serial rounds; N > 0 = process-pool round runner

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if self.aggregation not in ("uniform", "fedavg"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial)")


@dataclass(frozen=True)
class RoundRecord:
    """History entry for one communication round."""

    round_index: int
    selected_clients: tuple[int, ...]
    mean_loss: float
    mean_lambda: float
    global_accuracy: float


@dataclass
class FederatedResult:
    """Everything a run produced."""

    global_model: RecoveryModel
    history: list[RoundRecord]
    ledger: CommunicationLedger
    teacher_result: TeacherTrainingResult | None
    clients: list[FederatedClient]
    global_test: TrajectoryDataset


def build_federation(dataset: SyntheticDataset, num_clients: int,
                     keep_ratio: float, scheme: str = "by_driver",
                     rng: np.random.Generator | None = None,
                     split: tuple[float, float, float] = (0.7, 0.2, 0.1),
                     ) -> tuple[list[ClientData], TrajectoryDataset]:
    """Shard a synthetic world into clients and a pooled test set.

    Each client's trajectories are split 7:2:1 (the paper's ratio); the
    pooled test set is the union of the clients' test splits, which is
    what the global model is evaluated on.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    shards = partition_dataset(dataset, num_clients, scheme=scheme, rng=rng)
    clients: list[ClientData] = []
    pooled_test = []
    for shard in shards:
        tds = TrajectoryDataset.from_matched(shard, dataset.grid, dataset.network,
                                             keep_ratio)
        train, valid, test = tds.split(split, rng=rng)
        if len(train) == 0:
            raise ValueError("a client received no training data; use more "
                             "trajectories or fewer clients")
        if len(valid) == 0:  # tiny shards: reuse train as valid
            valid = train
        clients.append(ClientData(train=train, valid=valid, test=test))
        pooled_test.extend(test.examples)
    if not pooled_test:
        # Fall back to validation examples so evaluation is never empty.
        for c in clients:
            pooled_test.extend(c.valid.examples)
    global_test = TrajectoryDataset(pooled_test, dataset.grid, dataset.network,
                                    keep_ratio)
    return clients, global_test


class FederatedTrainer:
    """Runs LightTR federated training end to end."""

    def __init__(self, model_factory: Callable[[], RecoveryModel],
                 client_data: list[ClientData],
                 mask_builder: ConstraintMaskBuilder,
                 config: FederatedConfig,
                 global_test: TrajectoryDataset,
                 seed: int = 0,
                 privatizer=None,
                 workers: int | None = None,
                 runner: RoundRunner | None = None):
        if not client_data:
            raise ValueError("need at least one client")
        self.model_factory = model_factory
        self.mask_builder = mask_builder
        self.config = config
        self.global_test = global_test
        self.privatizer = privatizer  # optional GaussianMechanism
        self._rng = np.random.default_rng(seed)

        self.server = FederatedServer(model_factory())
        self.clients = [
            FederatedClient(
                client_id=i, data=data, model=model_factory(),
                mask_builder=mask_builder, training=config.training,
                rng=np.random.default_rng(seed + 101 + i),
            )
            for i, data in enumerate(client_data)
        ]
        self.workers = config.workers if workers is None else workers
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial)")
        self._runner = runner  # explicit injection wins; else built lazily
        self._teacher_flat: np.ndarray | None = None

    # ------------------------------------------------------------------
    # round runner plumbing
    # ------------------------------------------------------------------
    def _worker_setup(self) -> WorkerSetup:
        return WorkerSetup(
            model_factory=self.model_factory,
            client_data=tuple(client.data for client in self.clients),
            mask_builder=self.mask_builder,
            training=self.config.training,
            lambda0=self.config.lambda0,
            lt=self.config.lt,
            dynamic_lambda=self.config.dynamic_lambda,
        )

    def _get_runner(self) -> RoundRunner:
        if self._runner is None:
            if self.workers > 0:
                self._runner = ProcessPoolRunner(
                    self._worker_setup(),
                    workers=min(self.workers, len(self.clients)),
                )
            else:
                self._runner = SerialRunner(self.clients)
        return self._runner

    def _fall_back_to_serial(self, reason: Exception) -> RoundRunner:
        warnings.warn(
            f"parallel round execution failed ({reason}); falling back to "
            f"serial rounds for the rest of the run", RuntimeWarning,
            stacklevel=3,
        )
        if self._runner is not None:
            self._runner.close()
        self._runner = SerialRunner(self.clients)
        return self._runner

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------
    def run(self) -> FederatedResult:
        """Teacher pre-training (optional) + Algorithm 3 rounds."""
        teacher_result = None
        distiller = None
        if self.config.use_meta:
            teacher_result = self._train_teacher()
            distiller = MetaKnowledgeDistiller(
                teacher_result.teacher, self.mask_builder,
                lambda0=self.config.lambda0, lt=self.config.lt,
                dynamic=self.config.dynamic_lambda,
            )
            # The teacher is frozen after pre-training: snapshot it once
            # (always float64 — the teacher never crosses the wire as a
            # true upload) for worker-side distiller reconstruction.
            self._teacher_flat = FlatParameterSpace.from_module(
                teacher_result.teacher).get_flat(dtype=np.float64)

        ledger = CommunicationLedger()
        history: list[RoundRecord] = []
        try:
            for round_index in range(self.config.rounds):
                record = self._run_round(round_index, distiller, ledger)
                history.append(record)
        finally:
            if self._runner is not None:
                self._runner.close()

        return FederatedResult(
            global_model=self.server.global_model,
            history=history,
            ledger=ledger,
            teacher_result=teacher_result,
            clients=self.clients,
            global_test=self.global_test,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _train_teacher(self) -> TeacherTrainingResult:
        splits = [(c.data.train, c.data.valid) for c in self.clients]
        teacher_config = TeacherConfig(
            lt=self.config.lt,
            epochs_per_client=self.config.teacher.epochs_per_client,
            cycles=self.config.teacher.cycles,
            subset_fraction=self.config.teacher.subset_fraction,
            training=self.config.training,
        )
        return train_teacher(self.model_factory, splits, self.mask_builder,
                             teacher_config, self._rng)

    def _run_round(self, round_index: int,
                   distiller: MetaKnowledgeDistiller | None,
                   ledger: CommunicationLedger) -> RoundRecord:
        selected = self.server.select_clients(
            len(self.clients), self.config.client_fraction, self._rng
        )
        # The whole exchange moves flat (P,) vectors: broadcast, upload,
        # privatisation, and the stacked (C, P) average.
        global_flat = self.server.global_flat()
        runner = self._get_runner()
        tasks = [
            RoundTask(
                client_id=client_id,
                global_flat=global_flat,
                epochs=self.config.local_epochs,
                teacher_flat=self._teacher_flat if distiller is not None else None,
                session=(self.clients[client_id].session_state()
                         if runner.ships_state else None),
                fused_kernels=nn.fused_kernels_enabled(),
                sparse_masks=nn.sparse_masks_enabled(),
                packed_decode=nn.packed_decode_enabled(),
                exchange_dtype=nn.get_default_dtype().name,
                compute_dtype=nn.get_compute_dtype().name,
                backend=nn.get_backend(),
            )
            for client_id in selected  # ascending: fixes aggregation order
        ]
        try:
            results = runner.run_round(tasks, distiller)
        except RoundExecutionError as exc:
            if not runner.fallible:
                raise
            # The tasks still hold the pre-round session snapshots, so
            # the serial re-run restores them and continues bit-exactly.
            results = self._fall_back_to_serial(exc).run_round(tasks, distiller)

        uploaded: list[np.ndarray] = []
        weights: list[float] = []
        losses: list[float] = []
        lambdas: list[float] = []
        exchange_dtype = nn.get_default_dtype()
        for result in results:  # task (= ascending client-id) order
            if result.session is not None:
                # The round ran in a worker: adopt its trained state so
                # the live clients stay interchangeable with serial runs.
                self.clients[result.client_id].apply_round_result(
                    result.upload_flat, result.session, result.params_flat
                )
            flat = result.upload_flat
            if self.privatizer is not None:
                flat = self.privatizer.privatize_update_flat(flat, global_flat)
                flat = np.asarray(flat, dtype=exchange_dtype)
            uploaded.append(flat)
            weights.append(result.metrics["num_examples"])
            losses.append(result.metrics["loss"])
            lambdas.append(result.metrics["lambda"])

        agg_weights = weights if self.config.aggregation == "fedavg" else None
        self.server.aggregate_flat(uploaded, agg_weights)
        ledger.record_round(round_index, global_flat, uploaded)

        accuracy = model_segment_accuracy(
            self.server.global_model, self.mask_builder, self.global_test
        )
        return RoundRecord(
            round_index=round_index,
            selected_clients=tuple(selected),
            mean_loss=float(np.mean(losses)),
            mean_lambda=float(np.mean(lambdas)),
            global_accuracy=accuracy,
        )


def train_isolated_then_average(model_factory: Callable[[], RecoveryModel],
                                client_data: list[ClientData],
                                mask_builder: ConstraintMaskBuilder,
                                config: FederatedConfig,
                                global_test: TrajectoryDataset,
                                seed: int = 0) -> FederatedResult:
    """The "w/o FL" ablation: no server, clients train in isolation and
    exchange final models pairwise (implemented as one final average).

    Matches the paper's Figure 7 variant where the central server is
    removed and clients swap their local models with each other.  The
    exchange — averaging and ledger accounting alike — moves the same
    flat ``(P,)`` vectors as the main federated path, so byte counts
    are directly comparable between the two (and both honour the
    exchange dtype of :func:`repro.nn.set_default_dtype`).
    """
    trainer = FederatedTrainer(model_factory, client_data, mask_builder,
                               config, global_test, seed=seed)
    total_epochs = config.rounds * config.local_epochs
    flats, losses = [], []
    for client in trainer.clients:
        epoch_losses = client.trainer.train_epochs(client.data.train,
                                                   epochs=total_epochs)
        flats.append(client.flat_parameters())
        losses.append(float(np.mean(epoch_losses)))
    trainer.server.aggregate_flat(flats)
    ledger = CommunicationLedger()
    # One exchange at the end: every client ships its model to the others.
    ledger.record_round(0, trainer.server.global_flat(), flats)
    accuracy = model_segment_accuracy(trainer.server.global_model, mask_builder,
                                      global_test)
    history = [RoundRecord(0, tuple(range(len(trainer.clients))),
                           float(np.mean(losses)), 0.0, accuracy)]
    return FederatedResult(
        global_model=trainer.server.global_model,
        history=history,
        ledger=ledger,
        teacher_result=None,
        clients=trainer.clients,
        global_test=global_test,
    )
