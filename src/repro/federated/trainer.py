"""Federated training orchestration (paper Algorithm 3 + Section IV-C).

:func:`build_federation` shards a synthetic world into per-client
train/valid/test datasets (Non-IID by driver home region by default),
and :class:`FederatedTrainer` runs the LightTR training loop:

1. (optional) pre-train the teacher meta-learner cyclically over the
   clients (Algorithm 1);
2. for each communication round: sample a client fraction, broadcast
   the global model, run meta-knowledge enhanced local training
   (Algorithm 2) on each selected client, and aggregate (Algorithm 3);
3. log per-round losses, accuracies, and communication bytes.

The trainer is model-agnostic: pass a different ``model_factory`` to
train any of the ``+FL`` baselines with the identical protocol (the
paper's FC+FL / RNN+FL / MTrajRec+FL / RNTrajRec+FL setting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.base import RecoveryModel
from ..core.distill import MetaKnowledgeDistiller
from ..core.mask import ConstraintMaskBuilder
from ..core.teacher import TeacherConfig, TeacherTrainingResult, train_teacher
from ..core.training import TrainingConfig, model_segment_accuracy
from ..data.dataset import TrajectoryDataset
from ..data.partition import partition_dataset
from ..data.synthetic import SyntheticDataset
from .client import ClientData, FederatedClient
from .communication import CommunicationLedger
from .server import FederatedServer

__all__ = ["FederatedConfig", "RoundRecord", "FederatedResult",
           "build_federation", "FederatedTrainer", "train_isolated_then_average"]


@dataclass(frozen=True)
class FederatedConfig:
    """Knobs of the federated run (Algorithm 3 inputs)."""

    rounds: int = 10
    client_fraction: float = 1.0
    local_epochs: int = 2
    training: TrainingConfig = field(default_factory=TrainingConfig)
    use_meta: bool = True  # the meta-knowledge module (w/o Meta ablation: False)
    teacher: TeacherConfig = field(default_factory=TeacherConfig)
    lambda0: float = 5.0
    lt: float = 0.4
    dynamic_lambda: bool = True  # False = fixed lambda0 (design ablation)
    aggregation: str = "uniform"  # "uniform" (Alg. 3) or "fedavg" (weighted)

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if self.aggregation not in ("uniform", "fedavg"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")


@dataclass(frozen=True)
class RoundRecord:
    """History entry for one communication round."""

    round_index: int
    selected_clients: tuple[int, ...]
    mean_loss: float
    mean_lambda: float
    global_accuracy: float


@dataclass
class FederatedResult:
    """Everything a run produced."""

    global_model: RecoveryModel
    history: list[RoundRecord]
    ledger: CommunicationLedger
    teacher_result: TeacherTrainingResult | None
    clients: list[FederatedClient]
    global_test: TrajectoryDataset


def build_federation(dataset: SyntheticDataset, num_clients: int,
                     keep_ratio: float, scheme: str = "by_driver",
                     rng: np.random.Generator | None = None,
                     split: tuple[float, float, float] = (0.7, 0.2, 0.1),
                     ) -> tuple[list[ClientData], TrajectoryDataset]:
    """Shard a synthetic world into clients and a pooled test set.

    Each client's trajectories are split 7:2:1 (the paper's ratio); the
    pooled test set is the union of the clients' test splits, which is
    what the global model is evaluated on.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    shards = partition_dataset(dataset, num_clients, scheme=scheme, rng=rng)
    clients: list[ClientData] = []
    pooled_test = []
    for shard in shards:
        tds = TrajectoryDataset.from_matched(shard, dataset.grid, dataset.network,
                                             keep_ratio)
        train, valid, test = tds.split(split, rng=rng)
        if len(train) == 0:
            raise ValueError("a client received no training data; use more "
                             "trajectories or fewer clients")
        if len(valid) == 0:  # tiny shards: reuse train as valid
            valid = train
        clients.append(ClientData(train=train, valid=valid, test=test))
        pooled_test.extend(test.examples)
    if not pooled_test:
        # Fall back to validation examples so evaluation is never empty.
        for c in clients:
            pooled_test.extend(c.valid.examples)
    global_test = TrajectoryDataset(pooled_test, dataset.grid, dataset.network,
                                    keep_ratio)
    return clients, global_test


class FederatedTrainer:
    """Runs LightTR federated training end to end."""

    def __init__(self, model_factory: Callable[[], RecoveryModel],
                 client_data: list[ClientData],
                 mask_builder: ConstraintMaskBuilder,
                 config: FederatedConfig,
                 global_test: TrajectoryDataset,
                 seed: int = 0,
                 privatizer=None):
        if not client_data:
            raise ValueError("need at least one client")
        self.model_factory = model_factory
        self.mask_builder = mask_builder
        self.config = config
        self.global_test = global_test
        self.privatizer = privatizer  # optional GaussianMechanism
        self._rng = np.random.default_rng(seed)

        self.server = FederatedServer(model_factory())
        self.clients = [
            FederatedClient(
                client_id=i, data=data, model=model_factory(),
                mask_builder=mask_builder, training=config.training,
                rng=np.random.default_rng(seed + 101 + i),
            )
            for i, data in enumerate(client_data)
        ]

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------
    def run(self) -> FederatedResult:
        """Teacher pre-training (optional) + Algorithm 3 rounds."""
        teacher_result = None
        distiller = None
        if self.config.use_meta:
            teacher_result = self._train_teacher()
            distiller = MetaKnowledgeDistiller(
                teacher_result.teacher, self.mask_builder,
                lambda0=self.config.lambda0, lt=self.config.lt,
                dynamic=self.config.dynamic_lambda,
            )

        ledger = CommunicationLedger()
        history: list[RoundRecord] = []
        for round_index in range(self.config.rounds):
            record = self._run_round(round_index, distiller, ledger)
            history.append(record)

        return FederatedResult(
            global_model=self.server.global_model,
            history=history,
            ledger=ledger,
            teacher_result=teacher_result,
            clients=self.clients,
            global_test=self.global_test,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _train_teacher(self) -> TeacherTrainingResult:
        splits = [(c.data.train, c.data.valid) for c in self.clients]
        teacher_config = TeacherConfig(
            lt=self.config.lt,
            epochs_per_client=self.config.teacher.epochs_per_client,
            cycles=self.config.teacher.cycles,
            subset_fraction=self.config.teacher.subset_fraction,
            training=self.config.training,
        )
        return train_teacher(self.model_factory, splits, self.mask_builder,
                             teacher_config, self._rng)

    def _run_round(self, round_index: int,
                   distiller: MetaKnowledgeDistiller | None,
                   ledger: CommunicationLedger) -> RoundRecord:
        selected = self.server.select_clients(
            len(self.clients), self.config.client_fraction, self._rng
        )
        # The whole exchange moves flat (P,) vectors: broadcast, upload,
        # privatisation, and the stacked (C, P) average.
        global_flat = self.server.global_flat()
        uploaded: list[np.ndarray] = []
        weights: list[float] = []
        losses: list[float] = []
        lambdas: list[float] = []
        for client_id in selected:
            client = self.clients[client_id]
            client.receive_global_flat(global_flat)
            flat, metrics = client.local_train_flat(
                epochs=self.config.local_epochs, distiller=distiller
            )
            if self.privatizer is not None:
                flat = self.privatizer.privatize_update_flat(flat, global_flat)
            uploaded.append(flat)
            weights.append(metrics["num_examples"])
            losses.append(metrics["loss"])
            lambdas.append(metrics["lambda"])

        agg_weights = weights if self.config.aggregation == "fedavg" else None
        self.server.aggregate_flat(uploaded, agg_weights)
        ledger.record_round(round_index, global_flat, uploaded)

        accuracy = model_segment_accuracy(
            self.server.global_model, self.mask_builder, self.global_test
        )
        return RoundRecord(
            round_index=round_index,
            selected_clients=tuple(selected),
            mean_loss=float(np.mean(losses)),
            mean_lambda=float(np.mean(lambdas)),
            global_accuracy=accuracy,
        )


def train_isolated_then_average(model_factory: Callable[[], RecoveryModel],
                                client_data: list[ClientData],
                                mask_builder: ConstraintMaskBuilder,
                                config: FederatedConfig,
                                global_test: TrajectoryDataset,
                                seed: int = 0) -> FederatedResult:
    """The "w/o FL" ablation: no server, clients train in isolation and
    exchange final models pairwise (implemented as one final average).

    Matches the paper's Figure 7 variant where the central server is
    removed and clients swap their local models with each other.
    """
    trainer = FederatedTrainer(model_factory, client_data, mask_builder,
                               config, global_test, seed=seed)
    total_epochs = config.rounds * config.local_epochs
    states, losses = [], []
    for client in trainer.clients:
        epoch_losses = client.trainer.train_epochs(client.data.train,
                                                   epochs=total_epochs)
        states.append(client.model.state_dict())
        losses.append(float(np.mean(epoch_losses)))
    trainer.server.aggregate(states)
    ledger = CommunicationLedger()
    # One exchange at the end: every client ships its model to the others.
    ledger.record_round(0, trainer.server.global_state(), states)
    accuracy = model_segment_accuracy(trainer.server.global_model, mask_builder,
                                      global_test)
    history = [RoundRecord(0, tuple(range(len(trainer.clients))),
                           float(np.mean(losses)), 0.0, accuracy)]
    return FederatedResult(
        global_model=trainer.server.global_model,
        history=history,
        ledger=ledger,
        teacher_result=None,
        clients=trainer.clients,
        global_test=global_test,
    )
