"""Federated training orchestration (paper Algorithm 3 + Section IV-C).

:func:`build_federation` shards a synthetic world into per-client
train/valid/test datasets (Non-IID by driver home region by default),
and :class:`FederatedTrainer` runs the LightTR training loop:

1. (optional) pre-train the teacher meta-learner cyclically over the
   clients (Algorithm 1);
2. for each communication round: sample a client fraction, broadcast
   the global model, run meta-knowledge enhanced local training
   (Algorithm 2) on each selected client, and aggregate (Algorithm 3);
3. log per-round losses, accuracies, communication bytes, and failure
   telemetry.

The trainer is model-agnostic: pass a different ``model_factory`` to
train any of the ``+FL`` baselines with the identical protocol (the
paper's FC+FL / RNN+FL / MTrajRec+FL / RNTrajRec+FL setting).

Round execution is pluggable (:mod:`repro.federated.runner`): with
``FederatedConfig(workers=N)`` the selected clients of each round train
in ``N`` persistent worker processes instead of sequentially.  With
fixed seeds the parallel run is bit-identical to the serial one — tasks
carry each client's RNG/optimiser session state and uploads are
aggregated in client-id order.

Fault tolerance (docs/ROBUSTNESS.md)
------------------------------------
The runtime degrades gracefully instead of failing closed:

* per-client failures — an injected fault from a
  :class:`~repro.federated.faults.FaultPlan`, a blown per-task
  deadline, or a task exception — are retried up to ``task_retries``
  times and then recorded in the round's telemetry, never raised;
* uploads are screened by
  :meth:`~repro.federated.server.FederatedServer.validate_upload`
  before aggregation, so a NaN/Inf/blown-norm/wrong-shape payload
  counts as a client failure instead of poisoning the global average;
* the round aggregates the survivors (FedAvg weights renormalise over
  them automatically) when at least ``min_clients_per_round`` uploads
  pass validation; below quorum the global vector is held and the
  round is recorded as skipped with NaN-free sentinel statistics;
* a whole-pool failure triggers an in-runner pool rebuild, then a
  one-round serial re-run; only *consecutive* whole-pool failures
  demote the run to serial permanently (with a warning);
* ``checkpoint_every``/``checkpoint_dir`` persist a
  :class:`~repro.federated.checkpoint.FederatedCheckpoint` every K
  rounds and ``resume_from`` continues a killed run bit-identically.

Under the same fault plan, serial and process-pool runs still produce
bit-identical round histories — the fault schedule is a pure function
of ``(round, client, attempt)``, not of scheduling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from .. import nn
from ..core.base import RecoveryModel
from ..core.distill import MetaKnowledgeDistiller
from ..core.mask import ConstraintMaskBuilder
from ..core.teacher import TeacherConfig, TeacherTrainingResult, train_teacher
from ..core.training import TrainingConfig, model_segment_accuracy
from ..data.dataset import TrajectoryDataset
from ..data.partition import partition_dataset
from ..data.synthetic import SyntheticDataset
from ..nn.flatten import FlatParameterSpace
from .arena import ClientShard, LazyClientList, ModelArena, resolve_lazy_clients
from .asynchrony import (
    AsyncAggregatorState,
    LatencyModel,
    LatencySpec,
    PendingUpload,
    resolve_latency_model,
    staleness_weights,
)
from .checkpoint import FederatedCheckpoint, checkpoint_path, latest_checkpoint
from .client import ClientData, FederatedClient
from .communication import (
    Codec,
    CommunicationLedger,
    encode_with_feedback,
    payload_num_bytes,
    resolve_exchange_codec,
)
from .faults import FaultPlan, FaultSpec, resolve_fault_plan
from .runner import (
    ArenaRunner,
    ClientFailure,
    ProcessPoolRunner,
    RetryPolicy,
    RoundExecution,
    RoundExecutionError,
    RoundRunner,
    RoundTask,
    SerialRunner,
    WorkerSetup,
)
from .server import AggregationSlab, DEFAULT_MAX_UPLOAD_NORM, FederatedServer

__all__ = ["FederatedConfig", "RoundRecord", "FederatedResult",
           "build_federation", "FederatedTrainer", "train_isolated_then_average"]


@dataclass(frozen=True)
class FederatedConfig:
    """Knobs of the federated run (Algorithm 3 inputs + robustness)."""

    rounds: int = 10
    client_fraction: float = 1.0
    local_epochs: int = 2
    training: TrainingConfig = field(default_factory=TrainingConfig)
    use_meta: bool = True  # the meta-knowledge module (w/o Meta ablation: False)
    teacher: TeacherConfig = field(default_factory=TeacherConfig)
    lambda0: float = 5.0
    lt: float = 0.4
    dynamic_lambda: bool = True  # False = fixed lambda0 (design ablation)
    aggregation: str = "uniform"  # "uniform" (Alg. 3) or "fedavg" (weighted)
    workers: int = 0  # 0 = serial rounds; N > 0 = process-pool round runner
    # --- robustness knobs (docs/ROBUSTNESS.md) ---
    min_clients_per_round: int = 1  # quorum: aggregate when >= this many survive
    task_retries: int = 1  # re-attempts per failed client task
    task_deadline: float | None = None  # per-task wall-clock seconds
    task_backoff: float = 0.0  # sleep backoff * attempt before a retry
    max_upload_norm: float | None = DEFAULT_MAX_UPLOAD_NORM  # validation bound
    fault_plan: "FaultPlan | FaultSpec | str | None" = None  # injection schedule
    checkpoint_every: int = 0  # persist state every K rounds (0 = never)
    checkpoint_dir: str | None = None
    resume_from: str | None = None  # checkpoint file or directory
    # --- communication knobs (docs/PERFORMANCE.md "Communication") ---
    exchange_codec: "Codec | str | None" = None  # None -> REPRO_EXCHANGE_CODEC
    # --- async round mode (docs/ROBUSTNESS.md "Asynchronous rounds") ---
    async_buffer: int = 0  # 0 = synchronous barrier; K >= 1 = FedBuff buffer
    staleness_alpha: float = 0.5  # staleness discount exponent (0 = FedAvg)
    clients_per_round: float | None = None  # async sampling fraction
    # (defaults to client_fraction); sampled from *idle* clients only
    latency: "LatencyModel | LatencySpec | str | None" = None  # arrival model
    # --- client-scale knobs (docs/PERFORMANCE.md "Client scale") ---
    lazy_clients: bool | None = None  # None -> REPRO_LAZY_CLIENTS forcing
    arena_size: int = 1  # live model/trainer slots in lazy mode
    collation_cache_entries: int = 0  # per-dataset batch-cache cap (0 = default)

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if self.aggregation not in ("uniform", "fedavg"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial)")
        if self.min_clients_per_round < 1:
            raise ValueError("min_clients_per_round must be >= 1")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be positive (or None)")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 = never)")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        if self.async_buffer < 0:
            raise ValueError("async_buffer must be >= 0 (0 = synchronous)")
        if self.staleness_alpha < 0:
            raise ValueError("staleness_alpha must be >= 0")
        if (self.clients_per_round is not None
                and not 0.0 < self.clients_per_round <= 1.0):
            raise ValueError("clients_per_round must be in (0, 1]")
        if self.arena_size < 1:
            raise ValueError("arena_size must be >= 1")
        if self.collation_cache_entries < 0:
            raise ValueError(
                "collation_cache_entries must be >= 0 (0 = dataset default)")


@dataclass(frozen=True)
class RoundRecord:
    """History entry for one communication round.

    The failure telemetry is part of the serial-vs-parallel determinism
    contract: under the same fault plan both backends record identical
    failures, retries, and survivor sets.  Only ``fallback_cause`` is
    excluded from equality — it describes *this execution's* pool
    health (e.g. a worker killed by the OS), not the training
    trajectory.
    """

    round_index: int
    selected_clients: tuple[int, ...]
    mean_loss: float
    mean_lambda: float
    global_accuracy: float
    completed_clients: tuple[int, ...] = ()  # uploads that passed validation
    # (async mode: uploads *applied* this wave, in virtual-arrival order)
    failures: tuple[ClientFailure, ...] = ()  # ascending client id
    retries: tuple[tuple[int, int], ...] = ()  # (client_id, extra attempts)
    aggregated: bool = True  # False = quorum failed, global vector held
    fallback_cause: str = field(default="", compare=False)
    # --- async-mode telemetry (defaults keep synchronous records as-is) ---
    flushes: int = 0  # buffer flushes applied to the global model this wave
    mean_staleness: float = 0.0  # mean staleness of the uploads flushed
    in_flight: tuple[int, ...] = ()  # clients still travelling/buffered after

    @property
    def failed_clients(self) -> tuple[int, ...]:
        return tuple(f.client_id for f in self.failures)

    @property
    def failure_kinds(self) -> tuple[str, ...]:
        return tuple(f.kind for f in self.failures)

    @property
    def retried_clients(self) -> tuple[int, ...]:
        return tuple(client_id for client_id, _ in self.retries)

    @property
    def total_retries(self) -> int:
        return sum(count for _, count in self.retries)


@dataclass
class FederatedResult:
    """Everything a run produced."""

    global_model: RecoveryModel
    history: list[RoundRecord]
    ledger: CommunicationLedger
    teacher_result: TeacherTrainingResult | None
    # Eager: the live client list.  Lazy: a LazyClientList view that
    # materialises a client from its shard on indexing.
    clients: "list[FederatedClient] | LazyClientList"
    global_test: TrajectoryDataset


def build_federation(dataset: SyntheticDataset, num_clients: int,
                     keep_ratio: float, scheme: str = "by_driver",
                     rng: np.random.Generator | None = None,
                     split: tuple[float, float, float] = (0.7, 0.2, 0.1),
                     ) -> tuple[list[ClientData], TrajectoryDataset]:
    """Shard a synthetic world into clients and a pooled test set.

    Each client's trajectories are split 7:2:1 (the paper's ratio); the
    pooled test set is the union of the clients' test splits, which is
    what the global model is evaluated on.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    shards = partition_dataset(dataset, num_clients, scheme=scheme, rng=rng)
    clients: list[ClientData] = []
    pooled_test = []
    for shard in shards:
        tds = TrajectoryDataset.from_matched(shard, dataset.grid, dataset.network,
                                             keep_ratio)
        train, valid, test = tds.split(split, rng=rng)
        if len(train) == 0:
            raise ValueError("a client received no training data; use more "
                             "trajectories or fewer clients")
        if len(valid) == 0:  # tiny shards: reuse train as valid
            valid = train
        clients.append(ClientData(train=train, valid=valid, test=test))
        pooled_test.extend(test.examples)
    if not pooled_test:
        # Fall back to validation examples so evaluation is never empty.
        for c in clients:
            pooled_test.extend(c.valid.examples)
    global_test = TrajectoryDataset(pooled_test, dataset.grid, dataset.network,
                                    keep_ratio)
    return clients, global_test


class FederatedTrainer:
    """Runs LightTR federated training end to end."""

    def __init__(self, model_factory: Callable[[], RecoveryModel],
                 client_data: list[ClientData],
                 mask_builder: ConstraintMaskBuilder,
                 config: FederatedConfig,
                 global_test: TrajectoryDataset,
                 seed: int = 0,
                 privatizer=None,
                 workers: int | None = None,
                 runner: RoundRunner | None = None):
        if not client_data:
            raise ValueError("need at least one client")
        self.model_factory = model_factory
        self.mask_builder = mask_builder
        self.config = config
        self.global_test = global_test
        self.privatizer = privatizer  # optional GaussianMechanism
        self._rng = np.random.default_rng(seed)
        # None lets the REPRO_FAULT_PLAN environment forcing apply.
        self.fault_plan = resolve_fault_plan(config.fault_plan)
        # None lets the REPRO_EXCHANGE_CODEC environment forcing apply.
        self.codec = resolve_exchange_codec(config.exchange_codec)
        self._downlink_residual: np.ndarray | None = None
        self.latency = resolve_latency_model(config.latency)
        # The async aggregator state (None = synchronous barrier rounds).
        self._async = (AsyncAggregatorState()
                       if config.async_buffer > 0 else None)

        self.server = FederatedServer(model_factory())
        self._client_data = list(client_data)
        if config.collation_cache_entries:
            # Bound every dataset's per-chunk collation cache: at
            # thousand-client scale the default LRU budget, multiplied
            # by N clients x 3 splits, is a hidden memory multiplier.
            for data in self._client_data:
                for split in (data.train, data.valid, data.test):
                    split.set_batch_cache_limit(config.collation_cache_entries)
            global_test.set_batch_cache_limit(config.collation_cache_entries)
        # None defers to the process default (REPRO_LAZY_CLIENTS forcing).
        self.lazy = resolve_lazy_clients(config.lazy_clients)
        if self.lazy:
            # Client count is a data-size problem: each client is a
            # shard (data + flat session vectors), models live in a
            # bounded arena, and ``clients`` is a materialise-on-read
            # view.  The pristine template reproduces the eager
            # constructor exactly — deterministic factory parameters,
            # zeroed optimiser moments — and each shard gets the same
            # seeded batch-shuffle generator an eager client would own.
            self.arena = ModelArena(model_factory, mask_builder,
                                    config.training, size=config.arena_size)
            _, pristine = self.arena.template(self._client_data[0])
            self.shards = [
                ClientShard(
                    client_id=i, data=data,
                    session=replace(pristine, rng_state=np.random.default_rng(
                        seed + 101 + i).bit_generator.state),
                )
                for i, data in enumerate(self._client_data)
            ]
            self.clients = LazyClientList(self)
        else:
            self.arena = None
            self.shards = None
            self.clients = [
                FederatedClient(
                    client_id=i, data=data, model=model_factory(),
                    mask_builder=mask_builder, training=config.training,
                    rng=np.random.default_rng(seed + 101 + i),
                )
                for i, data in enumerate(self._client_data)
            ]
        # One round's uploads stage into a preallocated float64 slab;
        # decode, validation, and the FedAvg reduction run over one
        # contiguous (C, P) matrix instead of C boxed vectors.
        self._slab = AggregationSlab(self.server.num_parameters)
        self.workers = config.workers if workers is None else workers
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial)")
        self._runner = runner  # explicit injection wins; else built lazily
        self._teacher_flat: np.ndarray | None = None
        self._setup_has_teacher = False  # set when a WorkerSetup is built
        self._last_accuracy: float | None = None  # held when quorum fails
        self._pool_failures = 0  # consecutive whole-pool failures

    # ------------------------------------------------------------------
    # round runner plumbing
    # ------------------------------------------------------------------
    def _worker_setup(self) -> WorkerSetup:
        # The teacher rides the setup (shipped once per worker at pool
        # start-up), not each task: tasks built afterwards carry the
        # ``use_setup_teacher`` sentinel instead of a per-task (P,)
        # teacher copy.  Runners are built after teacher pre-training,
        # so the snapshot — when the run has one — exists by now.
        self._setup_has_teacher = self._teacher_flat is not None
        return WorkerSetup(
            model_factory=self.model_factory,
            client_data=tuple(self._client_data),
            mask_builder=self.mask_builder,
            training=self.config.training,
            lambda0=self.config.lambda0,
            lt=self.config.lt,
            dynamic_lambda=self.config.dynamic_lambda,
            fault_plan=self.fault_plan,
            teacher_flat=self._teacher_flat,
        )

    def _get_runner(self) -> RoundRunner:
        if self._runner is None:
            if self.workers > 0:
                self._runner = ProcessPoolRunner(
                    self._worker_setup(),
                    workers=min(self.workers, len(self._client_data)),
                )
            elif self.lazy:
                # Serial lazy rounds run through the trainer's own
                # arena — pool-worker semantics (full hydration per
                # task), at most ``arena_size`` live models.
                self._runner = ArenaRunner(self._worker_setup(), self.arena)
            else:
                self._runner = SerialRunner(self.clients, self.fault_plan)
        return self._runner

    def _retry_policy(self) -> RetryPolicy:
        return RetryPolicy(retries=self.config.task_retries,
                           deadline=self.config.task_deadline,
                           backoff=self.config.task_backoff)

    def _serial_fallback_runner(self) -> RoundRunner:
        """The in-process runner a broken pool degrades to (arena-backed
        in lazy mode — live clients don't exist there)."""
        if self.lazy:
            return ArenaRunner(self._worker_setup(), self.arena)
        return SerialRunner(self.clients, self.fault_plan)

    def _handle_pool_failure(self, reason: Exception) -> RoundRunner:
        """One whole-pool failure: re-run this round serially, keep the
        pool runner for the next round (its dead pool rebuilds lazily).
        Consecutive whole-pool failures demote the run permanently."""
        self._pool_failures += 1
        if self._pool_failures >= 2:
            return self._fall_back_to_serial(reason)
        warnings.warn(
            f"parallel round execution failed ({reason}); falling back to "
            f"serial execution for this round", RuntimeWarning,
            stacklevel=3,
        )
        return self._serial_fallback_runner()

    def _fall_back_to_serial(self, reason: Exception) -> RoundRunner:
        warnings.warn(
            f"parallel round execution failed ({reason}); falling back to "
            f"serial rounds for the rest of the run", RuntimeWarning,
            stacklevel=3,
        )
        if self._runner is not None:
            self._runner.close()
        self._runner = self._serial_fallback_runner()
        return self._runner

    # ------------------------------------------------------------------
    # checkpoint/resume plumbing
    # ------------------------------------------------------------------
    def _load_resume_checkpoint(self) -> FederatedCheckpoint | None:
        target = self.config.resume_from
        if not target:
            return None
        path = latest_checkpoint(target)
        if path is None:
            raise FileNotFoundError(f"no checkpoint found at {target!r}")
        return FederatedCheckpoint.load(path)

    def _restore(self, checkpoint: FederatedCheckpoint,
                 ledger: CommunicationLedger,
                 history: list[RoundRecord]) -> int:
        """Rewind every mutable input of the remaining rounds."""
        if len(checkpoint.client_sessions) != len(self._client_data):
            raise ValueError(
                f"checkpoint has {len(checkpoint.client_sessions)} clients, "
                f"trainer has {len(self._client_data)} — not the same "
                f"federation")
        if checkpoint.lazy_clients != self.lazy:
            raise ValueError(
                "checkpoint client mode does not match the trainer: "
                f"checkpoint is {'lazy' if checkpoint.lazy_clients else 'eager'}"
                f", trainer is {'lazy' if self.lazy else 'eager'} "
                "(set FederatedConfig.lazy_clients to the mode the run "
                "was checkpointed in)")
        expected = self.server.global_flat(dtype=np.float64).size
        if checkpoint.global_flat.size != expected:
            raise ValueError(
                f"checkpoint global vector has {checkpoint.global_flat.size} "
                f"parameters, this trainer's model has {expected} — not the "
                f"same federation")
        self.server.load_global_flat(checkpoint.global_flat)
        if self.lazy:
            for shard, session, params in zip(self.shards,
                                              checkpoint.client_sessions,
                                              checkpoint.client_params):
                shard.session = session
                shard.params_flat = (None if params is None else
                                     np.asarray(params, dtype=np.float64))
        else:
            for client, session, params in zip(self.clients,
                                               checkpoint.client_sessions,
                                               checkpoint.client_params):
                client.receive_global_flat(params)
                client.load_session_state(session)
        self._rng.bit_generator.state = checkpoint.trainer_rng_state
        ledger.rounds.extend(checkpoint.ledger_rounds)
        history.extend(checkpoint.history)
        self._last_accuracy = checkpoint.last_accuracy
        self._pool_failures = checkpoint.pool_failures
        self._downlink_residual = checkpoint.downlink_residual
        if (checkpoint.async_state is not None) != (self._async is not None):
            raise ValueError(
                "checkpoint round mode does not match the config: "
                f"checkpoint is {'async' if checkpoint.async_state else 'sync'}"
                f", config asks for {'async' if self._async else 'sync'} "
                f"(async_buffer={self.config.async_buffer})")
        if checkpoint.async_state is not None:
            self._async = checkpoint.async_state
        return checkpoint.next_round

    def _save_checkpoint(self, next_round: int, ledger: CommunicationLedger,
                         history: list[RoundRecord]) -> str:
        if self.lazy:
            # Shards *are* the persistent client state: no live objects
            # to snapshot, and a never-trained shard stays None (the
            # pristine template) instead of N identical copies.
            sessions = tuple(shard.session for shard in self.shards)
            params = tuple(shard.params_flat for shard in self.shards)
        else:
            sessions = tuple(c.session_state() for c in self.clients)
            params = tuple(c.flat_parameters(dtype=np.float64)
                           for c in self.clients)
        checkpoint = FederatedCheckpoint(
            next_round=next_round,
            global_flat=self.server.global_flat(dtype=np.float64),
            client_sessions=sessions,
            client_params=params,
            trainer_rng_state=self._rng.bit_generator.state,
            teacher_flat=self._teacher_flat,
            history=list(history),
            ledger_rounds=list(ledger.rounds),
            last_accuracy=self._last_accuracy,
            pool_failures=self._pool_failures,
            downlink_residual=(None if self._downlink_residual is None
                               else self._downlink_residual.copy()),
            async_state=self._async,
            lazy_clients=self.lazy,
        )
        return checkpoint.save(
            checkpoint_path(self.config.checkpoint_dir, next_round))

    def _rebuild_distiller(self, teacher_flat: np.ndarray
                           ) -> MetaKnowledgeDistiller:
        """A distiller over a teacher rebuilt from its flat snapshot —
        exactly what pool workers do every round, so resumed
        distillation is bit-identical to the uninterrupted run."""
        teacher = self.model_factory()
        FlatParameterSpace.from_module(teacher).set_flat(teacher_flat)
        return MetaKnowledgeDistiller(
            teacher, self.mask_builder, lambda0=self.config.lambda0,
            lt=self.config.lt, dynamic=self.config.dynamic_lambda,
        )

    # ------------------------------------------------------------------
    # lazy-client substrate (shards + arena)
    # ------------------------------------------------------------------
    def _materialize_client(self, index: int) -> FederatedClient:
        """Build a fresh live client hydrated from shard ``index``.

        This is the :class:`~repro.federated.arena.LazyClientList` read
        path: inspection-style consumers get exactly the state an eager
        trainer's live client would hold (current parameters — the
        factory's pristine ones while ``params_flat`` is None — plus
        the latest session snapshot).  Writes to the returned object do
        not propagate back to the shard.
        """
        shard = self.shards[index]
        client = FederatedClient(
            client_id=shard.client_id, data=shard.data,
            model=self.model_factory(), mask_builder=self.mask_builder,
            training=self.config.training,
            rng=np.random.default_rng(0),  # replaced by the session restore
        )
        if shard.params_flat is not None:
            client.receive_global_flat(shard.params_flat)
        client.load_session_state(shard.session)
        return client

    def _session_snapshot(self, client_id: int):
        """The client's current pre-round session (shard or live)."""
        if self.lazy:
            return self.shards[client_id].session
        return self.clients[client_id].session_state()

    def _adopt_result(self, result) -> None:
        """Store a round result's trained state back into the client
        substrate — the live client in eager mode, the shard in lazy
        mode.  Runs even when the upload is later rejected: the client
        trained fine, only its wire payload is bad."""
        if not self.lazy:
            if result.session is not None:
                # The round ran elsewhere (a worker / the arena): adopt
                # its trained state so the live clients stay
                # interchangeable with serial runs.
                self.clients[result.client_id].apply_round_result(
                    result.upload_flat, result.session, result.params_flat)
            return
        if result.session is None:
            raise ValueError(
                "lazy client mode needs state-shipping round results, but "
                "the runner returned session=None (inject a runner with "
                "ships_state=True, or run eager clients)")
        shard = self.shards[result.client_id]
        shard.session = result.session
        # Mirrors FederatedClient.apply_round_result: the exact float64
        # snapshot when the exchange dtype is reduced, else the upload
        # itself (already exact float64 in that case).
        exact = (result.upload_flat if result.params_flat is None
                 else result.params_flat)
        shard.params_flat = np.asarray(exact, dtype=np.float64)

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------
    def run(self) -> FederatedResult:
        """Teacher pre-training (optional) + Algorithm 3 rounds."""
        resume = self._load_resume_checkpoint()
        teacher_result = None
        distiller = None
        if self.config.use_meta:
            if resume is not None:
                if resume.teacher_flat is None:
                    raise ValueError(
                        "use_meta=True but the checkpoint has no teacher "
                        "state (it was taken from a use_meta=False run)")
                self._teacher_flat = resume.teacher_flat
                distiller = self._rebuild_distiller(resume.teacher_flat)
            else:
                teacher_result = self._train_teacher()
                distiller = MetaKnowledgeDistiller(
                    teacher_result.teacher, self.mask_builder,
                    lambda0=self.config.lambda0, lt=self.config.lt,
                    dynamic=self.config.dynamic_lambda,
                )
                # The teacher is frozen after pre-training: snapshot it once
                # (always float64 — the teacher never crosses the wire as a
                # true upload) for worker-side distiller reconstruction.
                self._teacher_flat = FlatParameterSpace.from_module(
                    teacher_result.teacher).get_flat(dtype=np.float64)

        ledger = CommunicationLedger()
        history: list[RoundRecord] = []
        start_round = 0
        if resume is not None:
            start_round = self._restore(resume, ledger, history)
        run_one = (self._run_async_wave if self._async is not None
                   else self._run_round)
        try:
            for round_index in range(start_round, self.config.rounds):
                record = run_one(round_index, distiller, ledger)
                history.append(record)
                if (self.config.checkpoint_every
                        and (round_index + 1) % self.config.checkpoint_every == 0):
                    self._save_checkpoint(round_index + 1, ledger, history)
        finally:
            if self._runner is not None:
                self._runner.close()

        return FederatedResult(
            global_model=self.server.global_model,
            history=history,
            ledger=ledger,
            teacher_result=teacher_result,
            clients=self.clients,
            global_test=self.global_test,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _train_teacher(self) -> TeacherTrainingResult:
        splits = [(data.train, data.valid) for data in self._client_data]
        teacher_config = TeacherConfig(
            lt=self.config.lt,
            epochs_per_client=self.config.teacher.epochs_per_client,
            cycles=self.config.teacher.cycles,
            subset_fraction=self.config.teacher.subset_fraction,
            training=self.config.training,
        )
        return train_teacher(self.model_factory, splits, self.mask_builder,
                             teacher_config, self._rng)

    def _broadcast_payload(self):
        """One round's downlink: ``(wire, decoded reference, bytes/client)``.

        Identity codec: the wire *is* the exchange-dtype flat vector,
        bitwise the pre-codec behaviour.  Otherwise the exact float64
        global vector is encoded (carrying the server-side error-
        feedback residual) and every client decodes the same payload,
        so what clients load is exactly ``decoded``.
        """
        if self.codec.is_identity:
            flat = self.server.global_flat()
            return flat, flat, payload_num_bytes(flat)
        exact = self.server.global_flat(dtype=np.float64)
        payload, decoded, residual = encode_with_feedback(
            self.codec, exact, self._downlink_residual)
        if self.codec.error_feedback:
            self._downlink_residual = residual
        return payload, decoded, payload_num_bytes(payload)

    def _build_tasks(self, selected: list[int], wire,
                     distiller: MetaKnowledgeDistiller | None,
                     round_index: int, ship_sessions: bool,
                     defer_stragglers: bool = False) -> list[RoundTask]:
        # When the active runner's WorkerSetup already carries the
        # frozen teacher, tasks ship the use_setup_teacher sentinel
        # instead of a per-task (P,) teacher copy — one pickle per
        # worker, not one per task.  (SerialRunner ignores both and
        # uses the live distiller argument.)
        use_setup = distiller is not None and self._setup_has_teacher
        return [
            RoundTask(
                client_id=client_id,
                global_flat=wire,
                epochs=self.config.local_epochs,
                teacher_flat=(self._teacher_flat
                              if distiller is not None and not use_setup
                              else None),
                use_setup_teacher=use_setup,
                session=(self._session_snapshot(client_id)
                         if ship_sessions else None),
                fused_kernels=nn.fused_kernels_enabled(),
                sparse_masks=nn.sparse_masks_enabled(),
                packed_decode=nn.packed_decode_enabled(),
                exchange_dtype=nn.get_default_dtype().name,
                compute_dtype=nn.get_compute_dtype().name,
                backend=nn.get_backend(),
                round_index=round_index,
                exchange_codec=self.codec.name,
                defer_stragglers=defer_stragglers,
            )
            for client_id in selected  # ascending: fixes aggregation order
        ]

    def _execute_tasks(self, runner: RoundRunner, tasks: list[RoundTask],
                       distiller: MetaKnowledgeDistiller | None):
        """Run one round's tasks with the pool-failure fallback."""
        policy = self._retry_policy()
        fallback_cause = ""
        try:
            execution = runner.run_round_tolerant(tasks, distiller, policy)
            if runner.fallible:
                self._pool_failures = 0
        except RoundExecutionError as exc:
            if not runner.fallible:
                raise
            # The tasks still hold the pre-round session snapshots, so
            # the serial re-run restores them and continues bit-exactly.
            fallback_cause = str(exc)
            serial = self._handle_pool_failure(exc)
            execution = serial.run_round_tolerant(tasks, distiller, policy)
        return execution, fallback_cause

    def _upload_bytes(self, result) -> int:
        """Measured wire size of one upload (hand-built results fall
        back to metering the decoded vector itself)."""
        if result.payload_bytes is not None:
            return result.payload_bytes
        return payload_num_bytes(result.upload_flat)

    def _held_accuracy(self) -> float:
        """The accuracy to report when the global vector did not move."""
        if self._last_accuracy is None:
            self._last_accuracy = model_segment_accuracy(
                self.server.global_model, self.mask_builder, self.global_test)
        return self._last_accuracy

    def _run_round(self, round_index: int,
                   distiller: MetaKnowledgeDistiller | None,
                   ledger: CommunicationLedger) -> RoundRecord:
        selected = self.server.select_clients(
            len(self.clients), self.config.client_fraction, self._rng
        )
        # The whole exchange moves flat (P,) vectors: broadcast, upload,
        # privatisation, and the stacked (C, P) average.
        wire, reference, bytes_down = self._broadcast_payload()
        runner = self._get_runner()
        # Sessions ship whenever the round may be re-executed: a pool
        # worker needs them anyway, and a serial retry must rewind the
        # live client to the exact pre-round state.
        ship_sessions = runner.ships_state or self.fault_plan is not None
        tasks = self._build_tasks(selected, wire, distiller, round_index,
                                  ship_sessions)
        execution, fallback_cause = self._execute_tasks(runner, tasks,
                                                        distiller)

        failures = list(execution.failures)
        results = execution.results  # task (= ascending client-id) order
        upload_bytes: list[int] = []
        weights: list[float] = []
        losses: list[float] = []
        lambdas: list[float] = []
        completed: list[int] = []
        exchange_dtype = nn.get_default_dtype()
        # Stage uploads into the preallocated slab: each screened
        # payload is cast into one float64 row, so finiteness/norm
        # validation and the FedAvg reduction run over a single
        # contiguous (C, P) matrix — bitwise the stack-of-vectors path,
        # without C boxed float64 copies.  Trained state is adopted
        # even when the upload is rejected below — the client trained
        # fine, only its wire payload is bad.
        rows = self._slab.rows(len(results))
        staged = []  # results whose uploads occupy rows[:len(staged)]
        for result in results:
            self._adopt_result(result)
            rejection = self.server.screen_upload(result.upload_flat)
            if rejection is not None:
                failures.append(ClientFailure(result.client_id, "rejected", 1,
                                              rejection))
                continue
            rows[len(staged)] = result.upload_flat  # exact float64 cast
            staged.append(result)
        reasons = self.server.validate_rows(rows[:len(staged)],
                                            self.config.max_upload_norm)
        kept = 0
        for row, (result, reason) in enumerate(zip(staged, reasons)):
            if reason is not None:
                failures.append(ClientFailure(result.client_id, "rejected", 1,
                                              reason))
                continue
            if self.privatizer is not None:
                # Privatise from the original upload object — identical
                # RNG stream and dtype path to the per-vector era —
                # then overwrite the (compacted) slab row.
                flat = self.privatizer.privatize_update_flat(
                    result.upload_flat, reference)
                if self.codec.is_identity:
                    flat = np.asarray(flat, dtype=exchange_dtype)
                rows[kept] = flat
            elif kept != row:
                rows[kept] = rows[row]  # compact over rejected rows
            upload_bytes.append(self._upload_bytes(result))
            completed.append(result.client_id)
            weights.append(result.metrics["num_examples"])
            losses.append(result.metrics["loss"])
            lambdas.append(result.metrics["lambda"])
            kept += 1
        failures.sort(key=lambda failure: failure.client_id)

        aggregated = kept >= self.config.min_clients_per_round
        if aggregated:
            agg_weights = weights if self.config.aggregation == "fedavg" else None
            # FedAvg weights renormalise over the survivors automatically
            # (np.average divides by the surviving weight mass).
            self.server.aggregate_rows(rows[:kept], agg_weights)
            accuracy = model_segment_accuracy(
                self.server.global_model, self.mask_builder, self.global_test
            )
            self._last_accuracy = accuracy
            mean_loss = float(np.mean(losses))
            mean_lambda = float(np.mean(lambdas))
        else:
            # Quorum failed: hold the global vector, skip aggregation,
            # and record NaN-free sentinel statistics (np.mean over an
            # empty survivor list would be NaN).
            accuracy = self._held_accuracy()
            mean_loss = 0.0
            mean_lambda = 0.0
        # Every selected client received the broadcast, even the ones
        # that failed to upload.  (upload_bytes already carries the
        # measured wire sizes; the staged vectors need not be passed.)
        ledger.record_round(round_index, wire, [],
                            num_broadcast=len(selected),
                            broadcast_bytes=bytes_down,
                            upload_bytes=upload_bytes)

        return RoundRecord(
            round_index=round_index,
            selected_clients=tuple(selected),
            mean_loss=mean_loss,
            mean_lambda=mean_lambda,
            global_accuracy=accuracy,
            completed_clients=tuple(completed),
            failures=tuple(failures),
            retries=tuple(sorted(execution.retry_counts.items())),
            aggregated=aggregated,
            fallback_cause=fallback_cause,
        )

    # ------------------------------------------------------------------
    # asynchronous waves (FedBuff-style buffered aggregation)
    # ------------------------------------------------------------------
    def _flush_buffer(self) -> list[int]:
        """Apply the buffered uploads to the global model; returns the
        flushed uploads' staleness values."""
        state = self._async
        entries = state.take_buffer()
        staleness = [state.version - upload.version for upload in entries]
        weights = staleness_weights([u.base_weight for u in entries],
                                    staleness, self.config.staleness_alpha)
        if (self.config.staleness_alpha == 0.0
                and self.config.aggregation != "fedavg"):
            # alpha=0 + uniform: every weight is exactly 1.0 — take the
            # unweighted np.average path so an async flush over the same
            # uploads is bitwise the synchronous aggregation.
            agg_weights = None
        else:
            agg_weights = [float(w) for w in weights]
        # The buffered float64 vectors were validated at dispatch; the
        # flush stages them into the slab so the reduction runs over
        # one contiguous matrix (bitwise the stacked-list path).
        rows = self._slab.rows(len(entries))
        for i, upload in enumerate(entries):
            rows[i] = upload.vector
        self.server.aggregate_rows(rows[:len(entries)], agg_weights)
        state.version += 1
        return staleness

    def _run_async_wave(self, wave: int,
                        distiller: MetaKnowledgeDistiller | None,
                        ledger: CommunicationLedger) -> RoundRecord:
        """One async wave: dispatch idle clients, then advance virtual
        time until the next buffer flush (or the wire runs dry).

        Wall-clock never gates progress: stragglers' delays are virtual
        (``RoundTask.defer_stragglers``), arrivals are ordered by the
        seeded latency model, and the global model advances every
        ``async_buffer`` arrivals — so a slow client delays only its own
        contribution, never the round.
        """
        state = self._async
        config = self.config
        runner = self._get_runner()
        busy = state.busy_clients()
        idle = [i for i in range(len(self.clients)) if i not in busy]
        fraction = (config.clients_per_round
                    if config.clients_per_round is not None
                    else config.client_fraction)
        selected = self.server.select_clients(len(self.clients), fraction,
                                              self._rng, candidates=idle)

        execution = RoundExecution(results=[])
        fallback_cause = ""
        bytes_down = 0
        if selected:
            wire, reference, bytes_down = self._broadcast_payload()
            ship_sessions = runner.ships_state or self.fault_plan is not None
            tasks = self._build_tasks(selected, wire, distiller, wave,
                                      ship_sessions, defer_stragglers=True)
            execution, fallback_cause = self._execute_tasks(runner, tasks,
                                                            distiller)

        # Stage the survivors' uploads on the virtual wire.  Validation
        # and privatisation happen at dispatch — the payload does not
        # change in flight — so buffered vectors are aggregation-ready.
        failures = list(execution.failures)
        for result in execution.results:
            self._adopt_result(result)
            upload = np.asarray(result.upload_flat, dtype=np.float64)
            rejection = self.server.validate_upload(
                upload, config.max_upload_norm)
            if rejection is not None:
                failures.append(ClientFailure(result.client_id, "rejected", 1,
                                              rejection))
                continue
            if self.privatizer is not None:
                upload = np.asarray(
                    self.privatizer.privatize_update_flat(upload, reference),
                    dtype=np.float64)
            arrival = (state.virtual_now
                       + self.latency.draw(wave, result.client_id)
                       + result.straggler_delay)
            state.in_flight.append(PendingUpload(
                client_id=result.client_id,
                arrival_time=arrival,
                vector=upload,
                base_weight=(result.metrics["num_examples"]
                             if config.aggregation == "fedavg" else 1.0),
                version=state.version,
                loss=result.metrics["loss"],
                lam=result.metrics["lambda"],
                payload_bytes=self._upload_bytes(result),
                dispatch_wave=wave,
            ))
        failures.sort(key=lambda failure: failure.client_id)
        # Deterministic arrival order: virtual time, client id tie-break.
        state.in_flight.sort(key=lambda u: (u.arrival_time, u.client_id))

        # Advance the virtual clock until one flush lands (the cadence
        # that triggers the next dispatch wave); the final wave drains
        # everything still travelling.
        buffer_size = config.async_buffer
        drain = wave == config.rounds - 1
        flushes = 0
        staleness_applied: list[int] = []
        completed: list[int] = []
        upload_bytes: list[int] = []
        losses: list[float] = []
        lambdas: list[float] = []
        while state.in_flight and (drain or flushes == 0):
            upload = state.in_flight.pop(0)
            state.virtual_now = max(state.virtual_now, upload.arrival_time)
            state.buffer.append(upload)
            completed.append(upload.client_id)
            upload_bytes.append(upload.payload_bytes)
            losses.append(upload.loss)
            lambdas.append(upload.lam)
            if (len(state.buffer) >= buffer_size
                    and len(state.buffer) >= config.min_clients_per_round):
                staleness_applied.extend(self._flush_buffer())
                flushes += 1
        if (drain and state.buffer
                and len(state.buffer) >= config.min_clients_per_round):
            # Final partial flush: the run ends with no quorum-sized
            # upload stranded in the buffer.
            staleness_applied.extend(self._flush_buffer())
            flushes += 1

        if flushes:
            accuracy = model_segment_accuracy(
                self.server.global_model, self.mask_builder, self.global_test)
            self._last_accuracy = accuracy
        else:
            accuracy = self._held_accuracy()
        ledger.record_round(wave, None, [], num_broadcast=len(selected),
                            broadcast_bytes=bytes_down,
                            upload_bytes=upload_bytes)

        return RoundRecord(
            round_index=wave,
            selected_clients=tuple(selected),
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            mean_lambda=float(np.mean(lambdas)) if lambdas else 0.0,
            global_accuracy=accuracy,
            completed_clients=tuple(completed),
            failures=tuple(failures),
            retries=tuple(sorted(execution.retry_counts.items())),
            aggregated=flushes > 0,
            fallback_cause=fallback_cause,
            flushes=flushes,
            mean_staleness=(float(np.mean(staleness_applied))
                            if staleness_applied else 0.0),
            in_flight=tuple(sorted(state.busy_clients())),
        )


def train_isolated_then_average(model_factory: Callable[[], RecoveryModel],
                                client_data: list[ClientData],
                                mask_builder: ConstraintMaskBuilder,
                                config: FederatedConfig,
                                global_test: TrajectoryDataset,
                                seed: int = 0) -> FederatedResult:
    """The "w/o FL" ablation: no server, clients train in isolation and
    exchange final models pairwise (implemented as one final average).

    Matches the paper's Figure 7 variant where the central server is
    removed and clients swap their local models with each other.  The
    exchange — averaging and ledger accounting alike — moves the same
    flat ``(P,)`` vectors as the main federated path, so byte counts
    are directly comparable between the two (and both honour the
    exchange dtype of :func:`repro.nn.set_default_dtype`).
    """
    trainer = FederatedTrainer(model_factory, client_data, mask_builder,
                               config, global_test, seed=seed)
    codec = trainer.codec
    total_epochs = config.rounds * config.local_epochs
    flats, losses = [], []
    upload_bytes: list[int] = []
    for i in range(len(trainer.clients)):
        # Lazy mode: indexing materialises one live client at a time
        # from its shard; the trained state is written back below so
        # result.clients reflects the training.
        client = trainer.clients[i]
        epoch_losses = client.trainer.train_epochs(client.data.train,
                                                   epochs=total_epochs)
        if codec.is_identity:
            flats.append(client.flat_parameters())
        else:
            # A single exchange: encode without a carried residual (there
            # is no next round for error feedback to land in).
            payload, decoded, _ = encode_with_feedback(
                codec, client.flat_parameters(dtype=np.float64), None)
            flats.append(decoded)
            upload_bytes.append(payload_num_bytes(payload))
        losses.append(float(np.mean(epoch_losses)))
        if trainer.lazy:
            shard = trainer.shards[i]
            shard.session = client.session_state()
            shard.params_flat = client.flat_parameters(dtype=np.float64)
    trainer.server.aggregate_flat(flats)
    ledger = CommunicationLedger()
    # One exchange at the end: every client ships its model to the others.
    if codec.is_identity:
        ledger.record_round(0, trainer.server.global_flat(), flats)
    else:
        averaged = codec.encode(trainer.server.global_flat(dtype=np.float64))
        ledger.record_round(0, None, flats, num_broadcast=len(flats),
                            broadcast_bytes=payload_num_bytes(averaged),
                            upload_bytes=upload_bytes)
    accuracy = model_segment_accuracy(trainer.server.global_model, mask_builder,
                                      global_test)
    everyone = tuple(range(len(trainer.clients)))
    history = [RoundRecord(0, everyone, float(np.mean(losses)), 0.0, accuracy,
                           completed_clients=everyone)]
    return FederatedResult(
        global_model=trainer.server.global_model,
        history=history,
        ledger=ledger,
        teacher_result=None,
        clients=trainer.clients,
        global_test=global_test,
    )
