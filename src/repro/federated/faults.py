"""Deterministic fault injection for the federated runtime.

At thousands-of-clients scale, client failure is the common case, not
the exception: workers crash, uploads go missing, stragglers blow
through deadlines, and payloads arrive corrupted.  This module gives
the reproduction a *seeded, deterministic* model of those failures so
the degraded paths can be exercised — and asserted bit-identical
across execution backends — instead of rotting untested.

Determinism contract
--------------------
A :class:`FaultPlan` decides the fault (if any) for a given
``(round_index, client_id, attempt)`` as a **pure function** of those
coordinates and the plan's seed: the decision is drawn from a
generator seeded with exactly that key, never from a shared sequential
stream.  Consequently the same plan injects the *identical* fault
schedule under :class:`~repro.federated.runner.SerialRunner` and
:class:`~repro.federated.runner.ProcessPoolRunner` — regardless of
worker count, pool scheduling, or completion order — which is what
keeps serial-vs-parallel round histories bit-identical under faults
(the PR 2 determinism contract, extended to degraded runs).

Fault kinds
-----------
``dropout``
    No-show: the client never starts its local round.
``crash``
    Crash-before-upload: the client trains locally (consuming RNG and
    optimiser state exactly like a healthy round) and dies before the
    upload leaves; a retry re-ships the same
    :class:`~repro.federated.runner.RoundTask`, whose session snapshot
    makes re-execution exact.
``straggler``
    The client is ``delay`` seconds slow.  When a per-task deadline is
    configured and the injected delay meets it, the task deterministically
    fails as a ``timeout`` (no wall-clock sleep, so the outcome cannot
    depend on machine load); otherwise the client sleeps the delay and
    completes normally.
``corrupt``
    The local round succeeds but the uploaded vector is corrupted —
    NaN entries, Inf entries, or a norm blow-up — which the server-side
    upload validation then rejects
    (:meth:`repro.federated.server.FederatedServer.validate_upload`).

The ``REPRO_FAULT_PLAN`` environment knob (used by the CI
``tier1-fault-injection`` leg) forces a plan onto every
:class:`~repro.federated.trainer.FederatedTrainer` that was not given
an explicit one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "FaultSpec", "FaultEvent", "FaultPlan", "ClientFaultError",
    "resolve_fault_plan", "forced_plan_from_env",
]

#: Corruption modes an injected ``corrupt`` event cycles through.
CORRUPT_MODES = ("nan", "inf", "norm")

#: Factor applied to an upload by the ``norm`` corruption mode.
NORM_BLOWUP = 1e8


class ClientFaultError(RuntimeError):
    """One client's round attempt failed (injected or real).

    Unlike :class:`~repro.federated.runner.RoundExecutionError` this is
    a *per-client* outcome: the runner retries the task (bounded) and
    then marks the client failed for the round — it never aborts the
    whole round.  Pickles across process boundaries via ``args``.
    """

    def __init__(self, kind: str, client_id: int, message: str = ""):
        super().__init__(kind, client_id, message)

    @property
    def kind(self) -> str:
        return self.args[0]

    @property
    def client_id(self) -> int:
        return self.args[1]

    @property
    def message(self) -> str:
        return self.args[2]

    def __str__(self) -> str:
        detail = f": {self.message}" if self.message else ""
        return f"client {self.client_id} {self.kind}{detail}"


@dataclass(frozen=True)
class FaultSpec:
    """Per-attempt fault probabilities of a :class:`FaultPlan`.

    Each probability is evaluated independently per
    ``(round, client, attempt)``; they must sum to at most 1.
    """

    seed: int = 0
    crash: float = 0.0
    dropout: float = 0.0
    straggler: float = 0.0
    corrupt: float = 0.0
    straggler_delay: float = 0.05  # seconds a surviving straggler sleeps
    first_round: int = 0  # inclusive: rounds before this are fault-free
    last_round: int | None = None  # inclusive: rounds after this are fault-free

    def __post_init__(self):
        rates = (self.crash, self.dropout, self.straggler, self.corrupt)
        if any(r < 0 for r in rates):
            raise ValueError("fault rates must be non-negative")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to at most 1")
        if self.straggler_delay < 0:
            raise ValueError("straggler_delay must be non-negative")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault for one ``(round, client, attempt)``."""

    kind: str  # "crash" | "dropout" | "straggler" | "corrupt"
    delay: float = 0.0  # straggler only
    corrupt_mode: str = ""  # corrupt only: "nan" | "inf" | "norm"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of client faults.

    Immutable and cheaply picklable: it travels to pool workers inside
    :class:`~repro.federated.runner.WorkerSetup` so both execution
    backends consult the identical schedule.
    """

    spec: FaultSpec

    # -- deterministic draws ------------------------------------------------
    def _rng(self, round_index: int, client_id: int, attempt: int,
             stream: int) -> np.random.Generator:
        """A generator keyed purely by the fault coordinates."""
        return np.random.default_rng(
            (self.spec.seed, stream, round_index, client_id, attempt))

    def draw(self, round_index: int, client_id: int,
             attempt: int = 0) -> FaultEvent | None:
        """The fault (or None) for this round/client/attempt."""
        spec = self.spec
        if round_index < spec.first_round:
            return None
        if spec.last_round is not None and round_index > spec.last_round:
            return None
        rng = self._rng(round_index, client_id, attempt, stream=1)
        u = float(rng.random())
        edge = spec.crash
        if u < edge:
            return FaultEvent("crash")
        edge += spec.dropout
        if u < edge:
            return FaultEvent("dropout")
        edge += spec.straggler
        if u < edge:
            return FaultEvent("straggler", delay=spec.straggler_delay)
        edge += spec.corrupt
        if u < edge:
            mode = CORRUPT_MODES[int(rng.integers(len(CORRUPT_MODES)))]
            return FaultEvent("corrupt", corrupt_mode=mode)
        return None

    def corrupt_upload(self, flat: np.ndarray, round_index: int,
                       client_id: int, attempt: int, mode: str) -> np.ndarray:
        """A deterministically corrupted copy of an upload vector."""
        corrupted = np.array(flat, copy=True)
        if mode == "norm":
            return corrupted * corrupted.dtype.type(NORM_BLOWUP)
        if mode not in ("nan", "inf"):
            raise ValueError(f"unknown corruption mode {mode!r}")
        rng = self._rng(round_index, client_id, attempt, stream=2)
        count = max(1, corrupted.size // 100)
        where = rng.choice(corrupted.size, size=min(count, corrupted.size),
                           replace=False)
        corrupted[where] = np.nan if mode == "nan" else np.inf
        return corrupted

    # -- spec-string round trip ---------------------------------------------
    _SPEC_KEYS = {
        "seed": ("seed", int),
        "crash": ("crash", float),
        "dropout": ("dropout", float),
        "straggler": ("straggler", float),
        "corrupt": ("corrupt", float),
        "delay": ("straggler_delay", float),
        "first_round": ("first_round", int),
        "last_round": ("last_round", int),
    }

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse ``"dropout=0.3,crash=0.1,seed=42"`` into a plan.

        Keys: ``crash``, ``dropout``, ``straggler``, ``corrupt``
        (per-attempt probabilities), ``seed``, ``delay`` (straggler
        seconds), ``first_round``/``last_round`` (inclusive window).
        """
        spec = FaultSpec()
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"fault-plan item {item!r} is not key=value")
            key, _, value = item.partition("=")
            entry = cls._SPEC_KEYS.get(key.strip())
            if entry is None:
                raise ValueError(
                    f"unknown fault-plan key {key.strip()!r}; expected one "
                    f"of {sorted(cls._SPEC_KEYS)}")
            field_name, cast = entry
            spec = replace(spec, **{field_name: cast(value.strip())})
        return cls(spec)

    def spec_string(self) -> str:
        """The ``from_spec`` form of this plan (round-trips)."""
        spec = self.spec
        parts = [f"seed={spec.seed}"]
        for key in ("crash", "dropout", "straggler", "corrupt"):
            rate = getattr(spec, key)
            if rate:
                parts.append(f"{key}={rate:g}")
        if spec.straggler and spec.straggler_delay != 0.05:
            parts.append(f"delay={spec.straggler_delay:g}")
        if spec.first_round:
            parts.append(f"first_round={spec.first_round}")
        if spec.last_round is not None:
            parts.append(f"last_round={spec.last_round}")
        return ",".join(parts)


def forced_plan_from_env() -> FaultPlan | None:
    """The plan forced by ``REPRO_FAULT_PLAN`` (None when unset).

    The CI ``tier1-fault-injection`` leg sets this so the whole
    federated suite runs against injected failures, mirroring the
    ``REPRO_BACKEND`` / ``REPRO_COMPUTE_DTYPE`` forcing pattern.
    """
    text = os.environ.get("REPRO_FAULT_PLAN", "").strip()
    if not text:
        return None
    return FaultPlan.from_spec(text)


def resolve_fault_plan(plan: "FaultPlan | FaultSpec | str | None",
                       ) -> FaultPlan | None:
    """Normalise a config-level fault plan value.

    Accepts an explicit :class:`FaultPlan`, a bare :class:`FaultSpec`,
    a ``from_spec`` string, or None — in which case the
    ``REPRO_FAULT_PLAN`` environment forcing (if any) applies.
    """
    if plan is None:
        return forced_plan_from_env()
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, FaultSpec):
        return FaultPlan(plan)
    if isinstance(plan, str):
        return FaultPlan.from_spec(plan) if plan.strip() else forced_plan_from_env()
    raise TypeError(f"cannot interpret fault plan {plan!r}")
