"""Communication-cost accounting and the exchange codec layer.

The paper argues communication cost correlates with model parameters
and FLOPs [40, 41]; this module meters the actual bytes shipped each
round (server -> selected clients and back) so the efficiency
experiments (Figure 5) can report measured traffic per method — and
provides the pluggable **exchange codecs** that shrink those bytes.

Exchange codecs
---------------
A :class:`Codec` turns a flat float64 ``(P,)`` parameter vector into a
picklable wire payload and back:

``identity``
    The payload *is* the flat vector in the active exchange dtype
    (:func:`repro.nn.set_default_dtype`) — the pre-codec behaviour,
    bitwise unchanged.
``float32``
    The payload carries float32 values: half the bytes of float64,
    decoded back to float64 server-side.
``int8`` / ``int8-nofb``
    QSGD-style 8-bit quantisation: the vector is split into fixed-size
    chunks, each scaled by its absmax (``scale = absmax / 127``) and
    rounded to ``int8``; the payload ships the int8 values plus one
    float32 scale per chunk (~4.5x fewer bytes than float32 overall).
    ``int8`` additionally enables **error feedback**: the encoder keeps
    the quantisation residual (``compensated - decoded``) and adds it
    to the next round's vector, so quantisation noise cancels across
    rounds instead of accumulating.  ``int8-nofb`` is the ablation
    without the residual.

Encoding is a pure function of the input vector (and the carried
residual), so serial and process-pool rounds encode bit-identically.
:func:`payload_num_bytes` accounts the *full* wire size of a payload —
quantised values, scale metadata, and a fixed per-payload header — so
the ledger reports real traffic, not just raw array ``nbytes``.

The ``REPRO_EXCHANGE_CODEC`` environment knob (used by the CI
``tier1-int8-exchange`` leg) forces a codec onto every trainer that was
not given an explicit one, mirroring ``REPRO_COMPUTE_DTYPE``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..nn.serialization import state_dict_num_bytes

__all__ = [
    "RoundCost", "CommunicationLedger", "payload_num_bytes",
    "PAYLOAD_HEADER_BYTES", "EncodedPayload", "Codec", "IdentityCodec",
    "Float32Codec", "Int8Codec", "codec_by_name", "available_codecs",
    "decode_payload", "encode_with_feedback", "get_exchange_codec",
    "set_exchange_codec", "use_exchange_codec", "forced_codec_from_env",
    "resolve_exchange_codec",
]

#: Fixed per-payload framing overhead (codec id, vector length, chunk
#: size, checksum) accounted for every encoded payload.  Raw ndarray
#: payloads (the identity codec) are metered as bare ``nbytes`` so the
#: pre-codec ledger numbers are reproduced exactly.
PAYLOAD_HEADER_BYTES = 16


# ----------------------------------------------------------------------
# wire payloads and codecs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EncodedPayload:
    """A codec-encoded flat parameter vector, ready for the wire.

    Cheap to pickle (two contiguous arrays + scalars); ships on the
    existing :class:`~repro.federated.runner.RoundTask` /
    :class:`~repro.federated.runner.RoundResult` contract wherever a
    flat vector used to travel.
    """

    codec: str  # registry name of the codec that encoded it
    values: np.ndarray  # quantised / cast values, one per parameter
    scales: np.ndarray | None  # per-chunk float32 scales (None = unscaled)
    size: int  # P, the decoded vector length
    chunk: int = 0  # quantisation chunk length (0 = whole vector)


class Codec:
    """Encodes flat float64 ``(P,)`` vectors for the wire.

    ``error_feedback`` marks codecs whose callers should carry the
    quantisation residual across rounds (see
    :func:`encode_with_feedback`); ``is_identity`` marks the pass-through
    codec whose payloads are bare ndarrays in the exchange dtype.
    """

    name: str = ""
    error_feedback: bool = False
    is_identity: bool = False

    def encode(self, flat: np.ndarray) -> "np.ndarray | EncodedPayload":
        raise NotImplementedError

    def decode(self, payload: "np.ndarray | EncodedPayload") -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class IdentityCodec(Codec):
    """Pass-through: the wire payload is the flat vector itself, in
    whatever exchange dtype the caller allocated it."""

    name = "identity"
    is_identity = True

    def encode(self, flat: np.ndarray) -> np.ndarray:
        return np.asarray(flat)

    def decode(self, payload) -> np.ndarray:
        return np.asarray(payload)


class Float32Codec(Codec):
    """Cast to float32 on the wire, decode back to float64."""

    name = "float32"

    def encode(self, flat: np.ndarray) -> EncodedPayload:
        values = np.asarray(flat, dtype=np.float64).astype(np.float32)
        return EncodedPayload(codec=self.name, values=values, scales=None,
                              size=int(values.size))

    def decode(self, payload: EncodedPayload) -> np.ndarray:
        return payload.values.astype(np.float64)


class Int8Codec(Codec):
    """Per-chunk absmax int8 quantisation (QSGD-style).

    The vector is split into ``chunk``-length blocks; each block is
    scaled by ``absmax / 127`` (stored as one float32 per block) and
    rounded to the nearest int8 level.  Quantisation and reconstruction
    both use the float32-rounded scale, so ``decode(encode(x))`` is a
    pure deterministic function of ``x``.
    """

    def __init__(self, name: str = "int8", chunk: int = 64,
                 error_feedback: bool = True):
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.name = name
        self.chunk = chunk
        self.error_feedback = error_feedback

    def encode(self, flat: np.ndarray) -> EncodedPayload:
        exact = np.asarray(flat, dtype=np.float64).ravel()
        if not np.all(np.isfinite(exact)):
            raise ValueError("cannot int8-encode a non-finite vector; "
                             "screen uploads before encoding")
        size = int(exact.size)
        num_chunks = max(1, -(-size // self.chunk))
        padded = np.zeros(num_chunks * self.chunk, dtype=np.float64)
        padded[:size] = exact
        blocks = padded.reshape(num_chunks, self.chunk)
        absmax = np.abs(blocks).max(axis=1)
        # Zero blocks get scale 1.0: they quantise (and decode) to zero.
        scales = np.where(absmax > 0.0, absmax / 127.0, 1.0).astype(np.float32)
        levels = np.rint(blocks / scales.astype(np.float64)[:, None])
        values = np.clip(levels, -127, 127).astype(np.int8).reshape(-1)[:size]
        return EncodedPayload(codec=self.name, values=values, scales=scales,
                              size=size, chunk=self.chunk)

    def decode(self, payload: EncodedPayload) -> np.ndarray:
        num_chunks = payload.scales.size
        padded = np.zeros(num_chunks * payload.chunk, dtype=np.float64)
        padded[:payload.size] = payload.values.astype(np.float64)
        blocks = padded.reshape(num_chunks, payload.chunk)
        decoded = blocks * payload.scales.astype(np.float64)[:, None]
        return decoded.reshape(-1)[:payload.size]


# ----------------------------------------------------------------------
# registry + the exchange-codec knob
# ----------------------------------------------------------------------
_CODECS: dict[str, Codec] = {}


def _register(codec: Codec) -> Codec:
    _CODECS[codec.name] = codec
    return codec


_register(IdentityCodec())
_register(Float32Codec())
_register(Int8Codec("int8", error_feedback=True))
_register(Int8Codec("int8-nofb", error_feedback=False))


def available_codecs() -> list[str]:
    """Registered codec names, sorted."""
    return sorted(_CODECS)


def codec_by_name(name: str) -> Codec:
    """Look up a registered codec (raises with the known names)."""
    codec = _CODECS.get(name)
    if codec is None:
        raise ValueError(
            f"unknown exchange codec {name!r}; available: "
            f"{', '.join(available_codecs())}")
    return codec


#: The active default codec name; ``None`` = not yet resolved, in which
#: case the ``REPRO_EXCHANGE_CODEC`` environment forcing (if any)
#: applies on first read.
_ACTIVE_CODEC: str | None = None


def forced_codec_from_env() -> str | None:
    """The codec name forced by ``REPRO_EXCHANGE_CODEC`` (None if unset)."""
    name = os.environ.get("REPRO_EXCHANGE_CODEC", "").strip()
    return name or None


def get_exchange_codec() -> Codec:
    """The process-default exchange codec (identity unless configured)."""
    global _ACTIVE_CODEC
    if _ACTIVE_CODEC is None:
        _ACTIVE_CODEC = forced_codec_from_env() or "identity"
        codec_by_name(_ACTIVE_CODEC)  # fail fast on a bad env value
    return codec_by_name(_ACTIVE_CODEC)


def set_exchange_codec(name: str) -> str:
    """Set the process-default codec; returns the previous name."""
    global _ACTIVE_CODEC
    previous = get_exchange_codec().name
    _ACTIVE_CODEC = codec_by_name(name).name
    return previous


@contextmanager
def use_exchange_codec(name: str):
    """Temporarily switch the process-default exchange codec."""
    previous = set_exchange_codec(name)
    try:
        yield codec_by_name(name)
    finally:
        set_exchange_codec(previous)


def resolve_exchange_codec(codec: "Codec | str | None") -> Codec:
    """Normalise a config-level codec value.

    Accepts an explicit :class:`Codec`, a registry name, or None — in
    which case the process default (itself seeded from the
    ``REPRO_EXCHANGE_CODEC`` forcing) applies.
    """
    if codec is None:
        return get_exchange_codec()
    if isinstance(codec, Codec):
        return codec
    if isinstance(codec, str):
        return codec_by_name(codec)
    raise TypeError(f"cannot interpret exchange codec {codec!r}")


def decode_payload(payload, out: np.ndarray | None = None) -> np.ndarray:
    """Decode a wire payload to a flat vector (ndarrays pass through).

    ``out`` — when given and shape/dtype-compatible — receives the
    decoded values in place and is returned, so hot decode loops (slab
    staging, arena hydration) can reuse one buffer instead of
    allocating a fresh ``(P,)`` vector per payload.  Decoding is
    bitwise identical either way: the same values land in ``out``.
    """
    if isinstance(payload, EncodedPayload):
        decoded = codec_by_name(payload.codec).decode(payload)
    else:
        decoded = np.asarray(payload)
    if out is not None:
        if out.shape != decoded.shape:
            raise ValueError(
                f"out buffer shape {out.shape} != payload shape "
                f"{decoded.shape}")
        np.copyto(out, decoded)
        return out
    return decoded


def encode_with_feedback(codec: Codec, flat: np.ndarray,
                         residual: np.ndarray | None = None):
    """Encode ``flat``, carrying the error-feedback residual.

    Returns ``(payload, decoded, new_residual)``: the wire payload, the
    float64 vector the receiver will reconstruct, and the residual to
    carry into the next round (None for codecs without error feedback).
    With error feedback the *compensated* vector ``flat + residual`` is
    encoded, and the new residual is what the wire still owes:
    ``compensated - decoded``.
    """
    exact = np.asarray(flat, dtype=np.float64)
    if not codec.error_feedback:
        payload = codec.encode(exact)
        return payload, codec.decode(payload), None
    compensated = exact if residual is None else exact + residual
    payload = codec.encode(compensated)
    decoded = codec.decode(payload)
    return payload, decoded, compensated - decoded


# ----------------------------------------------------------------------
# byte accounting
# ----------------------------------------------------------------------
def payload_num_bytes(payload) -> int:
    """Wire size of one model payload.

    * :class:`EncodedPayload`: the **full** encoded size — quantised
      values plus per-chunk scale metadata plus the fixed
      :data:`PAYLOAD_HEADER_BYTES` framing overhead;
    * flat ``np.ndarray`` (identity codec): raw ``nbytes``, so dropping
      the exchange dtype to float32
      (:func:`repro.nn.set_default_dtype`) halves the recorded traffic
      exactly as before;
    * state dict: summed entry ``nbytes``.

    Both federated paths (rounds and the isolated "w/o FL" ablation)
    meter payloads through this function, so their numbers stay
    comparable across codecs.
    """
    if isinstance(payload, EncodedPayload):
        scale_bytes = 0 if payload.scales is None else int(payload.scales.nbytes)
        return PAYLOAD_HEADER_BYTES + int(payload.values.nbytes) + scale_bytes
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    return state_dict_num_bytes(payload)


@dataclass(frozen=True)
class RoundCost:
    """Traffic of one communication round."""

    round_index: int
    num_clients: int
    bytes_down: int  # server -> clients (global model broadcast)
    bytes_up: int  # clients -> server (local model uploads)

    @property
    def total_bytes(self) -> int:
        return self.bytes_down + self.bytes_up


@dataclass
class CommunicationLedger:
    """Accumulates per-round communication costs."""

    rounds: list[RoundCost] = field(default_factory=list)

    def record_round(self, round_index: int, global_state,
                     uploaded_states: list,
                     num_broadcast: int | None = None,
                     broadcast_bytes: int | None = None,
                     upload_bytes: Sequence[int] | None = None) -> RoundCost:
        """Record one round's broadcast + uploads and return its cost.

        ``global_state`` and each upload may be a state dict, a flat
        ``(P,)`` parameter vector, or an :class:`EncodedPayload`.
        ``num_broadcast`` is the number of clients the global model was
        *sent* to; it defaults to the number of uploads, which is exact
        only when every selected client survives the round — with
        partial aggregation, failed clients still received the
        broadcast, so pass the selected count explicitly.

        Callers that already know the measured wire sizes (the async
        trainer meters payloads at encode time, before decoding for
        aggregation) pass ``broadcast_bytes`` (per recipient) and
        ``upload_bytes`` (one entry per accepted upload) explicitly;
        ``global_state``/``uploaded_states`` are then ignored for byte
        accounting.
        """
        if upload_bytes is not None:
            up = int(sum(upload_bytes))
            num_uploads = len(upload_bytes)
        else:
            up = sum(payload_num_bytes(s) for s in uploaded_states)
            num_uploads = len(uploaded_states)
        if num_broadcast is None:
            num_broadcast = num_uploads
        per_client_down = (broadcast_bytes if broadcast_bytes is not None
                           else payload_num_bytes(global_state))
        cost = RoundCost(
            round_index=round_index,
            num_clients=num_uploads,
            bytes_down=per_client_down * num_broadcast,
            bytes_up=up,
        )
        self.rounds.append(cost)
        return cost

    @property
    def total_bytes(self) -> int:
        """All traffic across all rounds."""
        return sum(r.total_bytes for r in self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def bytes_per_round(self) -> float:
        """Mean traffic per round (0.0 when nothing recorded)."""
        if not self.rounds:
            return 0.0
        return self.total_bytes / len(self.rounds)
