"""Communication-cost accounting.

The paper argues communication cost correlates with model parameters
and FLOPs [40, 41]; this ledger records the actual bytes shipped each
round (server -> selected clients and back) so the efficiency
experiments (Figure 5) can report measured traffic per method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.serialization import state_dict_num_bytes

__all__ = ["RoundCost", "CommunicationLedger", "payload_num_bytes"]


def payload_num_bytes(payload) -> int:
    """Wire size of one model payload: a flat vector or a state dict.

    Flat vectors and state dicts of the same model and dtype cost the
    same bytes; the flat path just computes it without iterating keys.
    Because this meters ``nbytes``, dropping the exchange dtype to
    float32 (:func:`repro.nn.set_default_dtype`) halves the recorded
    traffic — both federated paths (rounds and the isolated "w/o FL"
    ablation) account flat vectors, so their numbers stay comparable.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    return state_dict_num_bytes(payload)


@dataclass(frozen=True)
class RoundCost:
    """Traffic of one communication round."""

    round_index: int
    num_clients: int
    bytes_down: int  # server -> clients (global model broadcast)
    bytes_up: int  # clients -> server (local model uploads)

    @property
    def total_bytes(self) -> int:
        return self.bytes_down + self.bytes_up


@dataclass
class CommunicationLedger:
    """Accumulates per-round communication costs."""

    rounds: list[RoundCost] = field(default_factory=list)

    def record_round(self, round_index: int, global_state,
                     uploaded_states: list,
                     num_broadcast: int | None = None) -> RoundCost:
        """Record one round's broadcast + uploads and return its cost.

        ``global_state`` and each upload may be a state dict or a flat
        ``(P,)`` parameter vector.  ``num_broadcast`` is the number of
        clients the global model was *sent* to; it defaults to the
        number of uploads, which is exact only when every selected
        client survives the round — with partial aggregation, failed
        clients still received the broadcast, so pass the selected
        count explicitly.
        """
        if num_broadcast is None:
            num_broadcast = len(uploaded_states)
        down = payload_num_bytes(global_state) * num_broadcast
        up = sum(payload_num_bytes(s) for s in uploaded_states)
        cost = RoundCost(
            round_index=round_index,
            num_clients=len(uploaded_states),
            bytes_down=down,
            bytes_up=up,
        )
        self.rounds.append(cost)
        return cost

    @property
    def total_bytes(self) -> int:
        """All traffic across all rounds."""
        return sum(r.total_bytes for r in self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def bytes_per_round(self) -> float:
        """Mean traffic per round (0.0 when nothing recorded)."""
        if not self.rounds:
            return 0.0
        return self.total_bytes / len(self.rounds)
