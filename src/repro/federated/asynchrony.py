"""Asynchronous federated rounds: simulated latency + buffered aggregation.

At thousand-client scale a synchronous round is paced by its slowest
client: every upload waits at the barrier until the last straggler
lands.  The async mode replaces the barrier with a FedBuff-style
**buffered aggregator**: uploads are applied as they arrive, the global
model advances every ``K`` arrivals (one *flush*), and an upload that
trained against an old global version is down-weighted by its
staleness — ``weight ∝ base / (1 + staleness)^α`` — so late arrivals
still contribute without dragging the model backwards.

Determinism contract
--------------------
Wall-clock time never enters the simulation.  Client latency is drawn
from a :class:`LatencyModel` as a **pure function** of
``(seed, wave, client)`` — the same keyed-generator idiom as
:class:`~repro.federated.faults.FaultPlan` — and arrivals are processed
in ``(virtual arrival time, client id)`` order.  Consequently serial
and process-pool execution produce bit-identical async histories: the
pool changes *real* completion order, which the virtual clock ignores.

The trainer owns the wave loop; this module holds the deterministic
pieces — the latency draws, the staleness weighting, and the picklable
:class:`AsyncAggregatorState` that a checkpoint carries so a killed
async run resumes bit-identically (in-flight uploads included).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "LatencySpec", "LatencyModel", "resolve_latency_model",
    "PendingUpload", "AsyncAggregatorState", "staleness_weights",
]


@dataclass(frozen=True)
class LatencySpec:
    """Parameters of the simulated per-upload network/compute latency.

    An upload dispatched at wave ``w`` to client ``c`` arrives
    ``base + jitter * u`` virtual seconds later, where ``u`` is drawn
    uniformly from ``[0, 1)`` by a generator keyed on
    ``(seed, wave, client)``.  With probability ``heavy`` the draw is a
    heavy-tail straggler and the latency is multiplied by
    ``heavy_factor`` — the knob that makes "straggler-heavy" async
    schedules reproducible.
    """

    seed: int = 0
    base: float = 1.0
    jitter: float = 1.0
    heavy: float = 0.0  # probability of a heavy-tail draw
    heavy_factor: float = 10.0

    def __post_init__(self):
        if self.base < 0 or self.jitter < 0:
            raise ValueError("base and jitter must be non-negative")
        if not 0.0 <= self.heavy <= 1.0:
            raise ValueError("heavy must be a probability in [0, 1]")
        if self.heavy_factor < 1.0:
            raise ValueError("heavy_factor must be >= 1")


@dataclass(frozen=True)
class LatencyModel:
    """A seeded, deterministic latency schedule (pure draws)."""

    spec: LatencySpec

    def draw(self, wave: int, client_id: int) -> float:
        """Virtual seconds between dispatch and arrival for this upload."""
        spec = self.spec
        rng = np.random.default_rng((spec.seed, 3, wave, client_id))
        latency = spec.base + spec.jitter * float(rng.random())
        if spec.heavy and float(rng.random()) < spec.heavy:
            latency *= spec.heavy_factor
        return latency

    # -- spec-string round trip ---------------------------------------------
    _SPEC_KEYS = {
        "seed": ("seed", int),
        "base": ("base", float),
        "jitter": ("jitter", float),
        "heavy": ("heavy", float),
        "heavy_factor": ("heavy_factor", float),
    }

    @classmethod
    def from_spec(cls, text: str) -> "LatencyModel":
        """Parse ``"base=1,jitter=2,heavy=0.1,seed=7"`` into a model."""
        spec = LatencySpec()
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"latency item {item!r} is not key=value")
            key, _, value = item.partition("=")
            entry = cls._SPEC_KEYS.get(key.strip())
            if entry is None:
                raise ValueError(
                    f"unknown latency key {key.strip()!r}; expected one of "
                    f"{sorted(cls._SPEC_KEYS)}")
            field_name, cast = entry
            spec = replace(spec, **{field_name: cast(value.strip())})
        return cls(spec)

    def spec_string(self) -> str:
        """The ``from_spec`` form of this model (round-trips)."""
        spec = self.spec
        parts = [f"seed={spec.seed}", f"base={spec.base:g}",
                 f"jitter={spec.jitter:g}"]
        if spec.heavy:
            parts.append(f"heavy={spec.heavy:g}")
            parts.append(f"heavy_factor={spec.heavy_factor:g}")
        return ",".join(parts)


def resolve_latency_model(model: "LatencyModel | LatencySpec | str | None",
                          ) -> LatencyModel:
    """Normalise a config-level latency value (None = default spec)."""
    if model is None:
        return LatencyModel(LatencySpec())
    if isinstance(model, LatencyModel):
        return model
    if isinstance(model, LatencySpec):
        return LatencyModel(model)
    if isinstance(model, str):
        if not model.strip():
            return LatencyModel(LatencySpec())
        return LatencyModel.from_spec(model)
    raise TypeError(f"cannot interpret latency model {model!r}")


@dataclass
class PendingUpload:
    """One trained upload travelling (or buffered) in virtual time."""

    client_id: int
    arrival_time: float  # virtual seconds since the run started
    vector: np.ndarray  # decoded float64 upload (post-codec)
    base_weight: float  # FedAvg example count (or 1.0 for uniform)
    version: int  # global-model version the client trained against
    loss: float
    lam: float
    payload_bytes: int  # measured wire size of the encoded upload
    dispatch_wave: int  # wave index that dispatched it (telemetry)


@dataclass
class AsyncAggregatorState:
    """The mutable state of the buffered async aggregator.

    Picklable and checkpointed whole: a killed-and-resumed async run
    replays the identical arrival/flush schedule because the in-flight
    and buffered uploads — already-trained vectors — travel with it.
    """

    virtual_now: float = 0.0
    version: int = 0  # number of flushes applied to the global model
    in_flight: list[PendingUpload] = field(default_factory=list)
    buffer: list[PendingUpload] = field(default_factory=list)

    def busy_clients(self) -> set[int]:
        """Clients with an upload still travelling or buffered — they
        must not be re-sampled until their upload is applied."""
        return ({u.client_id for u in self.in_flight}
                | {u.client_id for u in self.buffer})

    def take_buffer(self) -> list[PendingUpload]:
        """Drain the buffer for one flush: returns the buffered uploads
        in arrival order and leaves the buffer empty."""
        entries, self.buffer = self.buffer, []
        return entries


def staleness_weights(base_weights, staleness, alpha: float) -> np.ndarray:
    """FedBuff-style aggregation weights: ``base / (1 + s)^alpha``.

    ``staleness`` counts the flushes the global model advanced between
    an upload's dispatch and its flush.  At ``alpha = 0`` the weights
    equal ``base_weights`` exactly — buffered aggregation degenerates
    to plain FedAvg over the buffer, which the async tests pin.
    """
    base = np.asarray(base_weights, dtype=np.float64)
    stale = np.asarray(staleness, dtype=np.float64)
    if base.shape != stale.shape:
        raise ValueError("base_weights and staleness must align")
    if np.any(stale < 0):
        raise ValueError("staleness must be non-negative")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if alpha == 0.0:
        return base.copy()
    return base / np.power(1.0 + stale, alpha)
