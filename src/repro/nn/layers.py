"""Feed-forward layers: Linear (Dense), Embedding, Dropout, activations.

The paper's "lightweight ST-operator" is built from exactly these pieces
(pure-MLP multi-task head), so the Dense layer here is the workhorse of
the whole reproduction.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from .backend import ops
from .functional import addmm
from .functional import dropout as dropout_fn
from .functional import embedding_lookup
from .fusion import fused_kernels_enabled
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LayerNorm",
    "MLP",
]


class Linear(Module):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Whether to add a learned bias.
    rng:
        Generator used for Xavier initialisation.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializers.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(initializers.zeros_init((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if fused_kernels_enabled():
            return addmm(x, self.weight, self.bias)
        # Reference path: matmul + add as separate tape nodes.
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding sizes must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        scale = 1.0 / ops.sqrt(embedding_dim)
        self.weight = Parameter(initializers.uniform((num_embeddings, embedding_dim), rng, scale))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return embedding_lookup(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self._rng, training=self.training)


class ReLU(Module):
    """Elementwise max(0, x)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Elementwise tanh."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Elementwise logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / ((var + self.eps) ** 0.5)
        return normed * self.gamma + self.beta


class MLP(Module):
    """Multi-layer perceptron with ReLU between hidden layers.

    This is the pure-MLP block the paper substitutes for heavyweight
    CNN/Attn ST-operators (Section III / IV-B2).
    """

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 activate_last: bool = False):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        from .module import ModuleList

        self.dims = list(dims)
        self.activate_last = activate_last
        self.layers = ModuleList(
            [Linear(dims[i], dims[i + 1], rng) for i in range(len(dims) - 1)]
        )

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i != last or self.activate_last:
                x = x.relu()
        return x
