"""Optimisers: SGD (with momentum) and Adam, plus gradient clipping.

The paper trains with an initial learning rate of 1e-3; we default to
Adam which is what MTrajRec-style recovery models use in practice.

Both optimisers run on a :class:`~repro.nn.flatten.FlatParameterSpace`:
parameters and gradients are gathered into contiguous ``(P,)`` buffers
once per step and the update rule is a handful of vectorized NumPy ops,
instead of ~10 small-array operations per parameter tensor.  The
elementwise arithmetic matches the per-parameter formulation to within
float64 rounding (verified in the tests).  When some parameters
have no gradient (rare: a head unused by an ablation), the optimisers
fall back to the per-parameter reference loop to preserve the exact
"skip params without grads" semantics.

Master-weight contract (mixed precision)
----------------------------------------
At ``float32`` compute (:func:`repro.nn.set_compute_dtype`) the
parameters and gradients live in float32, but the optimiser state never
does: the gather buffers and the moment vectors are **always float64**,
gradients upcast into them at gather time, the whole update rule runs
in float64, and the result is cast back to the parameter dtype only at
the final :meth:`FlatParameterSpace.set_flat` scatter.  This keeps
federated histories aggregation-stable — shipped session state
(:meth:`Optimizer.state_flat`) is float64 at any compute dtype, so
serial and process-pool rounds stay bit-identical to each other — and
confines the float32 rounding to one cast per parameter per step.  The
float64 master view is re-materialised from the parameters each step
(sub-float32 parameter residuals are not carried between steps; the
moments, which drive the update direction, are).
"""

from __future__ import annotations

import numpy as np

from .backend import ops
from .flatten import FlatParameterSpace
from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimiser holding a parameter list and its flat view."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self._space = FlatParameterSpace(self.parameters)
        # Reused float64 master-view gather buffers (avoid reallocating
        # (P,) arrays per step; float32 params/grads upcast per slice).
        self._theta = np.empty(self._space.total_size, dtype=np.float64)
        self._grad = np.empty(self._space.total_size, dtype=np.float64)

    def _param_views(self, flat: np.ndarray) -> list[np.ndarray]:
        """Per-parameter reshaped views into a flat buffer."""
        layout = self._space.layout
        return [flat[o:o + s].reshape(shape)
                for o, s, shape in zip(layout.offsets, layout.sizes, layout.shapes)]

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # flat state shipping (parallel round runners, checkpoints)
    # ------------------------------------------------------------------
    def _check_flat(self, name: str, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=np.float64).reshape(-1)
        if value.size != self._space.total_size:
            raise ValueError(
                f"optimizer state {name!r} has {value.size} elements, "
                f"expected {self._space.total_size}"
            )
        return value

    def state_flat(self) -> dict:
        """The optimiser's mutable state as flat float64 buffers.

        The returned arrays are copies: shipping them across a process
        boundary (or holding them between federated rounds) never
        aliases the live buffers.  Stateless optimisers return ``{}``.
        """
        return {}

    def load_state_flat(self, state: dict) -> None:
        """Restore state captured by :meth:`state_flat` (copies in place,
        so existing per-parameter views of the buffers stay valid)."""
        if state:
            raise ValueError(f"unexpected optimizer state keys {sorted(state)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity_flat = np.zeros(self._space.total_size, dtype=np.float64)
        self._velocity = self._param_views(self._velocity_flat)

    def state_flat(self) -> dict:
        return {"velocity": self._velocity_flat.copy()}

    def load_state_flat(self, state: dict) -> None:
        if set(state) != {"velocity"}:
            raise ValueError(f"SGD state expects {{'velocity'}}, got {sorted(state)}")
        self._velocity_flat[...] = self._check_flat("velocity", state["velocity"])

    def step(self) -> None:
        if self._space.all_grads_present():
            theta = self._space.get_flat(self._theta)
            grad = self._space.get_flat_grad(self._grad)
            if self.weight_decay:
                grad += self.weight_decay * theta
            if self.momentum:
                v = self._velocity_flat
                v *= self.momentum
                v += grad
                grad = v
            theta -= self.lr * grad
            self._space.set_flat(theta)
            return
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = np.asarray(p.grad, dtype=np.float64)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            # Update in float64, cast back at the parameter write (the
            # same contract as the flat path's set_flat scatter).
            p.data = (p.data - self.lr * grad).astype(p.data.dtype,
                                                      copy=False)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m_flat = np.zeros(self._space.total_size, dtype=np.float64)
        self._v_flat = np.zeros(self._space.total_size, dtype=np.float64)
        self._m = self._param_views(self._m_flat)
        self._v = self._param_views(self._v_flat)
        self._denom = np.empty(self._space.total_size, dtype=np.float64)
        self._update = np.empty(self._space.total_size, dtype=np.float64)
        self._t = 0

    def state_flat(self) -> dict:
        return {"m": self._m_flat.copy(), "v": self._v_flat.copy(), "t": self._t}

    def load_state_flat(self, state: dict) -> None:
        if set(state) != {"m", "v", "t"}:
            raise ValueError(f"Adam state expects {{'m', 'v', 't'}}, got {sorted(state)}")
        self._m_flat[...] = self._check_flat("m", state["m"])
        self._v_flat[...] = self._check_flat("v", state["v"])
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        if self._space.all_grads_present():
            theta = self._space.get_flat(self._theta)
            grad = self._space.get_flat_grad(self._grad)
            if self.weight_decay:
                grad += self.weight_decay * theta
            m, v = self._m_flat, self._v_flat
            # v first (needs grad^2), then m can consume the grad buffer.
            v *= self.beta2
            sq = ops.multiply(grad, grad, out=self._denom)
            sq *= 1.0 - self.beta2
            v += sq
            m *= self.beta1
            grad *= 1.0 - self.beta1
            m += grad
            # update = lr * (m / bias1) / (sqrt(v / bias2) + eps) with the
            # bias corrections folded into scalars:
            #   = (lr * sqrt(bias2) / bias1) * m / (sqrt(v) + eps * sqrt(bias2))
            root_bias2 = ops.sqrt(bias2)
            denom = ops.sqrt(v, out=self._denom)
            denom += self.eps * root_bias2
            update = ops.divide(m, denom, out=self._update)
            update *= self.lr * root_bias2 / bias1
            theta -= update
            self._space.set_flat(theta)
            return
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = np.asarray(p.grad, dtype=np.float64)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            # Update in float64, cast back at the parameter write.
            p.data = (p.data - self.lr * m_hat
                      / (ops.sqrt(v_hat) + self.eps)).astype(p.data.dtype,
                                                            copy=False)


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for convergence diagnostics).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(ops.sqrt(np.fromiter(
        (ops.dot(g.reshape(-1), g.reshape(-1)) for g in grads),
        dtype=np.float64, count=len(grads)).sum()))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total
