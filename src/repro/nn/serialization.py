"""Saving and loading model weights (``.npz`` state dicts).

Federated clients ship state dicts in memory; this module adds the
disk format used by examples and by checkpointing in long benchmarks.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from .module import Module

__all__ = ["save_state_dict", "load_state_dict", "state_dict_num_bytes"]


def save_state_dict(model_or_state, path: str) -> None:
    """Write a model's parameters to ``path`` as a compressed ``.npz``."""
    state = model_or_state.state_dict() if isinstance(model_or_state, Module) else model_or_state
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state_dict(path: str) -> "OrderedDict[str, np.ndarray]":
    """Read a state dict written by :func:`save_state_dict`."""
    with np.load(path) as payload:
        return OrderedDict((k, payload[k]) for k in payload.files)


def state_dict_num_bytes(state: dict) -> int:
    """Size of a state dict on the wire (float64 payload bytes).

    This is the per-round upload/download cost accounted by
    :mod:`repro.federated.communication`.
    """
    return int(sum(np.asarray(v).nbytes for v in state.values()))
