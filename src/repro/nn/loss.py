"""Loss functions used by LightTR and the baselines.

The paper's local objective (Eq. 13) combines a cross-entropy term for
road-segment classification (Eq. 14) with a mean-squared-error term for
the moving ratio (Eq. 15), plus an L2 knowledge-distillation term
against the teacher's predictions (Eq. 16).
"""

from __future__ import annotations

import numpy as np

from .functional import gather_rows, log_softmax
from .fusion import fused_kernels_enabled
from .tensor import Tensor, as_tensor


def _pick(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """One log-probability per row, via the fused pick or the reference
    fancy-index node (kept for faithful per-step-path timing)."""
    if fused_kernels_enabled():
        return gather_rows(log_probs, targets)
    return log_probs[np.arange(log_probs.shape[0]), targets]

__all__ = ["cross_entropy", "mse_loss", "l1_loss", "distillation_loss", "nll_from_log_probs"]


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy between ``logits (N, C)`` and integer ``targets (N,)``.

    Parameters
    ----------
    logits:
        Unnormalised class scores.
    targets:
        Integer class indices.
    weights:
        Optional per-sample weights (e.g. to mask padded steps).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got shape {logits.shape}")
    n, c = logits.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} does not match logits {logits.shape}")
    if targets.size and (targets.min() < 0 or targets.max() >= c):
        raise IndexError("target class index out of range")
    log_probs = log_softmax(logits, axis=-1)
    picked = _pick(log_probs, targets)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("cross_entropy weights sum to zero")
        return -(picked * weights).sum() * (1.0 / total)
    return -picked.mean()


def nll_from_log_probs(log_probs: Tensor, targets: np.ndarray,
                       weights: np.ndarray | None = None) -> Tensor:
    """Negative log-likelihood when the model already outputs log-probs.

    The constraint-mask layer of LightTR produces a masked *probability*
    distribution directly (paper Eq. 11), so its loss consumes log-probs
    rather than raw logits.
    """
    targets = np.asarray(targets, dtype=np.int64)
    picked = _pick(log_probs, targets)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("nll weights sum to zero")
        return -(picked * weights).sum() * (1.0 / total)
    return -picked.mean()


def mse_loss(prediction: Tensor, target, weights: np.ndarray | None = None) -> Tensor:
    """Mean squared error, optionally sample-weighted."""
    target = as_tensor(target)
    diff = prediction - target
    sq = diff * diff
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("mse weights sum to zero")
        return (sq * weights).sum() * (1.0 / total)
    return sq.mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error (used in some ablation diagnostics)."""
    target = as_tensor(target)
    diff = prediction - target
    return ((diff * diff) ** 0.5).mean()


def distillation_loss(teacher_output: Tensor, student_output: Tensor) -> Tensor:
    """Paper Eq. 16: ``||f_tea(T) - f_stu(T)||_2^2`` (mean over elements).

    The teacher output is detached: distillation shapes the student only.
    """
    diff = student_output - teacher_output.detach()
    return (diff * diff).mean()
