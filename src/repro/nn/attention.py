"""Attention operators.

LightTR itself deliberately avoids attention (that is the point of the
lightweight ST-operator), but the paper's strongest baselines -
MTrajRec+FL (Seq2Seq with attention) and RNTrajRec+FL (transformer-style
encoder) - need it, as does the Table II complexity analysis.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from .backend import ops
from .functional import concat, softmax
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["scaled_dot_product_attention", "AdditiveAttention", "SelfAttention"]


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
    """Compute ``softmax(QK^T / sqrt(d)) V``.

    Shapes: ``q`` is ``(..., Tq, d)``, ``k``/``v`` are ``(..., Tk, d)``.
    Returns the attended values and the attention weights.
    """
    d = q.shape[-1]
    scores = (q @ k.transpose(*range(k.ndim - 2), k.ndim - 1, k.ndim - 2)) * (1.0 / ops.sqrt(d))
    weights = softmax(scores, axis=-1)
    return weights @ v, weights


class AdditiveAttention(Module):
    """Bahdanau-style attention used by the MTrajRec baseline decoder.

    ``score(h, s_i) = v^T tanh(W_h h + W_s s_i)`` over encoder states
    ``s_i``; returns the context vector.
    """

    def __init__(self, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.w_query = Parameter(initializers.xavier_uniform((hidden_size, hidden_size), rng))
        self.w_keys = Parameter(initializers.xavier_uniform((hidden_size, hidden_size), rng))
        self.v = Parameter(initializers.xavier_uniform((hidden_size, 1), rng))

    def forward(self, query: Tensor, keys: Tensor,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Attend ``query`` ``(B, H)`` over ``keys`` ``(B, T, H)``.

        Returns ``(context (B, H), weights (B, T))``.
        """
        batch, steps, hidden = keys.shape
        q = (query @ self.w_query).reshape(batch, 1, hidden)
        k = keys @ self.w_keys
        energy = (q + k).tanh() @ self.v  # (B, T, 1)
        energy = energy.reshape(batch, steps)
        if mask is not None:
            from .functional import where_mask

            energy = where_mask(mask, energy, -1e9)
        weights = softmax(energy, axis=-1)
        context = (weights.reshape(batch, 1, steps) @ keys).reshape(batch, hidden)
        return context, weights

    def project_keys(self, keys: np.ndarray) -> np.ndarray:
        """Precompute ``keys @ W_s`` once per decode session.

        The key projection is identical at every decode step (the
        encoder states are fixed), so packed decode sessions hoist it
        out of the step loop; the per-step tape path recomputes it with
        the same operations, hence identical values.
        """
        return keys @ self.w_keys.data

    def step_array(self, query: np.ndarray, keys: np.ndarray,
                   keys_proj: np.ndarray,
                   mask: np.ndarray | None = None) -> np.ndarray:
        """One tape-free attention read on raw arrays (decode-engine
        kernel): mirrors :meth:`forward` with ``keys_proj`` from
        :meth:`project_keys`, except that the single-output energy
        projection goes through :func:`repro.nn.row_dot` so its bits do
        not depend on the decode working-set size.  Returns the context
        vectors ``(B, H)``.
        """
        from .functional import row_dot

        batch, steps, hidden = keys.shape
        q = (query @ self.w_query.data).reshape(batch, 1, hidden)
        energy = row_dot(ops.tanh(q + keys_proj), self.v.data)  # (B, T)
        if mask is not None:
            energy = ops.where(np.asarray(mask, dtype=bool), energy, -1e9)
        weights = energy - energy.max(axis=-1, keepdims=True)
        ops.exp(weights, out=weights)
        weights /= weights.sum(axis=-1, keepdims=True)
        return (weights.reshape(batch, 1, steps) @ keys).reshape(batch, hidden)


class SelfAttention(Module):
    """Single-head self-attention block (RNTrajRec baseline encoder).

    Includes the residual connection and a position-wise feed-forward
    layer, i.e. a minimal transformer encoder block.
    """

    def __init__(self, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        from .layers import LayerNorm, Linear

        self.hidden_size = hidden_size
        self.w_q = Linear(hidden_size, hidden_size, rng, bias=False)
        self.w_k = Linear(hidden_size, hidden_size, rng, bias=False)
        self.w_v = Linear(hidden_size, hidden_size, rng, bias=False)
        self.ff1 = Linear(hidden_size, hidden_size * 2, rng)
        self.ff2 = Linear(hidden_size * 2, hidden_size, rng)
        self.norm1 = LayerNorm(hidden_size)
        self.norm2 = LayerNorm(hidden_size)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the block to ``x`` of shape ``(B, T, H)``."""
        attended, _ = scaled_dot_product_attention(self.w_q(x), self.w_k(x), self.w_v(x))
        x = self.norm1(x + attended)
        hidden = self.ff2(self.ff1(x).relu())
        return self.norm2(x + hidden)
