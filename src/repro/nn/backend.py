"""Pluggable array backend: the single dispatch seam for kernel math.

Every nn kernel module (tensor/functional/recurrent/attention/layers/
loss/optim/flatten/init), the serving engine and decode programs, and
the constraint-mask kernels route their array math through the
module-level :data:`ops` namespace here instead of calling ``np.*``
directly (``tools/check_backend.py`` lints the seam).  Array
*construction* (``np.empty`` / ``np.asarray`` / dtype constants) and
ndarray *methods* (``x.sum(...)``, ``x @ w``, fancy indexing) stay as
they are — the seam covers the free-function call sites where an
alternative array engine could plug in.

Two layers:

**The ops table.**  An :class:`ArrayBackend` binds every name in
:data:`OP_NAMES` to a callable.  The ``reference`` backend binds the
NumPy functions *directly* (``ops.exp is np.exp``), so dispatch through
the seam costs one module-attribute load — the same cost as ``np.exp``
— and the reference backend is bitwise-identical to the pre-seam code
by construction.  :func:`set_backend` rebinds the :data:`ops`
attributes in place, so ``from .backend import ops`` imports observe
switches immediately.

**The hot-kernel registry.**  Multi-step kernels (the fused RNN/GRU/
LSTM scans, the dense/masked/CSR-sparse log-softmax cores, the packed
decode step) dispatch through :func:`call_kernel(name, reference, ...)
<call_kernel>`: the active backend may register an accelerated
implementation under ``name``; when none is registered — or a
registered one raises — the call falls back to ``reference`` (a raising
kernel is disabled for the rest of the process, so a broken accelerated
path degrades to reference behaviour instead of failing the run).
Shipped implementations:

* ``reference`` — empty registry; every kernel runs its reference code.
* ``workspace`` — pure-NumPy variants that preallocate and reuse
  ``out=`` scratch buffers across steps (see :class:`Workspace`) and
  precompute per-working-set decode plans.  Same operations in the same
  order writing into pooled buffers, so outputs stay **bitwise
  identical** to the reference backend (the tier-1 suite runs fully
  under ``REPRO_BACKEND=workspace`` in CI).
* ``numba`` — jitted scan loops, registered only when :mod:`numba`
  imports (never a hard dependency); falls back per kernel otherwise.

Like the fused/sparse/packed/dtype flags, the selection is
process-global (:func:`set_backend` / :func:`use_backend` /
``REPRO_BACKEND``), ships on :class:`~repro.federated.runner.RoundTask`,
and is re-asserted inside pool workers.  :func:`backend_generation`
increments on every switch so lazily-built caches (dataset collation,
mask mirrors, decode plans) can key on — or invalidate at — backend
changes.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np

__all__ = [
    "ArrayBackend", "Workspace", "ops", "workspace",
    "get_backend", "set_backend", "use_backend",
    "available_backends", "backend_generation",
    "register_backend", "register_kernel", "call_kernel",
    "OP_NAMES",
]

#: The array operations the substrate actually uses (RNG-free: random
#: draws stay on ``np.random.Generator`` streams so every backend sees
#: identical data).  A backend must provide all of them.
OP_NAMES = (
    # matmul / contractions
    "matmul", "dot",
    # elementwise
    "exp", "log", "tanh", "sqrt", "sign", "negative", "reciprocal",
    "add", "subtract", "multiply", "divide",
    "maximum", "minimum", "clip", "where", "floor_divide",
    # reductions / scans
    "cumsum", "diff", "add_reduceat", "maximum_reduceat",
    # index / search / sort
    "argmax", "argsort", "searchsorted", "flatnonzero", "unique",
    "repeat", "add_at", "array_equal",
    # data movement / shape
    "concatenate", "stack", "expand_dims", "swapaxes", "broadcast_to",
    # linear algebra / structured
    "diag", "qr",
)

#: NumPy bindings for every op — the reference implementation and the
#: fallback any backend starts from.
_NUMPY_OPS = {name: getattr(np, name) for name in OP_NAMES
              if name not in ("add_at", "add_reduceat", "maximum_reduceat",
                              "qr")}
_NUMPY_OPS["add_at"] = np.add.at
_NUMPY_OPS["add_reduceat"] = np.add.reduceat
_NUMPY_OPS["maximum_reduceat"] = np.maximum.reduceat
_NUMPY_OPS["qr"] = np.linalg.qr


class ArrayBackend:
    """One array engine: an op table plus a hot-kernel registry.

    ``op_overrides`` replaces individual :data:`OP_NAMES` bindings
    (unlisted ops keep their NumPy reference binding); ``kernels`` maps
    hot-kernel names to accelerated implementations (see
    :func:`call_kernel`).  ``failed_kernels`` collects kernels disabled
    after raising — per backend, per process.
    """

    __slots__ = ("name", "ops", "kernels", "failed_kernels")

    def __init__(self, name: str, op_overrides: dict | None = None,
                 kernels: dict | None = None):
        self.name = name
        self.ops = dict(_NUMPY_OPS)
        if op_overrides:
            unknown = set(op_overrides) - set(OP_NAMES)
            if unknown:
                raise ValueError(f"unknown op names {sorted(unknown)}")
            self.ops.update(op_overrides)
        self.kernels = dict(kernels or {})
        self.failed_kernels: set[str] = set()


class _OpsNamespace:
    """The live op table; attributes rebound in place by backend switches.

    ``__slots__`` keeps attribute access a fixed-offset load and makes
    binding a non-op name an immediate error.
    """

    __slots__ = OP_NAMES


ops = _OpsNamespace()


class Workspace:
    """Per-process pool of reusable scratch buffers for ``out=`` kernels.

    ``take(shape, dtype, tag)`` hands out one buffer per distinct key,
    creating it on first use.  Contract: a kernel may only write pooled
    buffers it will not let escape — not node data, not closure-captured
    saved activations, nothing a caller retains past the call.  Distinct
    simultaneous buffers inside one kernel need distinct ``tag`` values;
    buffers whose lifetimes never overlap may share a key.  The pool is
    bounded: it clears wholesale past ``capacity`` distinct keys (cheap,
    and shapes are few on real workloads).
    """

    __slots__ = ("_buffers", "capacity")

    def __init__(self, capacity: int = 256):
        self._buffers: dict = {}
        self.capacity = capacity

    def take(self, shape: tuple[int, ...], dtype, tag: str = "") -> np.ndarray:
        key = (shape, np.dtype(dtype).char, tag)
        buf = self._buffers.get(key)
        if buf is None:
            if len(self._buffers) >= self.capacity:
                self._buffers.clear()
            buf = np.empty(shape, dtype)
            self._buffers[key] = buf
        return buf

    def clear(self) -> None:
        self._buffers.clear()


#: The shared scratch pool workspace-backend kernels draw from.
workspace = Workspace()

_BACKENDS: dict[str, ArrayBackend] = {}
_GENERATION = 0


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Add ``backend`` to the registry (name collisions replace)."""
    _BACKENDS[backend.name] = backend
    return backend


_REFERENCE = register_backend(ArrayBackend("reference"))
_WORKSPACE = register_backend(ArrayBackend("workspace"))
_ACTIVE = _REFERENCE


def _install(backend: ArrayBackend) -> None:
    for name in OP_NAMES:
        setattr(ops, name, backend.ops[name])


_install(_ACTIVE)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (``numba`` only if it imports)."""
    return tuple(sorted(_BACKENDS))


def get_backend() -> str:
    """Name of the active backend."""
    return _ACTIVE.name


def backend_generation() -> int:
    """Monotone counter bumped by every backend switch.

    Lazily-built caches key derived arrays on this (or on
    :func:`get_backend`) so a mid-process switch cannot serve arrays
    built by the previous backend.
    """
    return _GENERATION


def set_backend(name: str) -> str:
    """Activate backend ``name``; returns the previous backend's name."""
    global _ACTIVE, _GENERATION
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(f"unknown backend {name!r}; "
                         f"available: {', '.join(available_backends())}")
    previous = _ACTIVE.name
    if backend is not _ACTIVE:
        _ACTIVE = backend
        _GENERATION += 1
        _install(backend)
    return previous


@contextlib.contextmanager
def use_backend(name: str):
    """Context manager scoping the backend selection."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def register_kernel(backend_name: str, kernel_name: str, fn) -> None:
    """Register ``fn`` as backend ``backend_name``'s ``kernel_name``.

    Kernel modules call this at import time for the built-in backends;
    custom backends may register at any point.  Raises ``ValueError``
    for an unregistered backend name.
    """
    backend = _BACKENDS.get(backend_name)
    if backend is None:
        raise ValueError(f"unknown backend {backend_name!r}")
    backend.kernels[kernel_name] = fn


def call_kernel(name: str, reference, *args):
    """Dispatch hot kernel ``name`` through the active backend.

    Runs the backend's registered implementation when one exists and
    has not previously raised; otherwise runs ``reference``.  An
    implementation that raises is disabled for the rest of the process
    (per backend) and the call transparently re-runs the reference —
    the fallback contract that keeps accelerated backends safe to
    enable by default.
    """
    backend = _ACTIVE
    impl = backend.kernels.get(name)
    if impl is None or name in backend.failed_kernels:
        return reference(*args)
    try:
        return impl(*args)
    except Exception:
        backend.failed_kernels.add(name)
        return reference(*args)


def _init_numba_backend() -> None:
    """Register the numba backend when numba is importable (never a
    hard dependency; kernels jit lazily on first call and fall back per
    kernel through :func:`call_kernel` if compilation fails)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return
    backend = register_backend(ArrayBackend("numba"))
    from . import _numba_kernels
    _numba_kernels.register(backend)


_init_numba_backend()

_ENV_BACKEND = os.environ.get("REPRO_BACKEND")
if _ENV_BACKEND:
    set_backend(_ENV_BACKEND)
