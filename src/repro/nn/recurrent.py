"""Recurrent layers: vanilla RNN cell, GRU cell, and sequence wrappers.

The LightTR embedding model is a GRU over the observed trajectory
(paper Eq. 5-6); the lightweight ST-operator uses a single RNN layer
(paper Eq. 7).  Both are implemented here on the autograd substrate.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from .functional import concat, stack
from .module import Module, Parameter
from .tensor import Tensor, zeros

__all__ = ["RNNCell", "GRUCell", "LSTMCell", "RNN", "GRU", "LSTM"]


class RNNCell(Module):
    """Elman RNN cell: ``h' = tanh(x @ W_x + h @ W_h + b)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(initializers.xavier_uniform((input_size, hidden_size), rng))
        self.w_h = Parameter(initializers.orthogonal((hidden_size, hidden_size), rng))
        self.bias = Parameter(initializers.zeros_init((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return (x @ self.w_x + h @ self.w_h + self.bias).tanh()

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state of shape ``(batch, hidden)``."""
        return zeros(batch, self.hidden_size)


class GRUCell(Module):
    """Gated recurrent unit cell (paper Eq. 5).

    ``r = sigma(W_r [h, x] + b_r)``; ``z = sigma(W_z [h, x] + b_z)``;
    ``h~ = tanh(W_h [r*h, x] + b_h)``; ``h' = (1-z)*h + z*h~``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.w_r = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_z = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_h = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.b_r = Parameter(initializers.zeros_init((hidden_size,)))
        self.b_z = Parameter(initializers.zeros_init((hidden_size,)))
        self.b_h = Parameter(initializers.zeros_init((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hx = concat([h, x], axis=-1)
        r = (hx @ self.w_r + self.b_r).sigmoid()
        z = (hx @ self.w_z + self.b_z).sigmoid()
        rhx = concat([r * h, x], axis=-1)
        h_tilde = (rhx @ self.w_h + self.b_h).tanh()
        return (1.0 - z) * h + z * h_tilde

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state of shape ``(batch, hidden)``."""
        return zeros(batch, self.hidden_size)


class LSTMCell(Module):
    """Long short-term memory cell (encoder-ablation alternative to GRU).

    The hidden state is carried as the concatenation ``[h, c]`` of the
    output and cell states so LSTM plugs into the same sequence driver
    as the other cells; ``initial_state`` returns ``(batch, 2H)``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.w_i = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_f = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_o = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_g = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.b_i = Parameter(initializers.zeros_init((hidden_size,)))
        # Forget-gate bias starts at 1: the standard trick for gradient flow.
        self.b_f = Parameter(np.ones(hidden_size))
        self.b_o = Parameter(initializers.zeros_init((hidden_size,)))
        self.b_g = Parameter(initializers.zeros_init((hidden_size,)))

    def forward(self, x: Tensor, state: Tensor) -> Tensor:
        h = state[:, : self.hidden_size]
        c = state[:, self.hidden_size :]
        hx = concat([h, x], axis=-1)
        i = (hx @ self.w_i + self.b_i).sigmoid()
        f = (hx @ self.w_f + self.b_f).sigmoid()
        o = (hx @ self.w_o + self.b_o).sigmoid()
        g = (hx @ self.w_g + self.b_g).tanh()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return concat([h_next, c_next], axis=-1)

    def initial_state(self, batch: int) -> Tensor:
        """Zero ``[h, c]`` state of shape ``(batch, 2 * hidden)``."""
        return zeros(batch, 2 * self.hidden_size)


class _SequenceRNN(Module):
    """Shared driver that unrolls a cell over a ``(B, T, D)`` input."""

    cell: Module

    def forward(self, x: Tensor, h0: Tensor | None = None,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Run the cell over time.

        Parameters
        ----------
        x:
            Input of shape ``(B, T, D)``.
        h0:
            Optional initial state ``(B, H)``.
        mask:
            Optional boolean validity mask ``(B, T)``; where false, the
            hidden state is carried through unchanged (padding steps).

        Returns
        -------
        (outputs, last_state):
            ``outputs`` is ``(B, T, H)`` of per-step hidden states and
            ``last_state`` is the final ``(B, H)`` state.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, D) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else self.cell.initial_state(batch)
        outputs: list[Tensor] = []
        for t in range(steps):
            xt = x[:, t, :]
            h_next = self.cell(xt, h)
            if mask is not None:
                keep = mask[:, t : t + 1].astype(np.float64)
                h = h_next * keep + h * (1.0 - keep)
            else:
                h = h_next
            outputs.append(h)
        return stack(outputs, axis=1), h


class RNN(_SequenceRNN):
    """Unrolled Elman RNN over a batch of sequences."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = RNNCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size


class GRU(_SequenceRNN):
    """Unrolled GRU over a batch of sequences (the LTE embedding model)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size


class LSTM(_SequenceRNN):
    """Unrolled LSTM; exposes only the ``h`` part of the state.

    Outputs and the final state have width ``hidden_size`` like the
    other wrappers (the internal cell state stays private), so LSTM is
    a drop-in encoder replacement for the GRU ablation.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, h0: Tensor | None = None,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        outputs, last = super().forward(x, h0=h0, mask=mask)
        return outputs[:, :, : self.hidden_size], last[:, : self.hidden_size]
