"""Recurrent layers: vanilla RNN cell, GRU cell, and sequence wrappers.

The LightTR embedding model is a GRU over the observed trajectory
(paper Eq. 5-6); the lightweight ST-operator uses a single RNN layer
(paper Eq. 7).  Both are implemented here on the autograd substrate.

Two execution paths exist for the sequence wrappers:

* the **fused kernels** (default): the whole ``(B, T)`` scan runs
  forward in NumPy and registers a *single* tape node whose backward is
  a hand-written BPTT — input/weight gradients collapse into a few
  large matmuls over the ``(B*T, ·)`` flattened sequence;
* the **per-step path**: one cell call (and hence ~10 tape nodes) per
  timestep.  Kept behind :func:`repro.nn.fusion.use_fused_kernels` for
  equivalence testing.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from .backend import call_kernel, ops, register_kernel, workspace
from .functional import concat, stack
from .fusion import fused_kernels_enabled
from .module import Module, Parameter
from .tensor import (
    Tensor,
    _node,
    sigmoid_forward,
    tanh_backward,
    zeros,
)

__all__ = [
    "RNNCell", "GRUCell", "LSTMCell", "RNN", "GRU", "LSTM",
    "fused_rnn_scan", "fused_gru_scan", "fused_lstm_scan",
]


def _mask_keep(mask: np.ndarray | None, batch: int, steps: int,
               dtype=np.float64) -> np.ndarray | None:
    """Validity mask as float ``(B, T, 1)`` for broadcasting, or None.

    ``dtype`` follows the scan's compute dtype so the carry mix never
    upcasts the hidden-state arithmetic.
    """
    if mask is None:
        return None
    return np.asarray(mask, dtype=dtype).reshape(batch, steps, 1)


# ----------------------------------------------------------------------
# fused sequence kernels
#
# Each scan's sequential loop is factored into a forward/backward pair
# dispatched through the hot-kernel registry (:func:`repro.nn.backend
# .call_kernel`): the reference implementation allocates its own
# scratch; the workspace backend registers variants that draw loop
# scratch from the shared :data:`~repro.nn.backend.workspace` pool —
# the same operations in the same order writing into pooled buffers,
# so outputs stay bitwise identical.  Arrays that escape a kernel
# (returned activations the tape node or backward closure retains) are
# always freshly allocated; only call-local scratch is pooled.
# ----------------------------------------------------------------------
def _rnn_scan_loop(xw, h0, w_h_data, keep, raw, hs, pre):
    """The sequential Elman recurrence over preallocated buffers."""
    steps = xw.shape[1]
    h = h0
    for t in range(steps):
        ops.matmul(h, w_h_data, out=pre)
        pre += xw[:, t]
        ht = ops.tanh(pre, out=raw[:, t])
        if keep is None:
            h = ht
        else:
            kt = keep[:, t]
            h = ht * kt + h * (1.0 - kt)
            hs[:, t] = h
    return raw, hs


def _rnn_forward_ref(xw, h0, w_h_data, keep):
    """Kernel ``"rnn_scan_forward"``: returns ``(raw, hs)`` — both escape
    into the tape node / backward closure, so they are always fresh."""
    batch, steps, hidden = xw.shape
    dtype = xw.dtype
    raw = np.empty((batch, steps, hidden), dtype)  # tanh pre-carry outputs
    hs = raw if keep is None else np.empty((batch, steps, hidden), dtype)
    pre = np.empty((batch, hidden), dtype)
    return _rnn_scan_loop(xw, h0, w_h_data, keep, raw, hs, pre)


def _rnn_forward_ws(xw, h0, w_h_data, keep):
    batch, steps, hidden = xw.shape
    dtype = xw.dtype
    raw = np.empty((batch, steps, hidden), dtype)
    hs = raw if keep is None else np.empty((batch, steps, hidden), dtype)
    pre = workspace.take((batch, hidden), dtype, "rnn.pre")
    return _rnn_scan_loop(xw, h0, w_h_data, keep, raw, hs, pre)


def _rnn_backward_ref(grad, raw, keep, w_h_t, dtanh, dpre, dcarry):
    """Kernel ``"rnn_scan_backward"`` core: returns ``(dpre, dh)``.

    ``dpre`` may live in pooled scratch — the caller only derives fresh
    staged gradients from it before the next kernel call can reuse the
    buffer; ``dh`` is staged via a copy.
    """
    batch, steps, hidden = dpre.shape
    ops.multiply(raw, raw, out=dtanh)
    ops.subtract(1.0, dtanh, out=dtanh)
    dh = np.zeros((batch, hidden), dpre.dtype)
    for t in range(steps - 1, -1, -1):
        ops.add(grad[:, t], dh, out=dcarry)
        if keep is not None:
            kt = keep[:, t]
            d_raw = dcarry * kt
            carry_through = dcarry * (1.0 - kt)
        else:
            d_raw = dcarry
            carry_through = None
        dp = ops.multiply(d_raw, dtanh[:, t], out=dpre[:, t])
        ops.matmul(dp, w_h_t, out=dh)
        if carry_through is not None:
            dh += carry_through
    return dpre, dh


def _rnn_backward_alloc(grad, raw, keep, w_h_t):
    batch, steps, hidden = raw.shape
    dtype = raw.dtype
    return _rnn_backward_ref(grad, raw, keep, w_h_t,
                             np.empty((batch, steps, hidden), dtype),
                             np.empty((batch, steps, hidden), dtype),
                             np.empty((batch, hidden), dtype))


def _rnn_backward_ws(grad, raw, keep, w_h_t):
    batch, steps, hidden = raw.shape
    dtype = raw.dtype
    return _rnn_backward_ref(
        grad, raw, keep, w_h_t,
        workspace.take((batch, steps, hidden), dtype, "rnn.dtanh"),
        workspace.take((batch, steps, hidden), dtype, "rnn.dpre"),
        workspace.take((batch, hidden), dtype, "rnn.dcarry"))


register_kernel("workspace", "rnn_scan_forward", _rnn_forward_ws)
register_kernel("workspace", "rnn_scan_backward", _rnn_backward_ws)


def fused_rnn_scan(x: Tensor, h0: Tensor, w_x: Tensor, w_h: Tensor,
                   bias: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Whole-sequence Elman RNN scan as one tape node.

    ``x`` is ``(B, T, D)``, ``h0`` is ``(B, H)``; returns the carried
    hidden states ``(B, T, H)``.  Where ``mask`` is false the state is
    carried through unchanged (padding), matching the per-step driver.
    """
    batch, steps, in_dim = x.shape
    hidden = w_h.shape[0]
    dtype = x.data.dtype
    keep = _mask_keep(mask, batch, steps, dtype)

    # Input projection (+ bias) for every timestep in one matmul; only
    # the (B, H) @ (H, H) recurrence stays inside the time loop, written
    # through preallocated buffers to avoid per-step temporaries.
    xw = (x.data.reshape(batch * steps, in_dim) @ w_x.data).reshape(
        batch, steps, hidden)
    xw += bias.data
    w_h_data = w_h.data
    raw, hs = call_kernel("rnn_scan_forward", _rnn_forward_ref,
                          xw, h0.data, w_h_data, keep)

    def backward(grad, stage):
        grad = np.asarray(grad)
        # tanh derivative for every step at once (one full-array pass);
        # only the sequential dh propagation stays in the loop.
        dpre, dh = call_kernel("rnn_scan_backward", _rnn_backward_alloc,
                               grad, raw, keep, w_h_data.T)
        flat_dpre = dpre.reshape(batch * steps, hidden)
        stage(x, (flat_dpre @ w_x.data.T).reshape(batch, steps, in_dim))
        stage(h0, dh.copy())
        stage(w_x, x.data.reshape(batch * steps, in_dim).T @ flat_dpre)
        h_prev = ops.concatenate([h0.data[:, None, :], hs[:, :-1]], axis=1)
        stage(w_h, h_prev.reshape(batch * steps, hidden).T @ flat_dpre)
        # Bias grads reduce over B*T terms: accumulate in float64 (the
        # stage hand-off rounds once back to the compute dtype).
        stage(bias, dpre.sum(axis=(0, 1), dtype=np.float64))

    return _node(hs, (x, h0, w_x, w_h, bias), backward)


def _gru_scan_loop(xg, xh, h0, w_gh, w_hh, keep, gates, cand_seq, hs,
                   pre_g, pre_c, rh, mix_a, mix_b):
    """The sequential GRU recurrence over preallocated buffers."""
    batch, steps, hidden = cand_seq.shape
    h = h0
    for t in range(steps):
        # r and z in one (B, H) @ (H, 2H) matmul + in-place sigmoid.
        ops.matmul(h, w_gh, out=pre_g)
        pre_g += xg[:, t]
        rz = sigmoid_forward(pre_g, out=gates[:, t])
        r, z = rz[:, :hidden], rz[:, hidden:]
        ops.multiply(r, h, out=rh)
        ops.matmul(rh, w_hh, out=pre_c)
        pre_c += xh[:, t]
        cand = ops.tanh(pre_c, out=cand_seq[:, t])
        # h' = (1 - z) * h + z * cand, buffered.
        ops.subtract(1.0, z, out=mix_a)
        mix_a *= h
        ops.multiply(z, cand, out=mix_b)
        if keep is None:
            h = ops.add(mix_a, mix_b, out=hs[:, t])
        else:
            h_new = mix_a + mix_b
            kt = keep[:, t]
            h = h_new * kt + h * (1.0 - kt)
            hs[:, t] = h
    return gates, cand_seq, hs


def _gru_forward_ref(xg, xh, h0, w_gh, w_hh, keep):
    """Kernel ``"gru_scan_forward"``: returns ``(gates, cand_seq, hs)``
    — all three escape into the backward closure, so always fresh."""
    batch, steps, hidden = xh.shape
    dtype = xh.dtype
    gates = np.empty((batch, steps, 2 * hidden), dtype)  # [r, z] per step
    cand_seq = np.empty((batch, steps, hidden), dtype)  # h~ candidates
    hs = np.empty((batch, steps, hidden), dtype)
    return _gru_scan_loop(xg, xh, h0, w_gh, w_hh, keep, gates, cand_seq, hs,
                          np.empty((batch, 2 * hidden), dtype),
                          np.empty((batch, hidden), dtype),
                          np.empty((batch, hidden), dtype),
                          np.empty((batch, hidden), dtype),
                          np.empty((batch, hidden), dtype))


def _gru_forward_ws(xg, xh, h0, w_gh, w_hh, keep):
    batch, steps, hidden = xh.shape
    dtype = xh.dtype
    gates = np.empty((batch, steps, 2 * hidden), dtype)
    cand_seq = np.empty((batch, steps, hidden), dtype)
    hs = np.empty((batch, steps, hidden), dtype)
    take = workspace.take
    return _gru_scan_loop(xg, xh, h0, w_gh, w_hh, keep, gates, cand_seq, hs,
                          take((batch, 2 * hidden), dtype, "gru.pre_g"),
                          take((batch, hidden), dtype, "gru.pre_c"),
                          take((batch, hidden), dtype, "gru.rh"),
                          take((batch, hidden), dtype, "gru.mix_a"),
                          take((batch, hidden), dtype, "gru.mix_b"))


def _gru_backward_loop(grad, gates, cand_seq, hs, h0, w_gh_t, w_hh_t, keep,
                       dsig, dtanh, dpre_g, dpre_h):
    """The sequential GRU backward over preallocated buffers; returns
    ``(dpre_g, dpre_h, dh)`` (the pre-activation grads may live in
    pooled scratch — the caller derives fresh staged values)."""
    batch, steps, hidden = cand_seq.shape
    # Activation derivatives for every step in two full-array passes
    # (sigmoid: s*(1-s); tanh: 1-c^2); the loop keeps only the
    # sequential dh propagation.
    ops.subtract(1.0, gates, out=dsig)
    ops.multiply(gates, dsig, out=dsig)
    ops.multiply(cand_seq, cand_seq, out=dtanh)
    ops.subtract(1.0, dtanh, out=dtanh)
    dh = np.zeros((batch, hidden), cand_seq.dtype)
    for t in range(steps - 1, -1, -1):
        h_prev = hs[:, t - 1] if t > 0 else h0
        rz, cand = gates[:, t], cand_seq[:, t]
        r, z = rz[:, :hidden], rz[:, hidden:]
        dcarry = grad[:, t] + dh
        if keep is not None:
            kt = keep[:, t]
            dnew = dcarry * kt
            dh = dcarry * (1.0 - kt)
        else:
            dnew = dcarry
            dh = 0.0
        dz = dnew * (cand - h_prev)
        dcand = dnew * z
        dh = dh + dnew * (1.0 - z)
        dph = ops.multiply(dcand, dtanh[:, t], out=dpre_h[:, t])
        d_rh = dph @ w_hh_t
        dh = dh + d_rh * r
        dpg = dpre_g[:, t]
        ops.multiply(d_rh, h_prev, out=dpg[:, :hidden])
        dpg[:, hidden:] = dz
        dpg *= dsig[:, t]
        dh = dh + dpg @ w_gh_t
    return dpre_g, dpre_h, dh


def _gru_backward_ref(grad, gates, cand_seq, hs, h0, w_gh_t, w_hh_t, keep):
    """Kernel ``"gru_scan_backward"``: reference allocation strategy."""
    batch, steps, hidden = cand_seq.shape
    dtype = cand_seq.dtype
    return _gru_backward_loop(grad, gates, cand_seq, hs, h0, w_gh_t, w_hh_t,
                              keep,
                              np.empty((batch, steps, 2 * hidden), dtype),
                              np.empty((batch, steps, hidden), dtype),
                              np.empty((batch, steps, 2 * hidden), dtype),
                              np.empty((batch, steps, hidden), dtype))


def _gru_backward_ws(grad, gates, cand_seq, hs, h0, w_gh_t, w_hh_t, keep):
    batch, steps, hidden = cand_seq.shape
    dtype = cand_seq.dtype
    take = workspace.take
    return _gru_backward_loop(
        grad, gates, cand_seq, hs, h0, w_gh_t, w_hh_t, keep,
        take((batch, steps, 2 * hidden), dtype, "gru.dsig"),
        take((batch, steps, hidden), dtype, "gru.dtanh"),
        take((batch, steps, 2 * hidden), dtype, "gru.dpre_g"),
        take((batch, steps, hidden), dtype, "gru.dpre_h"))


register_kernel("workspace", "gru_scan_forward", _gru_forward_ws)
register_kernel("workspace", "gru_scan_backward", _gru_backward_ws)


def fused_gru_scan(x: Tensor, h0: Tensor, w_r: Tensor, w_z: Tensor,
                   w_h: Tensor, b_r: Tensor, b_z: Tensor, b_h: Tensor,
                   mask: np.ndarray | None = None) -> Tensor:
    """Whole-sequence GRU scan (paper Eq. 5) as one tape node.

    The joint weights ``w_* (H+D, H)`` act on ``[h, x]``; the input
    halves are projected for all timesteps up front, leaving only the
    ``(B, H) @ (H, H)`` recurrent matmuls inside the time loop.
    """
    batch, steps, in_dim = x.shape
    hidden = b_r.shape[0]
    dtype = x.data.dtype
    keep = _mask_keep(mask, batch, steps, dtype)

    w_rh, w_rx = w_r.data[:hidden], w_r.data[hidden:]
    w_zh, w_zx = w_z.data[:hidden], w_z.data[hidden:]
    w_hh, w_hx = w_h.data[:hidden], w_h.data[hidden:]
    # One input projection for all timesteps and both sigmoid gates
    # (+ bias folded in); the candidate projection is separate because
    # its recurrent input is r*h.
    x_flat = x.data.reshape(batch * steps, in_dim)
    xg = (x_flat @ ops.concatenate([w_rx, w_zx], axis=1)).reshape(
        batch, steps, 2 * hidden)
    xg += ops.concatenate([b_r.data, b_z.data])
    xh = (x_flat @ w_hx).reshape(batch, steps, hidden)
    xh += b_h.data
    w_gh = ops.concatenate([w_rh, w_zh], axis=1)  # (H, 2H) recurrent gates

    gates, cand_seq, hs = call_kernel("gru_scan_forward", _gru_forward_ref,
                                      xg, xh, h0.data, w_gh, w_hh, keep)

    def backward(grad, stage):
        grad = np.asarray(grad)
        dpre_g, dpre_h, dh = call_kernel(
            "gru_scan_backward", _gru_backward_ref,
            grad, gates, cand_seq, hs, h0.data, w_gh.T, w_hh.T, keep)
        flat = batch * steps
        fg = dpre_g.reshape(flat, 2 * hidden)
        fr, fz = fg[:, :hidden], fg[:, hidden:]
        fh = dpre_h.reshape(flat, hidden)
        stage(x, (fg @ ops.concatenate([w_rx, w_zx], axis=1).T
                  + fh @ w_hx.T).reshape(batch, steps, in_dim))
        stage(h0, dh)
        h_prev_seq = ops.concatenate([h0.data[:, None, :], hs[:, :-1]], axis=1)
        hp = h_prev_seq.reshape(flat, hidden)
        rh_seq = (gates[:, :, :hidden] * h_prev_seq).reshape(flat, hidden)
        xf = x.data.reshape(flat, in_dim)
        stage(w_r, ops.concatenate([hp.T @ fr, xf.T @ fr], axis=0))
        stage(w_z, ops.concatenate([hp.T @ fz, xf.T @ fz], axis=0))
        stage(w_h, ops.concatenate([rh_seq.T @ fh, xf.T @ fh], axis=0))
        # Bias grads: float64 accumulation, rounded once at the stage.
        stage(b_r, fr.sum(axis=0, dtype=np.float64))
        stage(b_z, fz.sum(axis=0, dtype=np.float64))
        stage(b_h, dpre_h.sum(axis=(0, 1), dtype=np.float64))

    return _node(hs, (x, h0, w_r, w_z, w_h, b_r, b_z, b_h), backward)


def _lstm_forward_ref(xi, xf, xo, xg, state0, w_ih, w_fh, w_oh, w_gh,
                      b_i, b_f, b_o, b_g, keep):
    """Kernel ``"lstm_scan_forward"``: returns ``(gates, tc_seq, states)``
    (all escape into the backward closure).  No accelerated variant is
    registered for the built-in backends — this seam exercises the
    fall-back-to-reference path by construction."""
    batch, steps, hidden = xi.shape
    dtype = xi.dtype
    gates = np.empty((batch, steps, 4, hidden), dtype)  # i, f, o, g
    tc_seq = np.empty((batch, steps, hidden), dtype)  # tanh(c_next)
    states = np.empty((batch, steps, 2 * hidden), dtype)  # carried [h, c]
    st = state0
    for t in range(steps):
        h, c = st[:, :hidden], st[:, hidden:]
        i = sigmoid_forward(h @ w_ih + xi[:, t] + b_i)
        f = sigmoid_forward(h @ w_fh + xf[:, t] + b_f)
        o = sigmoid_forward(h @ w_oh + xo[:, t] + b_o)
        g = ops.tanh(h @ w_gh + xg[:, t] + b_g)
        c_next = f * c + i * g
        tc = ops.tanh(c_next)
        h_next = o * tc
        gates[:, t, 0], gates[:, t, 1] = i, f
        gates[:, t, 2], gates[:, t, 3] = o, g
        tc_seq[:, t] = tc
        st_new = ops.concatenate([h_next, c_next], axis=-1)
        if keep is not None:
            kt = keep[:, t]
            st = st_new * kt + st * (1.0 - kt)
        else:
            st = st_new
        states[:, t] = st
    return gates, tc_seq, states


def _lstm_backward_ref(grad, gates, tc_seq, states, state0,
                       w_ih, w_fh, w_oh, w_gh, keep):
    """Kernel ``"lstm_scan_backward"``: returns ``(dpre, dst)``."""
    batch, steps, _, hidden = gates.shape
    dtype = tc_seq.dtype
    dpre = np.empty((batch, steps, 4, hidden), dtype)  # i, f, o, g pre-acts
    dst = np.zeros((batch, 2 * hidden), dtype)
    for t in range(steps - 1, -1, -1):
        st_prev = states[:, t - 1] if t > 0 else state0
        h_prev, c_prev = st_prev[:, :hidden], st_prev[:, hidden:]
        i, f = gates[:, t, 0], gates[:, t, 1]
        o, g = gates[:, t, 2], gates[:, t, 3]
        tc = tc_seq[:, t]
        dcarry = grad[:, t] + dst
        if keep is not None:
            kt = keep[:, t]
            dnew = dcarry * kt
            dst = dcarry * (1.0 - kt)
        else:
            dnew = dcarry
            dst = 0.0
        dh_next = dnew[:, :hidden]
        dc = dnew[:, hidden:] + tanh_backward(dh_next * o, tc)
        do = dh_next * tc
        di, dg = dc * g, dc * i
        df, dc_prev = dc * c_prev, dc * f
        dpi = di * i * (1.0 - i)
        dpf = df * f * (1.0 - f)
        dpo = do * o * (1.0 - o)
        dpg = tanh_backward(dg, g)
        dpre[:, t, 0], dpre[:, t, 1] = dpi, dpf
        dpre[:, t, 2], dpre[:, t, 3] = dpo, dpg
        dh_prev = dpi @ w_ih.T + dpf @ w_fh.T + dpo @ w_oh.T + dpg @ w_gh.T
        dst = dst + ops.concatenate([dh_prev, dc_prev], axis=-1)
    return dpre, dst


def fused_lstm_scan(x: Tensor, state0: Tensor, w_i: Tensor, w_f: Tensor,
                    w_o: Tensor, w_g: Tensor, b_i: Tensor, b_f: Tensor,
                    b_o: Tensor, b_g: Tensor,
                    mask: np.ndarray | None = None) -> Tensor:
    """Whole-sequence LSTM scan as one tape node.

    The state is the ``[h, c]`` concatenation (matching
    :class:`LSTMCell`), so ``state0`` is ``(B, 2H)`` and the output is
    ``(B, T, 2H)`` of carried states.
    """
    batch, steps, in_dim = x.shape
    hidden = b_i.shape[0]
    dtype = x.data.dtype
    keep = _mask_keep(mask, batch, steps, dtype)

    w_ih, w_ix = w_i.data[:hidden], w_i.data[hidden:]
    w_fh, w_fx = w_f.data[:hidden], w_f.data[hidden:]
    w_oh, w_ox = w_o.data[:hidden], w_o.data[hidden:]
    w_gh, w_gx = w_g.data[:hidden], w_g.data[hidden:]
    x_flat = x.data.reshape(batch * steps, in_dim)
    xi = (x_flat @ w_ix).reshape(batch, steps, hidden)
    xf = (x_flat @ w_fx).reshape(batch, steps, hidden)
    xo = (x_flat @ w_ox).reshape(batch, steps, hidden)
    xg = (x_flat @ w_gx).reshape(batch, steps, hidden)

    gates, tc_seq, states = call_kernel(
        "lstm_scan_forward", _lstm_forward_ref,
        xi, xf, xo, xg, state0.data, w_ih, w_fh, w_oh, w_gh,
        b_i.data, b_f.data, b_o.data, b_g.data, keep)

    def backward(grad, stage):
        grad = np.asarray(grad)
        dpre, dst = call_kernel(
            "lstm_scan_backward", _lstm_backward_ref,
            grad, gates, tc_seq, states, state0.data,
            w_ih, w_fh, w_oh, w_gh, keep)
        flat = batch * steps
        fi = dpre[:, :, 0].reshape(flat, hidden)
        ff = dpre[:, :, 1].reshape(flat, hidden)
        fo = dpre[:, :, 2].reshape(flat, hidden)
        fg = dpre[:, :, 3].reshape(flat, hidden)
        stage(x, (fi @ w_ix.T + ff @ w_fx.T + fo @ w_ox.T + fg @ w_gx.T)
              .reshape(batch, steps, in_dim))
        stage(state0, dst)
        st_prev_seq = ops.concatenate([state0.data[:, None, :], states[:, :-1]],
                                      axis=1)
        hp = st_prev_seq[:, :, :hidden].reshape(flat, hidden)
        xfm = x.data.reshape(flat, in_dim)
        stage(w_i, ops.concatenate([hp.T @ fi, xfm.T @ fi], axis=0))
        stage(w_f, ops.concatenate([hp.T @ ff, xfm.T @ ff], axis=0))
        stage(w_o, ops.concatenate([hp.T @ fo, xfm.T @ fo], axis=0))
        stage(w_g, ops.concatenate([hp.T @ fg, xfm.T @ fg], axis=0))
        # Bias grads: float64 accumulation, rounded once at the stage.
        stage(b_i, dpre[:, :, 0].sum(axis=(0, 1), dtype=np.float64))
        stage(b_f, dpre[:, :, 1].sum(axis=(0, 1), dtype=np.float64))
        stage(b_o, dpre[:, :, 2].sum(axis=(0, 1), dtype=np.float64))
        stage(b_g, dpre[:, :, 3].sum(axis=(0, 1), dtype=np.float64))

    return _node(states, (x, state0, w_i, w_f, w_o, w_g, b_i, b_f, b_o, b_g),
                 backward)


class RNNCell(Module):
    """Elman RNN cell: ``h' = tanh(x @ W_x + h @ W_h + b)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(initializers.xavier_uniform((input_size, hidden_size), rng))
        self.w_h = Parameter(initializers.orthogonal((hidden_size, hidden_size), rng))
        self.bias = Parameter(initializers.zeros_init((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return (x @ self.w_x + h @ self.w_h + self.bias).tanh()

    def step_array(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """One tape-free cell step on raw arrays (decode-engine kernel).

        Mirrors :meth:`forward` operation by operation — same expression,
        same association — so packed decode sessions stepping a
        *compacted* subset of batch rows reproduce the per-row values of
        the full-batch tape path.
        """
        return ops.tanh(x @ self.w_x.data + h @ self.w_h.data + self.bias.data)

    def scan(self, x: Tensor, h0: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Fused whole-sequence scan (see :func:`fused_rnn_scan`)."""
        return fused_rnn_scan(x, h0, self.w_x, self.w_h, self.bias, mask=mask)

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state of shape ``(batch, hidden)``."""
        return zeros(batch, self.hidden_size)


class GRUCell(Module):
    """Gated recurrent unit cell (paper Eq. 5).

    ``r = sigma(W_r [h, x] + b_r)``; ``z = sigma(W_z [h, x] + b_z)``;
    ``h~ = tanh(W_h [r*h, x] + b_h)``; ``h' = (1-z)*h + z*h~``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.w_r = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_z = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_h = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.b_r = Parameter(initializers.zeros_init((hidden_size,)))
        self.b_z = Parameter(initializers.zeros_init((hidden_size,)))
        self.b_h = Parameter(initializers.zeros_init((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hx = concat([h, x], axis=-1)
        r = (hx @ self.w_r + self.b_r).sigmoid()
        z = (hx @ self.w_z + self.b_z).sigmoid()
        rhx = concat([r * h, x], axis=-1)
        h_tilde = (rhx @ self.w_h + self.b_h).tanh()
        return (1.0 - z) * h + z * h_tilde

    def step_array(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """One tape-free cell step on raw arrays (decode-engine kernel).

        Mirrors :meth:`forward` operation by operation (including the
        clipped :func:`~repro.nn.tensor.sigmoid_forward`) so packed
        decode sessions stepping a compacted subset of batch rows
        reproduce the per-row values of the full-batch tape path.
        """
        hx = ops.concatenate([h, x], axis=-1)
        r = sigmoid_forward(hx @ self.w_r.data + self.b_r.data)
        z = sigmoid_forward(hx @ self.w_z.data + self.b_z.data)
        rhx = ops.concatenate([r * h, x], axis=-1)
        h_tilde = ops.tanh(rhx @ self.w_h.data + self.b_h.data)
        return (1.0 - z) * h + z * h_tilde

    def scan(self, x: Tensor, h0: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Fused whole-sequence scan (see :func:`fused_gru_scan`)."""
        return fused_gru_scan(x, h0, self.w_r, self.w_z, self.w_h,
                              self.b_r, self.b_z, self.b_h, mask=mask)

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state of shape ``(batch, hidden)``."""
        return zeros(batch, self.hidden_size)


class LSTMCell(Module):
    """Long short-term memory cell (encoder-ablation alternative to GRU).

    The hidden state is carried as the concatenation ``[h, c]`` of the
    output and cell states so LSTM plugs into the same sequence driver
    as the other cells; ``initial_state`` returns ``(batch, 2H)``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.w_i = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_f = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_o = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.w_g = Parameter(initializers.xavier_uniform((joint, hidden_size), rng))
        self.b_i = Parameter(initializers.zeros_init((hidden_size,)))
        # Forget-gate bias starts at 1: the standard trick for gradient flow.
        self.b_f = Parameter(np.ones(hidden_size))
        self.b_o = Parameter(initializers.zeros_init((hidden_size,)))
        self.b_g = Parameter(initializers.zeros_init((hidden_size,)))

    def forward(self, x: Tensor, state: Tensor) -> Tensor:
        h = state[:, : self.hidden_size]
        c = state[:, self.hidden_size :]
        hx = concat([h, x], axis=-1)
        i = (hx @ self.w_i + self.b_i).sigmoid()
        f = (hx @ self.w_f + self.b_f).sigmoid()
        o = (hx @ self.w_o + self.b_o).sigmoid()
        g = (hx @ self.w_g + self.b_g).tanh()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return concat([h_next, c_next], axis=-1)

    def step_array(self, x: np.ndarray, state: np.ndarray) -> np.ndarray:
        """One tape-free cell step on raw ``[h, c]`` arrays (decode-engine
        kernel); the exact operation-order mirror of :meth:`forward`."""
        h = state[:, : self.hidden_size]
        c = state[:, self.hidden_size:]
        hx = ops.concatenate([h, x], axis=-1)
        i = sigmoid_forward(hx @ self.w_i.data + self.b_i.data)
        f = sigmoid_forward(hx @ self.w_f.data + self.b_f.data)
        o = sigmoid_forward(hx @ self.w_o.data + self.b_o.data)
        g = ops.tanh(hx @ self.w_g.data + self.b_g.data)
        c_next = f * c + i * g
        h_next = o * ops.tanh(c_next)
        return ops.concatenate([h_next, c_next], axis=-1)

    def scan(self, x: Tensor, state0: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Fused whole-sequence scan (see :func:`fused_lstm_scan`)."""
        return fused_lstm_scan(x, state0, self.w_i, self.w_f, self.w_o,
                               self.w_g, self.b_i, self.b_f, self.b_o,
                               self.b_g, mask=mask)

    def initial_state(self, batch: int) -> Tensor:
        """Zero ``[h, c]`` state of shape ``(batch, 2 * hidden)``."""
        return zeros(batch, 2 * self.hidden_size)


class _SequenceRNN(Module):
    """Shared driver that unrolls a cell over a ``(B, T, D)`` input."""

    cell: Module

    def forward(self, x: Tensor, h0: Tensor | None = None,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Run the cell over time.

        Parameters
        ----------
        x:
            Input of shape ``(B, T, D)``.
        h0:
            Optional initial state ``(B, H)``.
        mask:
            Optional boolean validity mask ``(B, T)``; where false, the
            hidden state is carried through unchanged (padding steps).

        Returns
        -------
        (outputs, last_state):
            ``outputs`` is ``(B, T, H)`` of per-step hidden states and
            ``last_state`` is the final ``(B, H)`` state.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, D) input, got shape {x.shape}")
        if fused_kernels_enabled():
            batch = x.shape[0]
            h0 = h0 if h0 is not None else self.cell.initial_state(batch)
            outputs = self.cell.scan(x, h0, mask=mask)
            return outputs, outputs[:, -1, :]
        return self._forward_stepwise(x, h0, mask)

    def _forward_stepwise(self, x: Tensor, h0: Tensor | None,
                          mask: np.ndarray | None) -> tuple[Tensor, Tensor]:
        """Reference per-step path: one tape node chain per timestep."""
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else self.cell.initial_state(batch)
        outputs: list[Tensor] = []
        for t in range(steps):
            xt = x[:, t, :]
            h_next = self.cell(xt, h)
            if mask is not None:
                keep = mask[:, t : t + 1].astype(x.data.dtype)
                h = h_next * keep + h * (1.0 - keep)
            else:
                h = h_next
            outputs.append(h)
        return stack(outputs, axis=1), h


class RNN(_SequenceRNN):
    """Unrolled Elman RNN over a batch of sequences."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = RNNCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size


class GRU(_SequenceRNN):
    """Unrolled GRU over a batch of sequences (the LTE embedding model)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size


class LSTM(_SequenceRNN):
    """Unrolled LSTM; exposes only the ``h`` part of the state.

    Outputs and the final state have width ``hidden_size`` like the
    other wrappers (the internal cell state stays private), so LSTM is
    a drop-in encoder replacement for the GRU ablation.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, h0: Tensor | None = None,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        outputs, last = super().forward(x, h0=h0, mask=mask)
        return outputs[:, :, : self.hidden_size], last[:, : self.hidden_size]
