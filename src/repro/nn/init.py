"""Weight initialisers.

All initialisers take an explicit ``numpy.random.Generator`` so that
every model in the repository is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from .backend import ops

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform", "zeros_init", "orthogonal"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * ops.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform for ReLU fan-in scaling."""
    fan_in, _ = _fans(shape)
    bound = ops.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Plain U(-bound, bound)."""
    return rng.uniform(-bound, bound, size=shape)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero array (biases)."""
    return np.zeros(shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (recommended for recurrent weight matrices)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    size = max(rows, cols)
    a = rng.standard_normal((size, size))
    q, r = ops.qr(a)
    q = q * ops.sign(ops.diag(r))
    return gain * q[:rows, :cols]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
