"""Global switch between fused sequence kernels and the per-step tape.

The fused kernels (whole-sequence RNN/GRU/LSTM scans with hand-written
BPTT, and the batched teacher-forced ST-operator decode) are the default
hot path.  The original per-step tape path is kept for equivalence
testing and as a reference implementation; disable fusion to use it:

    with nn.use_fused_kernels(False):
        output = model(batch, log_mask)

Both paths are verified to produce matching outputs and gradients in
``tests/nn/test_fused_recurrent.py`` and ``tests/core/test_fused_decode.py``.
"""

from __future__ import annotations

import contextlib

__all__ = ["fused_kernels_enabled", "set_fused_kernels", "use_fused_kernels"]

_FUSED_ENABLED = True


def fused_kernels_enabled() -> bool:
    """Whether sequence layers should take the fused kernel path."""
    return _FUSED_ENABLED


def set_fused_kernels(enabled: bool) -> bool:
    """Set the global fusion flag; returns the previous value."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_fused_kernels(enabled: bool):
    """Context manager scoping the fusion flag (like ``no_grad``)."""
    previous = set_fused_kernels(enabled)
    try:
        yield
    finally:
        set_fused_kernels(previous)
