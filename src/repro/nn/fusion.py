"""Global switches between fused/sparse hot paths and reference paths.

This module owns three process-global flags, all following the same
pattern (getter, setter returning the previous value, and a scoping
context manager):

**Kernel fusion** (:func:`use_fused_kernels`, default *on*).  The fused
kernels (whole-sequence RNN/GRU/LSTM scans with hand-written BPTT, and
the batched teacher-forced ST-operator decode) are the default hot
path.  The original per-step tape path is kept for equivalence testing
and as a reference implementation; disable fusion to use it::

    with nn.use_fused_kernels(False):
        output = model(batch, log_mask)

**Sparse constraint masks** (:func:`use_sparse_masks`, default *on*).
When enabled, :meth:`repro.core.mask.ConstraintMaskBuilder.build_for`
hands models a CSR-style :class:`~repro.core.mask.SparseConstraintMask`
instead of a dense ``(B, T, S)`` array, and
:func:`repro.nn.functional.masked_log_softmax` computes the normaliser,
softmax, and gradient only over each row's active segment indices.
Disable it to force the dense reference mask path::

    with nn.use_sparse_masks(False):
        trainer.train_epoch(dataset)

**Packed decode** (:func:`use_packed_decode`, default *on*).  When
enabled, the serving layer (:mod:`repro.serving`) runs autoregressive
inference through the :class:`~repro.serving.DecodeSession` engine:
variable-length trajectories are stepped together with active-row
compaction, so decode cost scales with the number of *unfinished* rows
per step instead of ``batch x max_length``.  Disable it to force the
padded full-length decode at every serving call site::

    with nn.use_packed_decode(False):
        row = evaluate_model(model, mask_builder, dataset)

Equivalence contract
--------------------
Every (fused, sparse) combination computes the same function:

* fused vs per-step kernels match outputs and gradients to atol 1e-10
  (``tests/nn/test_fused_recurrent.py``, ``tests/core/test_fused_decode.py``);
* sparse vs dense masked log-softmax matches to ~1e-9 relative — the
  sparse normaliser drops the sub-``exp(floor)`` (≈1e-13) contribution
  of out-of-radius segments, everything else is identical
  (``tests/core/test_sparse_mask.py``);
* argmax segment predictions are bit-identical between sparse and dense
  masks (the sparse output differs from the dense one only by a
  per-row-constant normaliser shift);
* packed decode matches the padded full-length engine decode
  bit-for-bit on every valid (non-padding) timestep for any working
  set of two or more rows; one-row working sets hit different BLAS
  kernels, where values agree to 1e-10 and argmax matches everywhere
  the decision margin exceeds ~1e-9 — the same tolerance class as the
  other contracts (``tests/serving/test_decode_session.py``).

Both flags are process-global; the parallel federated round runner
re-asserts them inside every worker task (see
:mod:`repro.federated.runner`), so serial and process-pool rounds run
the same kernels on the same mask representation.
"""

from __future__ import annotations

import contextlib

__all__ = [
    "fused_kernels_enabled", "set_fused_kernels", "use_fused_kernels",
    "sparse_masks_enabled", "set_sparse_masks", "use_sparse_masks",
    "packed_decode_enabled", "set_packed_decode", "use_packed_decode",
]

_FUSED_ENABLED = True
_SPARSE_MASKS_ENABLED = True
_PACKED_DECODE_ENABLED = True


def fused_kernels_enabled() -> bool:
    """Whether sequence layers should take the fused kernel path."""
    return _FUSED_ENABLED


def set_fused_kernels(enabled: bool) -> bool:
    """Set the global fusion flag; returns the previous value."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_fused_kernels(enabled: bool):
    """Context manager scoping the fusion flag (like ``no_grad``)."""
    previous = set_fused_kernels(enabled)
    try:
        yield
    finally:
        set_fused_kernels(previous)


def sparse_masks_enabled() -> bool:
    """Whether mask builders should hand sparse masks to models that
    support them (see :meth:`ConstraintMaskBuilder.build_for`)."""
    return _SPARSE_MASKS_ENABLED


def set_sparse_masks(enabled: bool) -> bool:
    """Set the global sparse-mask flag; returns the previous value."""
    global _SPARSE_MASKS_ENABLED
    previous = _SPARSE_MASKS_ENABLED
    _SPARSE_MASKS_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_sparse_masks(enabled: bool):
    """Context manager scoping the sparse-mask flag."""
    previous = set_sparse_masks(enabled)
    try:
        yield
    finally:
        set_sparse_masks(previous)


def packed_decode_enabled() -> bool:
    """Whether serving call sites should run packed (length-compacted)
    autoregressive decode (see :mod:`repro.serving`)."""
    return _PACKED_DECODE_ENABLED


def set_packed_decode(enabled: bool) -> bool:
    """Set the global packed-decode flag; returns the previous value."""
    global _PACKED_DECODE_ENABLED
    previous = _PACKED_DECODE_ENABLED
    _PACKED_DECODE_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_packed_decode(enabled: bool):
    """Context manager scoping the packed-decode flag."""
    previous = set_packed_decode(enabled)
    try:
        yield
    finally:
        set_packed_decode(previous)
