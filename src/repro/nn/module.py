"""Module/Parameter containers with state-dict support.

This mirrors the part of ``torch.nn`` that federated learning actually
needs: named parameter trees, ``state_dict``/``load_state_dict`` for
shipping weights between clients and the server, and train/eval modes
for dropout.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model weight."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for ``parameters()``,
    ``state_dict()`` and mode switching.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # parameter iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """Return all parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs, self first, depth-first."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Iterate over this module and all submodules, depth-first."""
        for _, module in self.named_modules():
            yield module

    def num_parameters(self) -> int:
        """Return the total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # state dict (the unit of federated communication)
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a name -> array copy of all parameters."""
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        """Copy arrays from ``state`` into the matching parameters.

        Raises ``KeyError`` on missing entries and ``ValueError`` on
        shape mismatches, so silent weight corruption is impossible.
        """
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in params.items():
            # Cast to the parameter's own dtype: at float32 compute a
            # float64 checkpoint loads as float32 (and vice versa), so
            # loading never changes the model's compute precision.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Hold an ordered list of sub-modules (registered by index)."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for i, module in enumerate(self._items):
            self._modules[str(i)] = module

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x
