"""``repro.nn`` - a NumPy autograd + neural network substrate.

This package replaces PyTorch for this reproduction: a tape-based
autodiff :class:`~repro.nn.tensor.Tensor`, module/parameter containers
with federated-friendly ``state_dict`` support, feed-forward and
recurrent layers, attention (for the baselines), losses, and optimisers.

Performance notes
-----------------
The hot paths are *fused*: recurrent layers run the whole ``(B, T)``
scan forward in NumPy and register a single tape node with a
hand-written BPTT backward (:mod:`repro.nn.recurrent`), dense layers use
a fused ``addmm`` node, and the optimisers operate on one contiguous
flat parameter vector (:mod:`repro.nn.flatten`) so an Adam step is a
handful of vectorized ops rather than a per-tensor Python loop.  The
original per-step tape path is retained behind
:func:`~repro.nn.fusion.use_fused_kernels` purely as a reference for
equivalence tests; both paths produce matching outputs and gradients
(verified to atol 1e-10 and by finite differences).

All kernel array math dispatches through the pluggable backend seam
(:mod:`repro.nn.backend`): :func:`use_backend` / ``REPRO_BACKEND``
select among the ``reference`` NumPy backend (the default), the
``workspace`` backend (buffer-reusing hot-kernel variants, bitwise
identical), and ``numba`` when that package is importable.
"""

from .attention import AdditiveAttention, SelfAttention, scaled_dot_product_attention
from .backend import (
    ArrayBackend,
    available_backends,
    backend_generation,
    call_kernel,
    get_backend,
    register_backend,
    register_kernel,
    set_backend,
    use_backend,
)
from .dtypes import (
    get_compute_dtype,
    get_default_dtype,
    set_compute_dtype,
    set_default_dtype,
    use_compute_dtype,
    use_default_dtype,
)
from .flatten import FlatLayout, FlatParameterSpace
from .flops import (
    CostReport,
    count_parameters,
    estimate_decode_flops,
    estimate_decode_step_flops,
    estimate_flops,
    st_operator_complexity,
)
from .functional import (
    addmm,
    concat,
    dropout,
    embedding_lookup,
    gather_rows,
    row_dot,
    log_softmax,
    masked_log_softmax,
    pad_sequences,
    softmax,
    sparse_masked_log_probs,
    stack,
    where_mask,
)
from .fusion import (
    fused_kernels_enabled,
    packed_decode_enabled,
    set_fused_kernels,
    set_packed_decode,
    set_sparse_masks,
    sparse_masks_enabled,
    use_fused_kernels,
    use_packed_decode,
    use_sparse_masks,
)
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, ReLU, Sigmoid, Tanh
from .loss import cross_entropy, distillation_loss, l1_loss, mse_loss, nll_from_log_probs
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import (
    GRU,
    LSTM,
    GRUCell,
    LSTMCell,
    RNN,
    RNNCell,
    fused_gru_scan,
    fused_lstm_scan,
    fused_rnn_scan,
)
from .serialization import load_state_dict, save_state_dict, state_dict_num_bytes
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad, ones, randn, zeros

__all__ = [
    # tensor
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled", "zeros", "ones", "randn",
    # functional
    "addmm", "concat", "stack", "softmax", "log_softmax", "masked_log_softmax",
    "sparse_masked_log_probs",
    "row_dot", "gather_rows", "embedding_lookup", "dropout", "where_mask", "pad_sequences",
    # module system
    "Module", "ModuleList", "Parameter", "Sequential",
    # layers
    "Linear", "Embedding", "Dropout", "ReLU", "Tanh", "Sigmoid", "LayerNorm", "MLP",
    # recurrent
    "RNN", "RNNCell", "GRU", "GRUCell", "LSTM", "LSTMCell",
    "fused_rnn_scan", "fused_gru_scan", "fused_lstm_scan",
    # fusion / sparse-mask switches
    "fused_kernels_enabled", "set_fused_kernels", "use_fused_kernels",
    "sparse_masks_enabled", "set_sparse_masks", "use_sparse_masks",
    "packed_decode_enabled", "set_packed_decode", "use_packed_decode",
    # precision switches (compute + exchange)
    "get_compute_dtype", "set_compute_dtype", "use_compute_dtype",
    "get_default_dtype", "set_default_dtype", "use_default_dtype",
    # array backend seam (see repro.nn.backend)
    "ArrayBackend", "available_backends", "backend_generation",
    "get_backend", "set_backend", "use_backend",
    "register_backend", "register_kernel", "call_kernel",
    # attention
    "AdditiveAttention", "SelfAttention", "scaled_dot_product_attention",
    # losses
    "cross_entropy", "nll_from_log_probs", "mse_loss", "l1_loss", "distillation_loss",
    # optim
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    # flat parameters
    "FlatLayout", "FlatParameterSpace",
    # costs
    "CostReport", "count_parameters", "estimate_flops",
    "estimate_decode_flops", "estimate_decode_step_flops",
    "st_operator_complexity",
    # serialization
    "save_state_dict", "load_state_dict", "state_dict_num_bytes",
]
