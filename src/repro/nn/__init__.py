"""``repro.nn`` - a NumPy autograd + neural network substrate.

This package replaces PyTorch for this reproduction: a tape-based
autodiff :class:`~repro.nn.tensor.Tensor`, module/parameter containers
with federated-friendly ``state_dict`` support, feed-forward and
recurrent layers, attention (for the baselines), losses, and optimisers.
"""

from .attention import AdditiveAttention, SelfAttention, scaled_dot_product_attention
from .flops import CostReport, count_parameters, estimate_flops, st_operator_complexity
from .functional import (
    concat,
    dropout,
    embedding_lookup,
    log_softmax,
    pad_sequences,
    softmax,
    stack,
    where_mask,
)
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, ReLU, Sigmoid, Tanh
from .loss import cross_entropy, distillation_loss, l1_loss, mse_loss, nll_from_log_probs
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import GRU, LSTM, GRUCell, LSTMCell, RNN, RNNCell
from .serialization import load_state_dict, save_state_dict, state_dict_num_bytes
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad, ones, randn, zeros

__all__ = [
    # tensor
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled", "zeros", "ones", "randn",
    # functional
    "concat", "stack", "softmax", "log_softmax", "embedding_lookup", "dropout",
    "where_mask", "pad_sequences",
    # module system
    "Module", "ModuleList", "Parameter", "Sequential",
    # layers
    "Linear", "Embedding", "Dropout", "ReLU", "Tanh", "Sigmoid", "LayerNorm", "MLP",
    # recurrent
    "RNN", "RNNCell", "GRU", "GRUCell", "LSTM", "LSTMCell",
    # attention
    "AdditiveAttention", "SelfAttention", "scaled_dot_product_attention",
    # losses
    "cross_entropy", "nll_from_log_probs", "mse_loss", "l1_loss", "distillation_loss",
    # optim
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    # costs
    "CostReport", "count_parameters", "estimate_flops", "st_operator_complexity",
    # serialization
    "save_state_dict", "load_state_dict", "state_dict_num_bytes",
]
