"""Analytic FLOPs and parameter accounting (paper Table II / Figure 5).

The paper compares ST-operator families by time/space complexity
(Table II) and reports FLOPs and parameter counts for whole models
(Figure 5b).  We compute parameters exactly from the module tree, and
FLOPs analytically per layer type for a given sequence length, so the
efficiency benchmark regenerates the figure without a profiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from .attention import AdditiveAttention, SelfAttention
from .layers import Embedding, Linear
from .module import Module
from .recurrent import GRU, LSTM, GRUCell, LSTMCell, RNN, RNNCell

__all__ = ["CostReport", "count_parameters", "estimate_flops",
           "estimate_decode_step_flops", "estimate_decode_flops",
           "st_operator_complexity"]


@dataclass(frozen=True)
class CostReport:
    """Computed cost of running a model over a workload."""

    parameters: int
    flops: float

    @property
    def parameters_m(self) -> float:
        """Parameters in millions (the unit of Figure 5b)."""
        return self.parameters / 1e6

    @property
    def flops_m(self) -> float:
        """FLOPs in millions (the unit of Figure 5b)."""
        return self.flops / 1e6


def count_parameters(model: Module) -> int:
    """Exact scalar weight count of a module tree."""
    return model.num_parameters()


def _linear_flops(layer: Linear) -> float:
    # One multiply-accumulate per weight, plus bias adds.
    flops = 2.0 * layer.in_features * layer.out_features
    if layer.bias is not None:
        flops += layer.out_features
    return flops


def _cell_flops(cell) -> float:
    if isinstance(cell, LSTMCell):
        joint = cell.input_size + cell.hidden_size
        # Four gate matmuls + elementwise cell arithmetic.
        return 4 * (2.0 * joint * cell.hidden_size + cell.hidden_size) + 12.0 * cell.hidden_size
    if isinstance(cell, GRUCell):
        joint = cell.input_size + cell.hidden_size
        # Three gate matmuls + elementwise gate arithmetic.
        return 3 * (2.0 * joint * cell.hidden_size + cell.hidden_size) + 10.0 * cell.hidden_size
    if isinstance(cell, RNNCell):
        return (2.0 * cell.input_size * cell.hidden_size
                + 2.0 * cell.hidden_size * cell.hidden_size + 2.0 * cell.hidden_size)
    raise TypeError(f"unknown recurrent cell {type(cell)!r}")


def estimate_flops(model: Module, seq_len: int, batch: int = 1) -> float:
    """Estimate forward-pass FLOPs for ``batch`` sequences of ``seq_len`` steps.

    Recurrent layers and attention scale with ``seq_len``; feed-forward
    layers are assumed to run once per timestep (the decoding loop), which
    matches how every model in this repository uses them.
    """
    if seq_len <= 0 or batch <= 0:
        raise ValueError("seq_len and batch must be positive")
    total = 0.0
    wrapped_cells: set[int] = set()  # cells owned by a sequence wrapper
    for module in _walk(model):
        if isinstance(module, Linear):
            total += _linear_flops(module) * seq_len * batch
        elif isinstance(module, Embedding):
            total += module.embedding_dim * seq_len * batch  # gather + scale
        elif isinstance(module, (GRU, RNN, LSTM)):
            wrapped_cells.add(id(module.cell))
            total += _cell_flops(module.cell) * seq_len * batch
        elif isinstance(module, (GRUCell, RNNCell, LSTMCell)):
            if id(module) in wrapped_cells:
                continue  # already accounted via its wrapper
            total += _cell_flops(module) * seq_len * batch
        elif isinstance(module, AdditiveAttention):
            h = module.hidden_size
            # Per decode step: score every encoder state -> O(T * H^2).
            total += (4.0 * h * h + 3.0 * h) * seq_len * seq_len * batch
        elif isinstance(module, SelfAttention):
            h = module.hidden_size
            # QKV projections + T^2 score matrix + FF, per sequence.
            total += (3 * 2.0 * h * h * seq_len + 2.0 * seq_len * seq_len * h
                      + 2 * 2.0 * h * (2 * h) * seq_len) * batch
    return total


def estimate_decode_step_flops(model: Module, seq_len: int = 1) -> float:
    """FLOPs of ONE autoregressive decode step (the serving hot path).

    Counts only what runs inside the decode loop: bare recurrent cells
    (cells owned by a sequence wrapper belong to the encoder, which
    runs once per sequence, not once per emitted point), feed-forward
    heads, embedding feedback lookups, and per-step additive-attention
    reads (which scan all ``seq_len`` encoder states every step —
    the Table II Attn overhead).  Encoder-side work is excluded:
    self-attention blocks by type, and any module (or whole subtree)
    a model marks with ``decode_side = False`` — the convention the
    models use for per-sequence pieces like observation embeddings,
    encoder input projections, and GCN refinement layers.
    """
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    total = 0.0
    wrapped_cells: set[int] = set()
    for module in _walk_decode_side(model):
        if isinstance(module, (GRU, RNN, LSTM)):
            wrapped_cells.add(id(module.cell))
    for module in _walk_decode_side(model):
        if isinstance(module, Linear):
            total += _linear_flops(module)
        elif isinstance(module, Embedding):
            # Two feedback lookups per step: previous + chosen segment.
            total += 2.0 * module.embedding_dim
        elif isinstance(module, (GRUCell, RNNCell, LSTMCell)):
            if id(module) in wrapped_cells:
                continue  # encoder-side: charged per sequence, not per step
            total += _cell_flops(module)
        elif isinstance(module, AdditiveAttention):
            h = module.hidden_size
            total += (4.0 * h * h + 3.0 * h) * seq_len
    return total


def estimate_decode_flops(model: Module, seq_len: int, batch: int = 1, *,
                          decode_len: int | None = None) -> float:
    """Estimate autoregressive-recovery FLOPs for ``batch`` sequences.

    The inference-side companion of :func:`estimate_flops`: one
    :func:`estimate_decode_step_flops` per emitted point plus the
    encoder pass, charged once per sequence — sequence wrappers,
    self-attention blocks, and the feed-forward/embedding subtrees the
    models mark ``decode_side = False`` (approximated as one pass over
    the ``seq_len`` observed points, matching :func:`estimate_flops`'s
    treatment).  This is what one serving request costs; the packed
    decode engine (:mod:`repro.serving`) reduces the *step* term to
    each trajectory's true length — pass that length as ``decode_len``
    (default: ``seq_len``, the padded full-length decode) to price a
    packed or continuously-batched request: the encoder term still
    scales with the padded ``seq_len`` (attention reads scan all
    encoder states), only the emitted-point count shrinks.
    """
    if seq_len <= 0 or batch <= 0:
        raise ValueError("seq_len and batch must be positive")
    if decode_len is None:
        decode_len = seq_len
    if decode_len < 0:
        raise ValueError("decode_len must be >= 0")
    encoder = 0.0
    for module in _walk(model):
        if isinstance(module, (GRU, RNN, LSTM)):
            encoder += _cell_flops(module.cell) * seq_len
        elif isinstance(module, SelfAttention):
            h = module.hidden_size
            encoder += (3 * 2.0 * h * h * seq_len + 2.0 * seq_len * seq_len * h
                        + 2 * 2.0 * h * (2 * h) * seq_len)
    for pruned in _pruned_decode_side(model):
        for module in _walk(pruned):
            if isinstance(module, Linear):
                encoder += _linear_flops(module) * seq_len
            elif isinstance(module, Embedding):
                encoder += module.embedding_dim * seq_len
    steps = estimate_decode_step_flops(model, seq_len=seq_len) * decode_len
    return (encoder + steps) * batch


def _walk(module: Module):
    yield module
    for child in module._modules.values():
        yield from _walk(child)


def _walk_decode_side(module: Module):
    """Like :func:`_walk`, but prunes encoder-side subtrees: modules
    marked ``decode_side = False`` and self-attention blocks (whose
    internal layers are charged per *sequence* by
    :func:`estimate_decode_flops`, not per step)."""
    if not getattr(module, "decode_side", True):
        return
    if isinstance(module, SelfAttention):
        return
    yield module
    for child in module._modules.values():
        yield from _walk_decode_side(child)


def _pruned_decode_side(module: Module):
    """The top-most subtrees :func:`_walk_decode_side` prunes by the
    ``decode_side`` marker (self-attention blocks are handled by type
    in :func:`estimate_decode_flops` directly)."""
    if not getattr(module, "decode_side", True):
        yield module
        return
    if isinstance(module, SelfAttention):
        return
    for child in module._modules.values():
        yield from _pruned_decode_side(child)


def st_operator_complexity(kind: str, n: int, length: int, dim: int) -> dict[str, float]:
    """Table II: asymptotic time/space cost of a base ST-operator family.

    Parameters mirror the paper: ``n`` trajectories, max length
    ``length``, embedding size ``dim``.  Returns dominant-term counts
    (not wall clock) so the relative ordering of the table is testable.
    """
    kind = kind.lower()
    if kind == "cnn":
        return {"time": dim**2 * n * length, "space": float(dim**2)}
    if kind == "rnn":
        return {"time": dim**2 * n * length, "space": float(dim**2)}
    if kind in ("attn", "attention"):
        return {"time": dim**2 * n * length * (dim + length), "space": float(dim**2)}
    if kind in ("mlp", "light", "lightweight"):
        # The paper's lightweight operator: O(N (L + D)) time, O(L + D + 1) space.
        return {"time": float(n * (length + dim)), "space": float(length + dim + 1)}
    raise ValueError(f"unknown ST-operator kind {kind!r}")
