"""Exchange-precision switch for flat parameter vectors.

The training substrate is float64 end to end (parameters, gradients,
optimiser moments).  Communication does not have to be: a federated
upload is just a snapshot of the parameters, and shipping it as float32
halves the bytes on the wire at ~1e-7 relative rounding - far below the
noise floor of stochastic training.

:func:`set_default_dtype` controls the *exchange* dtype: the dtype that
:meth:`~repro.nn.flatten.FlatParameterSpace.get_flat` and
:meth:`~repro.nn.flatten.FlatLayout.flatten_state` allocate when the
caller does not supply an output buffer.  This is deliberately the
first slice of a wider float32 story (see ROADMAP): model parameters
and optimiser math stay float64 (optimisers pass their own float64
buffers via ``out=``), so training numerics - and therefore every
equivalence test tolerance - are unchanged.  Only the federated
broadcast/upload payloads travel at the configured precision;
scattering a float32 vector back into parameters upcasts on assignment.

The flag is process-global.  Parallel round runners re-assert it inside
every worker task (see :mod:`repro.federated.runner`), so serial and
process-pool federated runs see the identical wire precision.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["get_default_dtype", "set_default_dtype", "use_default_dtype"]

#: Exchange dtypes we support.  Everything else would silently corrupt
#: integer state or lose more precision than federated averaging can
#: absorb, so the setter validates against this set.
_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """The current exchange dtype for flat parameter vectors."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the exchange dtype (``"float32"``/``"float64"``); returns the
    previous value so callers can restore it."""
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        raise ValueError(
            f"unsupported exchange dtype {dtype!r}; expected one of "
            f"{tuple(d.name for d in _ALLOWED)}"
        )
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


@contextlib.contextmanager
def use_default_dtype(dtype):
    """Context manager scoping the exchange dtype (like ``no_grad``)."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
