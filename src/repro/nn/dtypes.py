"""Two-level precision config: *compute* dtype and *exchange* dtype.

The substrate distinguishes two precisions:

**Compute dtype** (:func:`set_compute_dtype`, default ``float64``) is
the dtype of everything the hot loops touch: :class:`~repro.nn.tensor.Tensor`
data (parameters, activations, gradients), the fused RNN/GRU/LSTM scan
buffers, constraint-mask arrays, and the packed decode engine's state.
Setting it to ``float32`` halves the memory traffic of every kernel the
perf PRs made compute-bound.  Numerically sensitive *accumulations*
stay float64 regardless — the log-softmax normalisers (dense, masked,
and CSR-sparse), loss reductions (:meth:`Tensor.sum` accumulates in
float64), and the bias-gradient reductions of the fused BPTT scans —
so float32 runs round once per reduction instead of drifting term by
term.  Optimisers are mixed-precision by contract: moments and the
flat update arithmetic are always float64 ("master" precision), and
the update is cast to the compute dtype only when scattered back into
the parameters (see :mod:`repro.nn.optim`).

**Exchange dtype** (:func:`set_default_dtype`, default ``float64``) is
the dtype of federated wire payloads: what
:meth:`~repro.nn.flatten.FlatParameterSpace.get_flat` and
:meth:`~repro.nn.flatten.FlatLayout.flatten_state` allocate when the
caller does not supply an output buffer.  ``float32`` halves the bytes
of every broadcast/upload while server-side aggregation still runs in
float64 (optimisers pass their own float64 buffers via ``out=``).

The two knobs are independent: a float64-compute run can ship float32
payloads (PR 2's original knob), and a float32-compute run still
aggregates uploads in float64.  With both at ``float64`` every code
path is bitwise identical to the pre-mixed-precision tree — float64 is
the reference substrate.

Both flags are process-global.  Parallel round runners re-assert them
inside every worker task (see :mod:`repro.federated.runner`), so serial
and process-pool federated runs see identical kernel precision and
wire precision.  Set the compute dtype *before* building models:
parameters adopt the dtype active at construction time.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = [
    "get_compute_dtype", "set_compute_dtype", "use_compute_dtype",
    "get_default_dtype", "set_default_dtype", "use_default_dtype",
]

#: Dtypes either level supports.  Everything else would silently corrupt
#: integer state or lose more precision than the tolerance audit (or
#: federated averaging) can absorb, so the setters validate against it.
_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

#: Read directly (as ``dtypes._COMPUTE_DTYPE``) by Tensor construction,
#: which is too hot for a function call per node.
_COMPUTE_DTYPE = np.dtype(np.float64)

_EXCHANGE_DTYPE = np.dtype(np.float64)


def _validated(dtype, level: str) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        raise ValueError(
            f"unsupported {level} dtype {dtype!r}; expected one of "
            f"{tuple(d.name for d in _ALLOWED)}"
        )
    return resolved


# ----------------------------------------------------------------------
# compute dtype (tensor / kernel / optimizer-scatter precision)
# ----------------------------------------------------------------------
def get_compute_dtype() -> np.dtype:
    """The dtype tensors, kernels, and decode state currently use."""
    return _COMPUTE_DTYPE


def set_compute_dtype(dtype) -> np.dtype:
    """Set the compute dtype (``"float32"``/``"float64"``); returns the
    previous value so callers can restore it.

    Affects tensors and masks built *after* the call; set it before
    constructing models (existing parameters keep their dtype).
    """
    global _COMPUTE_DTYPE
    previous = _COMPUTE_DTYPE
    _COMPUTE_DTYPE = _validated(dtype, "compute")
    return previous


@contextlib.contextmanager
def use_compute_dtype(dtype):
    """Context manager scoping the compute dtype (like ``no_grad``)."""
    previous = set_compute_dtype(dtype)
    try:
        yield
    finally:
        set_compute_dtype(previous)


# ----------------------------------------------------------------------
# exchange dtype (federated wire precision)
# ----------------------------------------------------------------------
def get_default_dtype() -> np.dtype:
    """The current exchange dtype for flat parameter vectors."""
    return _EXCHANGE_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the exchange dtype (``"float32"``/``"float64"``); returns the
    previous value so callers can restore it."""
    global _EXCHANGE_DTYPE
    previous = _EXCHANGE_DTYPE
    _EXCHANGE_DTYPE = _validated(dtype, "exchange")
    return previous


@contextlib.contextmanager
def use_default_dtype(dtype):
    """Context manager scoping the exchange dtype (like ``no_grad``)."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
