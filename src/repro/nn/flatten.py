"""Flat-parameter views: a model's weights as one contiguous vector.

Following the FedAvg formulation (McMahan et al.), a model's parameters
are just one point ``theta`` in R^P.  :class:`FlatLayout` describes how
named arrays pack into that vector, and :class:`FlatParameterSpace`
binds a layout to live :class:`~repro.nn.module.Parameter` objects so
optimisers and the federated stack can gather/scatter all weights (or
gradients) with one slice-copy per tensor and run their arithmetic as a
handful of vectorized ops on ``(P,)`` buffers instead of per-key loops.

Gather allocations honour the *exchange dtype*
(:func:`~repro.nn.dtypes.set_default_dtype`): when no output buffer is
supplied, :meth:`FlatParameterSpace.get_flat` and
:meth:`FlatLayout.flatten_state` allocate in that dtype, so federated
payloads can travel as float32 while parameters, gradients, and
optimiser buffers (which always pass explicit float64 ``out=`` arrays)
stay float64.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

import numpy as np

from .backend import ops
from .dtypes import get_default_dtype
from .module import Module, Parameter

__all__ = ["FlatLayout", "FlatParameterSpace"]


class FlatLayout:
    """Packing of named, shaped arrays into one flat float64 vector."""

    __slots__ = ("names", "shapes", "sizes", "offsets", "total_size")

    def __init__(self, names: Sequence[str], shapes: Sequence[tuple[int, ...]]):
        if len(names) != len(shapes):
            raise ValueError("need one shape per name")
        if not names:
            raise ValueError("layout needs at least one entry")
        self.names = tuple(names)
        self.shapes = tuple(tuple(s) for s in shapes)
        self.sizes = tuple(int(np.prod(s, dtype=np.int64)) for s in self.shapes)
        offsets = ops.cumsum((0,) + self.sizes)
        self.offsets = tuple(int(o) for o in offsets[:-1])
        self.total_size = int(offsets[-1])

    @classmethod
    def from_state(cls, state: dict) -> "FlatLayout":
        """Layout matching a state dict's keys and array shapes."""
        return cls(list(state.keys()),
                   [np.asarray(v).shape for v in state.values()])

    def flatten_state(self, state: dict, out: np.ndarray | None = None,
                      dtype=None) -> np.ndarray:
        """Pack a state dict into a flat vector, validating shapes.

        Without ``out`` the vector is allocated in ``dtype`` (default:
        the exchange dtype).  Raises ``KeyError`` when a layout entry is
        missing and ``ValueError`` on shape mismatch, mirroring
        :meth:`~repro.nn.module.Module.load_state_dict`.
        """
        if out is not None:
            vec = out
        else:
            vec = np.empty(self.total_size,
                           dtype=dtype if dtype is not None else get_default_dtype())
        for name, shape, size, offset in zip(self.names, self.shapes,
                                             self.sizes, self.offsets):
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
            value = np.asarray(state[name])
            if value.shape != shape:
                raise ValueError(f"shape mismatch for {name!r} during "
                                 f"flattening: expected {shape}, got {value.shape}")
            vec[offset:offset + size] = value.reshape(-1)
        return vec

    def unflatten(self, vec: np.ndarray) -> "OrderedDict[str, np.ndarray]":
        """Unpack a flat vector back into a name -> array state dict.

        The returned arrays are reshaped views of ``vec`` (disjoint
        slices), so the dict is independent of any model parameters.
        """
        vec = np.asarray(vec, dtype=np.float64).reshape(-1)
        if vec.size != self.total_size:
            raise ValueError(f"flat vector has {vec.size} elements, "
                             f"layout expects {self.total_size}")
        return OrderedDict(
            (name, vec[offset:offset + size].reshape(shape))
            for name, shape, size, offset in zip(self.names, self.shapes,
                                                 self.sizes, self.offsets)
        )


class FlatParameterSpace:
    """A layout bound to live parameters for gather/scatter access."""

    def __init__(self, parameters: Iterable[Parameter],
                 names: Sequence[str] | None = None):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("flat space needs at least one parameter")
        if names is None:
            names = [p.name or f"param{i}" for i, p in enumerate(self.parameters)]
        self.layout = FlatLayout(names, [p.data.shape for p in self.parameters])

    @classmethod
    def from_module(cls, module: Module) -> "FlatParameterSpace":
        """Flat space over a module's named parameters (state-dict order)."""
        named = list(module.named_parameters())
        return cls([p for _, p in named], names=[n for n, _ in named])

    @property
    def total_size(self) -> int:
        return self.layout.total_size

    # ------------------------------------------------------------------
    # gather / scatter
    # ------------------------------------------------------------------
    def get_flat(self, out: np.ndarray | None = None, dtype=None) -> np.ndarray:
        """Gather all parameter values into one ``(P,)`` vector.

        Without ``out`` the vector is allocated in ``dtype`` (default:
        the exchange dtype, normally float64); assignments downcast per
        slice.  Optimisers pass their own float64 ``out`` buffers, so
        training math never sees a reduced precision.
        """
        if out is not None:
            vec = out
        else:
            vec = np.empty(self.total_size,
                           dtype=dtype if dtype is not None else get_default_dtype())
        for p, size, offset in zip(self.parameters, self.layout.sizes,
                                   self.layout.offsets):
            vec[offset:offset + size] = p.data.reshape(-1)
        return vec

    def set_flat(self, vec: np.ndarray) -> None:
        """Scatter a ``(P,)`` vector back into the parameters (in place).

        Accepts any float dtype; each slice casts to its parameter's
        storage dtype on assignment — this is the single point where
        the optimisers' float64 master updates round to the compute
        dtype (see :mod:`repro.nn.optim`).
        """
        vec = np.asarray(vec).reshape(-1)
        if vec.size != self.total_size:
            raise ValueError(f"flat vector has {vec.size} elements, "
                             f"space expects {self.total_size}")
        for p, shape, size, offset in zip(self.parameters, self.layout.shapes,
                                          self.layout.sizes, self.layout.offsets):
            p.data[...] = vec[offset:offset + size].reshape(shape)

    def get_flat_grad(self, out: np.ndarray | None = None) -> np.ndarray:
        """Gather gradients into one ``(P,)`` vector (zeros where None).

        Allocates float64 by default (the optimisers' master-precision
        view; float32 gradients upcast per slice)."""
        vec = out if out is not None else np.empty(self.total_size,
                                                   dtype=np.float64)
        for p, size, offset in zip(self.parameters, self.layout.sizes,
                                   self.layout.offsets):
            if p.grad is None:
                vec[offset:offset + size] = 0.0
            else:
                vec[offset:offset + size] = p.grad.reshape(-1)
        return vec

    def all_grads_present(self) -> bool:
        """Whether every parameter received a gradient."""
        return all(p.grad is not None for p in self.parameters)

    # ------------------------------------------------------------------
    # state-dict bridging
    # ------------------------------------------------------------------
    def state_to_flat(self, state: dict) -> np.ndarray:
        """Flatten an external state dict using this space's layout."""
        return self.layout.flatten_state(state)

    def flat_to_state(self, vec: np.ndarray) -> "OrderedDict[str, np.ndarray]":
        """Unflatten a vector into a state dict matching this space."""
        return self.layout.unflatten(vec)
