"""A small tape-based automatic differentiation engine on NumPy arrays.

This module is the substrate that replaces PyTorch in this reproduction
(the paper implements LightTR with PyTorch on a GPU; this environment has
no torch, so we provide an equivalent reverse-mode autodiff engine).

The design follows the familiar define-by-run model:

* :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations
  applied to it on a tape (the ``_parents`` / ``_backward`` fields).
* Calling :meth:`Tensor.backward` on a scalar result walks the tape in
  reverse topological order and accumulates gradients into every leaf
  tensor reachable from the result that has ``requires_grad=True``.

Each op's backward closure receives ``(grad, stage)`` where ``stage``
adds a gradient contribution for a parent tensor; intermediate node
gradients are not retained (as with non-leaf tensors in PyTorch).

Gradient correctness for every primitive is verified against central
finite differences in the test suite (``tests/nn/test_autograd.py``),
including property-based checks with hypothesis.
"""

from __future__ import annotations

import contextlib
from typing import Callable

import numpy as np

from . import dtypes as _dtypes
from .backend import ops

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "zeros",
    "ones",
    "randn",
    "sigmoid_forward",
    "sigmoid_backward",
    "tanh_backward",
]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return _GRAD_ENABLED


def sigmoid_forward(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Clipped logistic sigmoid on a raw array (shared by ops and kernels).

    Spelled as chained in-place ufuncs (at most one temporary) rather
    than ``1/(1+exp(-clip(x)))``, which allocates five temporaries and
    pays ``np.clip``'s dispatch overhead on every call.  ``out`` may
    alias ``x`` for a fully in-place evaluation.

    The clip limit is dtype-aware: ``exp`` overflows above ~709 at
    float64 but ~88 at float32; either limit saturates the sigmoid to
    0/1 long before it is reached, so the tighter float32 bound changes
    no values — it only keeps the kernel overflow-free.
    """
    limit = 500.0 if x.dtype == np.float64 else 80.0
    z = ops.maximum(x, -limit, out=out)
    ops.minimum(z, limit, out=z)
    ops.negative(z, out=z)
    ops.exp(z, out=z)
    z += 1.0
    return ops.reciprocal(z, out=z)


def sigmoid_backward(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gradient of sigmoid expressed through its output ``out``."""
    return grad * out * (1.0 - out)


def tanh_backward(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gradient of tanh expressed through its output ``out``."""
    return grad * (1.0 - out * out)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after NumPy broadcasting.

    Broadcasting may have added leading axes or stretched length-1 axes;
    the gradient of a broadcast is the sum over the broadcast axes.
    """
    grad = np.asarray(grad)
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``; stored in the active
        *compute dtype* (:func:`repro.nn.set_compute_dtype` — float64
        by default), which every op output also adopts.
    requires_grad:
        If true, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional debug label.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_dtypes._COMPUTE_DTYPE)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # backward engine
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1.0, which requires this tensor
            to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a seed needs a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = ops.broadcast_to(grad, self.data.shape).copy()

        # Iterative reverse topological order (avoids recursion limits on
        # long RNN tapes).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        pending: dict[int, np.ndarray] = {id(self): grad}

        def stage(tensor: "Tensor", g: np.ndarray) -> None:
            if not tensor.requires_grad:
                return
            # Gradients live in each tensor's own dtype.  Closures that
            # deliberately accumulate in float64 (bias-grad reductions,
            # loss sums) get rounded once here, at the hand-off.
            g = np.asarray(g)
            if g.dtype != tensor.data.dtype:
                g = g.astype(tensor.data.dtype)
            key = id(tensor)
            if key in pending:
                pending[key] = pending[key] + g
            else:
                pending[key] = g

        for node in reversed(topo):
            node_grad = pending.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf tensor: accumulate into .grad.
                if node.grad is None:
                    node.grad = np.array(node_grad, copy=True)
                else:
                    node.grad = node.grad + node_grad
            else:
                node._backward(node_grad, stage)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, stage):
            stage(self, _unbroadcast(grad, self.shape))
            stage(other, _unbroadcast(grad, other.shape))

        return _node(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, stage):
            stage(self, _unbroadcast(grad, self.shape))
            stage(other, _unbroadcast(-grad, other.shape))

        return _node(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, stage):
            stage(self, _unbroadcast(grad * other.data, self.shape))
            stage(other, _unbroadcast(grad * self.data, other.shape))

        return _node(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, stage):
            stage(self, _unbroadcast(grad / other.data, self.shape))
            stage(other, _unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return _node(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad, stage):
            stage(self, -grad)

        return _node(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad, stage):
            stage(self, grad * exponent * self.data ** (exponent - 1))

        return _node(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data

        def backward(grad, stage):
            if a.ndim == 1 and b.ndim == 1:
                stage(self, grad * b)
                stage(other, grad * a)
            elif a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                stage(self, _unbroadcast(ops.expand_dims(grad, -2) @ ops.swapaxes(b, -1, -2), a.shape + (1,)).reshape(a.shape)
                      if b.ndim > 2 else grad @ b.T)
                stage(other, _unbroadcast(ops.expand_dims(a, -1) @ ops.expand_dims(grad, -2), b.shape))
            elif b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                stage(self, ops.expand_dims(grad, -1) * b)
                gb = ops.swapaxes(a, -1, -2) @ ops.expand_dims(grad, -1)
                stage(other, _unbroadcast(gb, b.shape + (1,)).reshape(b.shape))
            else:
                stage(self, _unbroadcast(grad @ ops.swapaxes(b, -1, -2), a.shape))
                stage(other, _unbroadcast(ops.swapaxes(a, -1, -2) @ grad, b.shape))

        return _node(a @ b, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = ops.exp(self.data)

        def backward(grad, stage):
            stage(self, grad * out_data)

        return _node(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad, stage):
            stage(self, grad / self.data)

        return _node(ops.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = ops.tanh(self.data)

        def backward(grad, stage):
            stage(self, tanh_backward(grad, out_data))

        return _node(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = sigmoid_forward(self.data)

        def backward(grad, stage):
            stage(self, sigmoid_backward(grad, out_data))

        return _node(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad, stage):
            stage(self, grad * mask)

        return _node(self.data * mask, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad, stage):
            stage(self, grad * mask)

        return _node(ops.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad, stage):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for a in sorted(a % self.data.ndim for a in axes):
                    g = ops.expand_dims(g, a)
            stage(self, ops.broadcast_to(g, self.shape).copy())

        # Accumulate in float64 regardless of the compute dtype (loss
        # reductions must not drift term by term at float32); the node
        # rounds the result back to the compute dtype exactly once.
        return _node(self.data.sum(axis=axis, keepdims=keepdims,
                                   dtype=np.float64), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad, stage):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = ops.expand_dims(g, axis)
                full = ops.expand_dims(out_data, axis)
            else:
                full = out_data
            mask = self.data == full
            if axis is not None:
                denom = mask.sum(axis=axis, keepdims=True)
            else:
                denom = mask.sum()
            stage(self, ops.broadcast_to(g, self.shape) * mask / denom)

        return _node(out_data, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad, stage):
            stage(self, np.asarray(grad).reshape(original))

        return _node(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(ops.argsort(axes))

        def backward(grad, stage):
            stage(self, np.asarray(grad).transpose(inverse))

        return _node(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        def backward(grad, stage):
            full = np.zeros_like(self.data)
            ops.add_at(full, key, grad)
            stage(self, full)

        return _node(self.data[key], (self,), backward)

    # Comparisons return plain boolean arrays (no gradient).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)


def _node(data: np.ndarray, parents: tuple[Tensor, ...], backward) -> Tensor:
    """Construct a tape node; records parents only when grads are enabled."""
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    out = Tensor(data)
    out.requires_grad = requires
    if requires:
        out._parents = tuple(p for p in parents if p.requires_grad)
        out._backward = backward
    return out


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """Return a zero-filled tensor of the given shape."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """Return a one-filled tensor of the given shape."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    """Return a tensor of standard-normal values (seeded via ``rng``)."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)
