"""Composite differentiable operations built on :mod:`repro.nn.tensor`.

These are the ops that do not belong on the :class:`~repro.nn.tensor.Tensor`
class itself: multi-input ops (``concat``, ``stack``), numerically
stabilised softmax variants, and indexing helpers used by embedding
layers.
"""

from __future__ import annotations

import numpy as np

from .backend import call_kernel, ops
from .tensor import Tensor, _node, as_tensor

__all__ = [
    "addmm",
    "concat",
    "stack",
    "softmax",
    "log_softmax",
    "masked_log_softmax",
    "sparse_masked_log_probs",
    "row_dot",
    "gather_rows",
    "embedding_lookup",
    "dropout",
    "where_mask",
    "pad_sequences",
]


def addmm(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ weight + bias`` recorded as a single tape node.

    ``weight`` must be 2-D ``(K, N)`` and ``bias`` 1-D ``(N,)``; ``x``
    may carry arbitrary leading batch dimensions ``(..., K)``.  Compared
    with the composed ``x @ w + b`` this records one node instead of
    two, which matters on hot paths that call Dense layers per element.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    a, w = x.data, weight.data
    if w.ndim != 2:
        raise ValueError(f"addmm weight must be 2-D, got shape {w.shape}")
    # Flatten leading batch dims into one big GEMM: (B, T, K) @ (K, N)
    # as (B*T, K) @ (K, N) beats NumPy's loop of B small matmuls.
    lead = a.shape[:-1]
    a2 = a.reshape(-1, w.shape[0]) if a.ndim != 2 else a
    out = a2 @ w
    if bias is not None:
        bias = as_tensor(bias)
        out += bias.data
    out = out.reshape(*lead, w.shape[1])

    def backward(grad, stage):
        flat_grad = np.asarray(grad).reshape(-1, w.shape[1])
        stage(x, (flat_grad @ w.T).reshape(a.shape))
        stage(weight, a2.T @ flat_grad)
        if bias is not None:
            # float64 accumulation over the B*T rows (rounded once at
            # the stage hand-off); identical bits at float64 compute.
            stage(bias, flat_grad.sum(axis=0, dtype=np.float64))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return _node(out, parents, backward)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = ops.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = ops.cumsum([0] + sizes)

    def backward(grad, stage):
        grad = np.asarray(grad)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            stage(tensor, grad[tuple(index)])

    return _node(data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = ops.stack([t.data for t in tensors], axis=axis)

    def backward(grad, stage):
        grad = np.asarray(grad)
        for i, tensor in enumerate(tensors):
            index = [slice(None)] * grad.ndim
            index[axis] = i
            stage(tensor, grad[tuple(index)])

    return _node(data, tuple(tensors), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The normaliser accumulates in float64 even at float32 compute (one
    rounding per row instead of a term-by-term float32 drift).
    """
    x = as_tensor(x)
    out_data = x.data - x.data.max(axis=axis, keepdims=True)
    ops.exp(out_data, out=out_data)
    out_data /= out_data.sum(axis=axis, keepdims=True, dtype=np.float64)

    def backward(grad, stage):
        grad = np.asarray(grad)
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        stage(x, out_data * (grad - dot))

    return _node(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``.

    ``exp`` over the full array is the dominant cost, so it runs once:
    the exponentials are reused (normalised in place) as the softmax
    the backward pass needs.
    """
    x = as_tensor(x)
    out_data, soft = call_kernel("log_softmax_dense", _log_softmax_ref,
                                 x.data, axis)

    def backward(grad, stage):
        grad = np.asarray(grad)
        stage(x, grad - soft * grad.sum(axis=axis, keepdims=True))

    return _node(out_data, (x,), backward)


def _log_softmax_ref(x_data: np.ndarray, axis: int):
    """Dense log-softmax core: ``(out, soft)`` on raw arrays.

    Hot-kernel seam ``"log_softmax_dense"``.  Implementations must
    return freshly allocated arrays — both escape into the tape node
    and its backward closure.
    """
    shifted = x_data - x_data.max(axis=axis, keepdims=True)
    soft = ops.exp(shifted)
    # float64 normaliser accumulation (exact at float64 compute; one
    # rounding per row at float32 — see docs/PERFORMANCE.md precision).
    sumexp = soft.sum(axis=axis, keepdims=True, dtype=np.float64)
    out_data = shifted
    out_data -= ops.log(sumexp)
    soft /= sumexp
    return out_data, soft


def _masked_log_softmax_ref(x_data: np.ndarray, log_mask: np.ndarray,
                            axis: int):
    """Dense masked log-softmax core (hot-kernel seam
    ``"masked_log_softmax_dense"``); same escape contract as
    :func:`_log_softmax_ref`."""
    shifted = x_data + log_mask
    shifted -= shifted.max(axis=axis, keepdims=True)
    soft = ops.exp(shifted)
    sumexp = soft.sum(axis=axis, keepdims=True, dtype=np.float64)
    out_data = shifted
    out_data -= ops.log(sumexp)
    soft /= sumexp
    return out_data, soft


def masked_log_softmax(x: Tensor, log_mask, axis: int = -1) -> Tensor:
    """``log_softmax(x + log_mask)`` as one tape node (paper Eq. 11).

    ``log_mask`` is a constant additive bias (the constraint-mask log
    weights), so folding it into the log-softmax skips one add node and
    its dense backward pass on the hot decode path.

    ``log_mask`` is either a dense array broadcastable against ``x`` or
    a CSR-style sparse mask (an object with ``indptr`` / ``indices`` /
    ``log_values`` / ``floor`` attributes, such as
    :class:`repro.core.mask.SparseConstraintMask`).  With a sparse mask
    the exponentials, the normaliser, and the backward softmax term are
    computed only over each row's active indices — the dominant softmax
    cost scales with the mask's nnz instead of the full vocabulary.
    """
    if not isinstance(log_mask, np.ndarray):
        return _sparse_masked_log_softmax(x, log_mask, axis)
    x = as_tensor(x)
    if log_mask.dtype != x.data.dtype:
        # A float64 mask would silently upcast the whole softmax chain
        # at float32 compute; cast once here instead.
        log_mask = log_mask.astype(x.data.dtype)
    out_data, soft = call_kernel("masked_log_softmax_dense",
                                 _masked_log_softmax_ref, x.data, log_mask,
                                 axis)

    def backward(grad, stage):
        grad = np.asarray(grad)
        dx = soft * grad.sum(axis=axis, keepdims=True)
        ops.subtract(grad, dx, out=dx)
        stage(x, dx)

    return _node(out_data, (x,), backward)


def _sparse_log_probs_core(x2: np.ndarray, smask, want_soft: bool):
    """Masked log-softmax over CSR rows; shared by tape and no-tape paths
    (hot-kernel seam ``"sparse_log_probs"``).

    ``x2`` is the ``(R, S)`` row-flattened logits; ``smask`` supplies
    ``indptr`` (``(R+1,)``), ``indices`` / ``log_values`` (``(nnz,)``)
    and the scalar ``floor`` assigned to inactive entries.  The dense
    equivalent adds ``floor`` everywhere and the active ``log_values``
    on top, then log-softmaxes each row; here ``exp`` runs only over
    the nnz active entries, and rows with an empty active set (the
    empty-radius fallback, where the dense mask is uniformly ``floor``)
    drop to a dense log-softmax over just those rows.

    Returns ``(out, (nz_rows, soft_nz, empty, soft_empty))`` where the
    second element carries what the backward pass needs (softmax values
    at the active entries, and dense softmax rows for empty-set rows);
    ``soft_nz`` / ``soft_empty`` are ``None`` unless ``want_soft``.
    """
    return call_kernel("sparse_log_probs", _sparse_log_probs_ref,
                       x2, smask, want_soft)


def _sparse_log_probs_ref(x2: np.ndarray, smask, want_soft: bool):
    """Reference CSR masked log-softmax (see :func:`_sparse_log_probs_core`).

    A planned step mask (``smask.nz_rows`` precomputed by the workspace
    decode-plan kernel) short-circuits the per-call row-expansion —
    the cached array is the exact value computed here, so reading it
    changes no bits on any backend.
    """
    r, s = x2.shape
    indptr = smask.indptr
    lens = ops.diff(indptr)
    nz_rows = getattr(smask, "nz_rows", None)
    if nz_rows is None:
        nz_rows = ops.repeat(np.arange(r), lens)
    log_values = smask.log_values
    if log_values.dtype != x2.dtype:
        log_values = log_values.astype(x2.dtype)
    z_nz = x2[nz_rows, smask.indices] + log_values
    nonempty = lens > 0
    soft_nz = None
    # Per-row normalisers accumulate in float64 regardless of the
    # compute dtype (identical bits at float64; one rounding per row
    # at float32 when folded back below).
    log_z = np.empty(r, dtype=np.float64)
    if z_nz.size:
        starts = indptr[:-1][nonempty]
        seg_lens = lens[nonempty]
        seg_max = ops.maximum_reduceat(z_nz, starts)
        e_nz = ops.exp(z_nz - ops.repeat(seg_max, seg_lens))
        seg_sum = ops.add_reduceat(e_nz, starts, dtype=np.float64)
        log_z[nonempty] = seg_max + ops.log(seg_sum)
        if want_soft:
            e_nz /= ops.repeat(seg_sum, seg_lens)
            soft_nz = e_nz
    elif want_soft:
        soft_nz = np.empty(0, dtype=x2.dtype)
    empty = ~nonempty
    soft_empty = None
    if empty.any():
        xe = x2[empty]
        max_e = xe.max(axis=1, keepdims=True)
        exp_e = ops.exp(xe - max_e)
        sum_e = exp_e.sum(axis=1, keepdims=True, dtype=np.float64)
        log_z[empty] = smask.floor + (max_e + ops.log(sum_e)).ravel()
        if want_soft:
            exp_e /= sum_e
            soft_empty = exp_e
    adjust = smask.floor - log_z
    if adjust.dtype != x2.dtype:
        adjust = adjust.astype(x2.dtype)
    out = x2 + adjust[:, None]
    out[nz_rows, smask.indices] = z_nz - log_z[nz_rows]
    return out, (nz_rows, soft_nz, empty, soft_empty)


def _sparse_masked_log_softmax(x: Tensor, smask, axis: int) -> Tensor:
    """Sparse-mask leg of :func:`masked_log_softmax` (one tape node)."""
    x = as_tensor(x)
    if axis not in (-1, x.ndim - 1):
        raise ValueError("sparse masked_log_softmax supports the last axis only")
    if getattr(smask, "identity", False):
        # Disabled mask: a uniformly-zero log weight cancels in softmax.
        return log_softmax(x, axis=-1)
    if tuple(smask.shape) != x.shape:
        raise ValueError(
            f"sparse mask shape {tuple(smask.shape)} does not match logits {x.shape}"
        )
    s = x.shape[-1]
    x2 = x.data.reshape(-1, s)
    out2, (nz_rows, soft_nz, empty, soft_empty) = _sparse_log_probs_core(
        x2, smask, want_soft=True
    )
    indices = smask.indices

    def backward(grad, stage):
        g2 = np.asarray(grad).reshape(-1, s)
        g_sum = g2.sum(axis=1)
        dx = g2.copy()
        if nz_rows.size:
            dx[nz_rows, indices] -= soft_nz * g_sum[nz_rows]
        if soft_empty is not None:
            dx[empty] -= soft_empty * g_sum[empty, None]
        stage(x, dx.reshape(x.shape))

    return _node(out2.reshape(x.shape), (x,), backward)


def sparse_masked_log_probs(logits: np.ndarray, smask) -> np.ndarray:
    """Plain-NumPy sparse masked log-softmax (no tape): inference path.

    Same computation as the sparse leg of :func:`masked_log_softmax`
    but on raw arrays, for the tape-free autoregressive decode.
    ``logits`` may carry leading batch dims; ``smask`` rows must match
    their product.
    """
    if getattr(smask, "identity", False):
        shifted = logits - logits.max(axis=-1, keepdims=True)
        # Mirror of log_softmax: float64 normaliser, rounded in place.
        shifted -= ops.log(ops.exp(shifted).sum(axis=-1, keepdims=True,
                                                dtype=np.float64))
        return shifted
    out, _ = _sparse_log_probs_core(
        logits.reshape(-1, logits.shape[-1]), smask, want_soft=False
    )
    return out.reshape(logits.shape)


def row_dot(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Packing-stable ``(..., K) @ (K, 1)`` mat-vec on raw arrays.

    BLAS dispatches single-output-column matmuls to GEMV kernels whose
    accumulation blocking depends on the row count, so the same row can
    come out a few ULP different inside working sets of different
    sizes.  The packed decode engine compacts its working set whenever
    a trajectory finishes, so its single-output heads (moving-ratio
    heads, the additive-attention energy) use this reduction instead:
    an elementwise product and a per-row pairwise sum, bit-stable under
    any row packing.  Returns shape ``(...)`` (the unit column dropped);
    values agree with the ``@`` form to ~1 ULP.
    """
    return (x * w.reshape(-1)).sum(axis=-1)


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Pick one entry per row: ``x[arange(N), indices]`` as one node.

    Because every picked position is distinct (one per row), the
    backward scatter is a direct fancy-index assignment rather than the
    much slower ``np.add.at`` accumulation the generic ``__getitem__``
    needs.
    """
    x = as_tensor(x)
    if x.ndim != 2:
        raise ValueError(f"gather_rows expects (N, C) input, got {x.shape}")
    n = x.shape[0]
    indices = np.asarray(indices, dtype=np.int64)
    if indices.shape != (n,):
        raise ValueError(f"indices shape {indices.shape} does not match rows {n}")
    rows = np.arange(n)

    def backward(grad, stage):
        full = np.zeros_like(x.data)
        full[rows, indices] = grad
        stage(x, full)

    return _node(x.data[rows, indices], (x,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add gradient.

    Parameters
    ----------
    weight:
        ``(vocab, dim)`` embedding matrix.
    indices:
        Integer array of any shape; result has shape ``indices.shape + (dim,)``.
    """
    indices = np.asarray(indices, dtype=np.int64)

    def backward(grad, stage):
        full = np.zeros_like(weight.data)
        ops.add_at(full, indices.reshape(-1), np.asarray(grad).reshape(-1, weight.data.shape[1]))
        stage(weight, full)

    return _node(weight.data[indices], (weight,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` in training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    # Draw float64 (identical RNG stream at any compute dtype), then
    # match the keep-scale to x so the multiply does not upcast.
    keep = ((rng.random(x.shape) >= p) / (1.0 - p)).astype(x.data.dtype,
                                                           copy=False)

    def backward(grad, stage):
        stage(x, np.asarray(grad) * keep)

    return _node(x.data * keep, (x,), backward)


def where_mask(mask: np.ndarray, x: Tensor, fill: float) -> Tensor:
    """Differentiable ``np.where(mask, x, fill)`` with a constant fill.

    Used by the constraint-mask layer to suppress logits of road segments
    that are too far from the observed trajectory.
    """
    mask = np.asarray(mask, dtype=bool)

    def backward(grad, stage):
        stage(x, np.asarray(grad) * mask)

    return _node(ops.where(mask, x.data, fill), (x,), backward)


def pad_sequences(arrays: list[np.ndarray], pad_value: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Pad a list of ``(T_i, ...)`` arrays to ``(N, T_max, ...)``.

    Returns the padded batch and a boolean validity mask of shape
    ``(N, T_max)``.  This is a plain-NumPy helper (no gradients) used by
    the batching code.
    """
    if not arrays:
        raise ValueError("pad_sequences() needs at least one sequence")
    max_len = max(a.shape[0] for a in arrays)
    trailing = arrays[0].shape[1:]
    batch = np.full((len(arrays), max_len, *trailing), pad_value, dtype=np.asarray(arrays[0]).dtype)
    mask = np.zeros((len(arrays), max_len), dtype=bool)
    for i, a in enumerate(arrays):
        batch[i, : a.shape[0]] = a
        mask[i, : a.shape[0]] = True
    return batch, mask
