"""Composite differentiable operations built on :mod:`repro.nn.tensor`.

These are the ops that do not belong on the :class:`~repro.nn.tensor.Tensor`
class itself: multi-input ops (``concat``, ``stack``), numerically
stabilised softmax variants, and indexing helpers used by embedding
layers.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _node, as_tensor

__all__ = [
    "addmm",
    "concat",
    "stack",
    "softmax",
    "log_softmax",
    "masked_log_softmax",
    "gather_rows",
    "embedding_lookup",
    "dropout",
    "where_mask",
    "pad_sequences",
]


def addmm(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ weight + bias`` recorded as a single tape node.

    ``weight`` must be 2-D ``(K, N)`` and ``bias`` 1-D ``(N,)``; ``x``
    may carry arbitrary leading batch dimensions ``(..., K)``.  Compared
    with the composed ``x @ w + b`` this records one node instead of
    two, which matters on hot paths that call Dense layers per element.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    a, w = x.data, weight.data
    if w.ndim != 2:
        raise ValueError(f"addmm weight must be 2-D, got shape {w.shape}")
    # Flatten leading batch dims into one big GEMM: (B, T, K) @ (K, N)
    # as (B*T, K) @ (K, N) beats NumPy's loop of B small matmuls.
    lead = a.shape[:-1]
    a2 = a.reshape(-1, w.shape[0]) if a.ndim != 2 else a
    out = a2 @ w
    if bias is not None:
        bias = as_tensor(bias)
        out += bias.data
    out = out.reshape(*lead, w.shape[1])

    def backward(grad, stage):
        flat_grad = np.asarray(grad).reshape(-1, w.shape[1])
        stage(x, (flat_grad @ w.T).reshape(a.shape))
        stage(weight, a2.T @ flat_grad)
        if bias is not None:
            stage(bias, flat_grad.sum(axis=0))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return _node(out, parents, backward)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, stage):
        grad = np.asarray(grad)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            stage(tensor, grad[tuple(index)])

    return _node(data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad, stage):
        grad = np.asarray(grad)
        for i, tensor in enumerate(tensors):
            index = [slice(None)] * grad.ndim
            index[axis] = i
            stage(tensor, grad[tuple(index)])

    return _node(data, tuple(tensors), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    out_data = x.data - x.data.max(axis=axis, keepdims=True)
    np.exp(out_data, out=out_data)
    out_data /= out_data.sum(axis=axis, keepdims=True)

    def backward(grad, stage):
        grad = np.asarray(grad)
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        stage(x, out_data * (grad - dot))

    return _node(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``.

    ``exp`` over the full array is the dominant cost, so it runs once:
    the exponentials are reused (normalised in place) as the softmax
    the backward pass needs.
    """
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    soft = np.exp(shifted)
    sumexp = soft.sum(axis=axis, keepdims=True)
    out_data = shifted
    out_data -= np.log(sumexp)
    soft /= sumexp

    def backward(grad, stage):
        grad = np.asarray(grad)
        stage(x, grad - soft * grad.sum(axis=axis, keepdims=True))

    return _node(out_data, (x,), backward)


def masked_log_softmax(x: Tensor, log_mask: np.ndarray, axis: int = -1) -> Tensor:
    """``log_softmax(x + log_mask)`` as one tape node (paper Eq. 11).

    ``log_mask`` is a constant additive bias (the constraint-mask log
    weights), so folding it into the log-softmax skips one add node and
    its dense backward pass on the hot decode path.
    """
    x = as_tensor(x)
    shifted = x.data + log_mask
    shifted -= shifted.max(axis=axis, keepdims=True)
    soft = np.exp(shifted)
    sumexp = soft.sum(axis=axis, keepdims=True)
    out_data = shifted
    out_data -= np.log(sumexp)
    soft /= sumexp

    def backward(grad, stage):
        grad = np.asarray(grad)
        dx = soft * grad.sum(axis=axis, keepdims=True)
        np.subtract(grad, dx, out=dx)
        stage(x, dx)

    return _node(out_data, (x,), backward)


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Pick one entry per row: ``x[arange(N), indices]`` as one node.

    Because every picked position is distinct (one per row), the
    backward scatter is a direct fancy-index assignment rather than the
    much slower ``np.add.at`` accumulation the generic ``__getitem__``
    needs.
    """
    x = as_tensor(x)
    if x.ndim != 2:
        raise ValueError(f"gather_rows expects (N, C) input, got {x.shape}")
    n = x.shape[0]
    indices = np.asarray(indices, dtype=np.int64)
    if indices.shape != (n,):
        raise ValueError(f"indices shape {indices.shape} does not match rows {n}")
    rows = np.arange(n)

    def backward(grad, stage):
        full = np.zeros_like(x.data)
        full[rows, indices] = grad
        stage(x, full)

    return _node(x.data[rows, indices], (x,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add gradient.

    Parameters
    ----------
    weight:
        ``(vocab, dim)`` embedding matrix.
    indices:
        Integer array of any shape; result has shape ``indices.shape + (dim,)``.
    """
    indices = np.asarray(indices, dtype=np.int64)

    def backward(grad, stage):
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), np.asarray(grad).reshape(-1, weight.data.shape[1]))
        stage(weight, full)

    return _node(weight.data[indices], (weight,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` in training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad, stage):
        stage(x, np.asarray(grad) * keep)

    return _node(x.data * keep, (x,), backward)


def where_mask(mask: np.ndarray, x: Tensor, fill: float) -> Tensor:
    """Differentiable ``np.where(mask, x, fill)`` with a constant fill.

    Used by the constraint-mask layer to suppress logits of road segments
    that are too far from the observed trajectory.
    """
    mask = np.asarray(mask, dtype=bool)

    def backward(grad, stage):
        stage(x, np.asarray(grad) * mask)

    return _node(np.where(mask, x.data, fill), (x,), backward)


def pad_sequences(arrays: list[np.ndarray], pad_value: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Pad a list of ``(T_i, ...)`` arrays to ``(N, T_max, ...)``.

    Returns the padded batch and a boolean validity mask of shape
    ``(N, T_max)``.  This is a plain-NumPy helper (no gradients) used by
    the batching code.
    """
    if not arrays:
        raise ValueError("pad_sequences() needs at least one sequence")
    max_len = max(a.shape[0] for a in arrays)
    trailing = arrays[0].shape[1:]
    batch = np.full((len(arrays), max_len, *trailing), pad_value, dtype=np.asarray(arrays[0]).dtype)
    mask = np.zeros((len(arrays), max_len), dtype=bool)
    for i, a in enumerate(arrays):
        batch[i, : a.shape[0]] = a
        mask[i, : a.shape[0]] = True
    return batch, mask
