"""Numba-jitted hot kernels for the ``numba`` array backend.

Imported (and the backend registered) only when :mod:`numba` itself
imports — see :func:`repro.nn.backend._init_numba_backend`; numba is
never a hard dependency of the substrate.  The jitted loops compile
lazily on first call; if compilation fails the raising kernel is
disabled and :func:`repro.nn.backend.call_kernel` transparently re-runs
the NumPy reference for the rest of the process.

Unlike the ``workspace`` backend these kernels are **not** bitwise
identical to the reference: the jitted recurrences compute activations
with numba's own ``exp``/``tanh`` and may fuse elementwise chains
differently, so results track the reference to tolerance (audited in
``tests/nn/test_backend.py::TestNumbaGating``), not bit for bit.  Only
the sequential scan loops — the part NumPy cannot vectorize — are
jitted; whole-sequence projections stay on BLAS in the callers.

This module only depends on numpy + numba: registration is inverted
(:func:`register` receives the backend object) so no import back into
:mod:`repro.nn.backend` is needed while that module is still
initialising.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def _rnn_forward_jit(xw, h0, w_h, keep, use_keep):
    batch, steps, hidden = xw.shape
    raw = np.empty((batch, steps, hidden), xw.dtype)
    hs = np.empty((batch, steps, hidden), xw.dtype)
    h = h0.copy()
    for t in range(steps):
        ht = np.tanh(h @ w_h + xw[:, t])
        raw[:, t] = ht
        if use_keep:
            kt = keep[:, t]
            h = ht * kt + h * (1.0 - kt)
        else:
            h = ht
        hs[:, t] = h
    return raw, hs


@njit(cache=True)
def _rnn_backward_jit(grad, raw, keep, use_keep, w_h_t):
    batch, steps, hidden = raw.shape
    dpre = np.empty((batch, steps, hidden), raw.dtype)
    dh = np.zeros((batch, hidden), raw.dtype)
    for t in range(steps - 1, -1, -1):
        dcarry = grad[:, t] + dh
        if use_keep:
            kt = keep[:, t]
            dp = dcarry * kt * (1.0 - raw[:, t] * raw[:, t])
            dpre[:, t] = dp
            dh = dp @ w_h_t + dcarry * (1.0 - kt)
        else:
            dp = dcarry * (1.0 - raw[:, t] * raw[:, t])
            dpre[:, t] = dp
            dh = dp @ w_h_t
    return dpre, dh


@njit(cache=True)
def _gru_forward_jit(xg, xh, h0, w_gh, w_hh, keep, use_keep):
    batch, steps, hidden = xh.shape
    gates = np.empty((batch, steps, 2 * hidden), xh.dtype)
    cand_seq = np.empty((batch, steps, hidden), xh.dtype)
    hs = np.empty((batch, steps, hidden), xh.dtype)
    h = h0.copy()
    for t in range(steps):
        rz = 1.0 / (1.0 + np.exp(-(h @ w_gh + xg[:, t])))
        gates[:, t] = rz
        r = rz[:, :hidden]
        z = rz[:, hidden:]
        cand = np.tanh((r * h) @ w_hh + xh[:, t])
        cand_seq[:, t] = cand
        h_new = (1.0 - z) * h + z * cand
        if use_keep:
            kt = keep[:, t]
            h = h_new * kt + h * (1.0 - kt)
        else:
            h = h_new
        hs[:, t] = h
    return gates, cand_seq, hs


def _dummy_keep(dtype) -> np.ndarray:
    # The jitted branches need a type-stable array argument even when
    # the caller has no mask; the unused branch never indexes it.
    return np.empty((1, 1, 1), dtype)


def _rnn_forward(xw, h0, w_h_data, keep):
    use_keep = keep is not None
    kp = np.ascontiguousarray(keep) if use_keep else _dummy_keep(xw.dtype)
    raw, hs = _rnn_forward_jit(np.ascontiguousarray(xw),
                               np.ascontiguousarray(h0),
                               np.ascontiguousarray(w_h_data), kp, use_keep)
    return (raw, raw) if keep is None else (raw, hs)


def _rnn_backward(grad, raw, keep, w_h_t):
    use_keep = keep is not None
    kp = np.ascontiguousarray(keep) if use_keep else _dummy_keep(raw.dtype)
    return _rnn_backward_jit(np.ascontiguousarray(grad), raw, kp, use_keep,
                             np.ascontiguousarray(w_h_t))


def _gru_forward(xg, xh, h0, w_gh, w_hh, keep):
    use_keep = keep is not None
    kp = np.ascontiguousarray(keep) if use_keep else _dummy_keep(xh.dtype)
    return _gru_forward_jit(np.ascontiguousarray(xg),
                            np.ascontiguousarray(xh),
                            np.ascontiguousarray(h0),
                            np.ascontiguousarray(w_gh),
                            np.ascontiguousarray(w_hh), kp, use_keep)


def register(backend) -> None:
    """Install the jitted kernels on ``backend`` (the ``numba`` entry).

    The GRU backward, LSTM scans, log-softmax cores, and decode step
    stay unregistered: they fall back to the reference per kernel — the
    seam's contract makes a partial kernel set safe.
    """
    backend.kernels["rnn_scan_forward"] = _rnn_forward
    backend.kernels["rnn_scan_backward"] = _rnn_backward
    backend.kernels["gru_scan_forward"] = _gru_forward
