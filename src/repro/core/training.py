"""Local training loop shared by clients, teachers, and baselines.

One :class:`LocalTrainer` wraps a recovery model with its optimiser and
constraint-mask builder, and exposes exactly what the federated layer
needs: ``train_epochs`` (with optional distillation against a teacher)
and ``segment_accuracy`` (the validation accuracy used by the gates of
Algorithms 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.dataset import Batch, TrajectoryDataset
from ..serving import decode_model
from .base import ModelOutput, RecoveryModel
from .mask import ConstraintMaskBuilder

__all__ = ["TrainingConfig", "LocalTrainer", "evaluate_output_accuracy"]


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of local (per-client) optimisation."""

    epochs: int = 5
    batch_size: int = 16
    lr: float = 1e-3
    mu: float = 1.0  # CE/MSE trade-off of Eq. 13
    grad_clip: float = 5.0

    def __post_init__(self):
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.lr <= 0:
            raise ValueError("learning rate must be positive")


class LocalTrainer:
    """Trains one recovery model on one local dataset."""

    def __init__(self, model: RecoveryModel, mask_builder: ConstraintMaskBuilder,
                 config: TrainingConfig, rng: np.random.Generator):
        self.model = model
        self.mask_builder = mask_builder
        self.config = config
        self.rng = rng
        self.optimizer = nn.Adam(model.parameters(), lr=config.lr)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_epochs(self, dataset: TrajectoryDataset, epochs: int | None = None,
                     distiller=None, lam: float = 0.0) -> list[float]:
        """Run ``epochs`` training passes; returns per-epoch mean losses.

        When ``distiller`` is given and ``lam > 0``, adds the
        meta-knowledge distillation term ``lam * L_dist`` (Eq. 17).
        """
        losses = []
        for _ in range(epochs if epochs is not None else self.config.epochs):
            losses.append(self.train_epoch(dataset, distiller=distiller, lam=lam))
        return losses

    def train_epoch(self, dataset: TrajectoryDataset, distiller=None,
                    lam: float = 0.0) -> float:
        """One pass over the dataset; returns the mean total loss."""
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        self.model.train()
        epoch_loss = 0.0
        num_batches = 0
        for batch in dataset.batches(self.config.batch_size, rng=self.rng):
            log_mask = self.mask_builder.build_for(batch, self.model)
            self.optimizer.zero_grad()
            output = self.model(batch, log_mask, teacher_forcing=True)
            loss, _ = self.model.loss(output, batch, mu=self.config.mu)
            if distiller is not None and lam > 0.0:
                loss = loss + lam * distiller.distillation_term(output, batch, log_mask)
            loss.backward()
            nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            epoch_loss += loss.item()
            num_batches += 1
        return epoch_loss / num_batches

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def segment_accuracy(self, dataset: TrajectoryDataset) -> float:
        """Fraction of missing points whose road segment is predicted
        correctly (the "accuracy" of Algorithms 1-2's gates)."""
        return model_segment_accuracy(self.model, self.mask_builder, dataset)


def model_segment_accuracy(model: RecoveryModel, mask_builder: ConstraintMaskBuilder,
                           dataset: TrajectoryDataset) -> float:
    """Segment accuracy of ``model`` over the missing points of ``dataset``.

    Runs through the packed decode engine (:mod:`repro.serving`) —
    this is the eval hook inside the federated loop's accuracy gates,
    so it is as hot as training itself.
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    model.eval()
    batch = dataset.full_batch()
    log_mask = mask_builder.build_for(batch, model)
    with nn.no_grad():
        output = decode_model(model, batch, log_mask)
    model.train()
    return evaluate_output_accuracy(output, batch)


def evaluate_output_accuracy(output: ModelOutput, batch: Batch) -> float:
    """Accuracy of predicted segments over valid missing steps."""
    missing = batch.tgt_mask & ~batch.observed_flags
    if not missing.any():
        return 1.0
    correct = output.segments == batch.tgt_segments
    return float(correct[missing].mean())
