"""Shared interface for every trajectory recovery model in the repo.

LightTR's LTE model and all four federated baselines (FC, RNN,
MTrajRec, RNTrajRec) implement the same contract so that a single
trainer, federated loop, and metric pipeline serve them all:

* ``forward(batch, log_mask, teacher_forcing)`` returns a
  :class:`ModelOutput` with per-step segment log-probabilities, moving
  ratios, and argmax segment ids;
* ``loss(output, batch, mu)`` is the paper's multi-task objective
  ``L1 + mu * L2`` (Eq. 13-15), shared across models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.dataset import Batch
from ..nn.tensor import Tensor
from ..serving.engine import DecodeSession

__all__ = ["ModelOutput", "RecoveryModel", "RecoveryModelConfig"]


@dataclass(frozen=True)
class RecoveryModelConfig:
    """Hyper-parameters shared by all recovery models."""

    num_cells: int
    num_segments: int
    cell_emb_dim: int = 24
    seg_emb_dim: int = 24
    hidden_size: int = 64
    num_st_blocks: int = 2
    dropout: float = 0.1
    bbox: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)
    encoder: str = "gru"  # "gru" (paper), "lstm", or "rnn" (ablations)

    def __post_init__(self):
        if self.num_cells < 1 or self.num_segments < 1:
            raise ValueError("vocabulary sizes must be positive")
        if self.hidden_size < 1:
            raise ValueError("hidden size must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.encoder not in ("gru", "lstm", "rnn"):
            raise ValueError(f"unknown encoder {self.encoder!r}")


class ModelOutput:
    """Forward-pass outputs over a batch."""

    __slots__ = ("log_probs", "ratios", "segments")

    def __init__(self, log_probs: Tensor, ratios: Tensor, segments: np.ndarray):
        self.log_probs = log_probs  # (B, T, S)
        self.ratios = ratios  # (B, T)
        self.segments = segments  # (B, T) int64 argmax predictions

    def probs(self) -> Tensor:
        """Segment probability tensor (used for distillation)."""
        return self.log_probs.exp()


class RecoveryModel(nn.Module):
    """Base class: shared loss and coordinate normalisation."""

    #: Whether ``forward`` accepts a CSR-style
    #: :class:`~repro.core.mask.SparseConstraintMask` in place of the
    #: dense ``(B, T, S)`` log-mask array.  Models that opt in get the
    #: sparse hot path from :meth:`ConstraintMaskBuilder.build_for`.
    supports_sparse_mask = False

    def __init__(self, config: RecoveryModelConfig):
        super().__init__()
        self.config = config

    # ------------------------------------------------------------------
    # contract
    # ------------------------------------------------------------------
    def forward(self, batch: Batch, log_mask: np.ndarray,
                teacher_forcing: bool = True) -> ModelOutput:
        raise NotImplementedError

    def decode_program(self, batch: Batch, log_mask):
        """A decode program for the serving engine, or ``None``.

        Autoregressive models return an adapter implementing the
        :class:`~repro.serving.DecodeSession` protocol (built on their
        raw-array step kernels); ``None`` means the model has no packed
        decode path and serving call sites fall back to the padded
        ``forward(..., teacher_forcing=False)`` decode.  Callers run
        under ``no_grad`` with the model in eval mode.
        """
        return None

    def _packed_inference(self, batch: Batch, log_mask) -> ModelOutput | None:
        """Engine-driven full-length inference decode, or ``None``.

        The shared tape-free decode loop models call from
        ``forward(teacher_forcing=False)``: builds the decode program
        and steps it through one :class:`~repro.serving.DecodeSession`
        over the full padded horizon (no compaction), which reproduces
        the padded per-step loops bit-for-bit while skipping all tape
        bookkeeping.  Returns ``None`` when gradients are being
        recorded or the model has no program — callers then take their
        per-step reference loop.
        """
        if nn.is_grad_enabled() or not nn.packed_decode_enabled():
            return None
        program = self.decode_program(batch, log_mask)
        if program is None:
            return None
        result = DecodeSession().run(program, batch)
        return ModelOutput(log_probs=nn.Tensor(result.log_probs),
                           ratios=nn.Tensor(result.ratios),
                           segments=result.segments)

    # ------------------------------------------------------------------
    # loss (paper Eq. 13-15)
    # ------------------------------------------------------------------
    def loss(self, output: ModelOutput, batch: Batch, mu: float = 1.0
             ) -> tuple[Tensor, dict[str, float]]:
        """Local recovery loss ``L1 + mu * L2`` over valid steps.

        ``L1`` is segment cross-entropy computed from the (masked)
        log-probabilities; ``L2`` is moving-ratio MSE.  Padding steps
        are excluded through per-sample weights.
        """
        b, t, s = output.log_probs.shape
        weights = batch.tgt_mask.astype(np.float64).reshape(-1)
        flat_logs = output.log_probs.reshape(b * t, s)
        l1 = nn.nll_from_log_probs(flat_logs, batch.tgt_segments.reshape(-1), weights)
        l2 = nn.mse_loss(output.ratios.reshape(-1),
                         batch.tgt_ratios.reshape(-1), weights)
        total = l1 + mu * l2
        return total, {"ce": l1.item(), "mse": l2.item(), "total": total.item()}

    # ------------------------------------------------------------------
    # helpers shared by subclasses
    # ------------------------------------------------------------------
    def _step_extras(self, batch: Batch) -> np.ndarray:
        """Auxiliary decode inputs for every step: ``(B, T, 4)``.

        Per step: the step fraction, the normalised guide position, and
        the observed flag — the features every autoregressive decoder
        in the repo concatenates into its step input (bitwise equal to
        building them one step at a time).
        """
        b, t = batch.tgt_segments.shape
        guide = self._normalise_guides(batch.guide_xy)
        fractions = np.arange(t, dtype=np.float64) / max(1, t - 1)
        extras = np.concatenate(
            [
                np.broadcast_to(fractions[None, :, None], (b, t, 1)),
                guide,
                batch.observed_flags[..., None].astype(np.float64),
            ],
            axis=-1,
        )
        # Built in float64 (guide normalisation reads float64 planar
        # coordinates), handed to the decode kernels in the compute
        # dtype — one cast here instead of an upcast every step.
        return extras.astype(nn.get_compute_dtype(), copy=False)

    def _normalise_guides(self, guide_xy: np.ndarray) -> np.ndarray:
        """Map guide positions into roughly [-1, 1] model coordinates."""
        min_x, min_y, max_x, max_y = self.config.bbox
        cx, cy = (min_x + max_x) / 2.0, (min_y + max_y) / 2.0
        half = max(max_x - min_x, max_y - min_y) / 2.0 or 1.0
        normed = np.empty_like(guide_xy)
        normed[..., 0] = (guide_xy[..., 0] - cx) / half
        normed[..., 1] = (guide_xy[..., 1] - cy) / half
        return normed

    def _validate_mask(self, log_mask, batch: Batch, num_segments: int) -> None:
        if not isinstance(log_mask, np.ndarray) and not self.supports_sparse_mask:
            raise TypeError(
                f"{type(self).__name__} does not accept sparse constraint "
                f"masks; build a dense one with ConstraintMaskBuilder.build() "
                f"(or let build_for() pick the representation)"
            )
        b, t = batch.tgt_segments.shape
        if tuple(log_mask.shape) != (b, t, num_segments):
            raise ValueError(
                f"log_mask shape {tuple(log_mask.shape)} does not match batch "
                f"({b}, {t}, {num_segments})"
            )
