"""Meta-knowledge enhanced local training (paper Algorithm 2, Eq. 16-18).

A pre-trained teacher (meta-learner) guides each client's local model
through knowledge distillation: the student is penalised for deviating
from the teacher's outputs, with a weight ``lambda`` that adapts to how
much better the teacher performs on the client's validation data.

The paper's Eq. 18 reads ``lambda <- -lambda0 * 10^(min(1, (acc_tea -
acc_stu) * 5) - 1)``; the minus sign is an evident typo (a negative
lambda would *reward* deviating from a good teacher, and the text says
"the better the teacher ... the larger the value of lambda"), so we use
the positive magnitude.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.dataset import Batch, TrajectoryDataset
from ..nn.tensor import Tensor
from .base import ModelOutput, RecoveryModel
from .mask import ConstraintMaskBuilder
from .training import model_segment_accuracy

__all__ = ["MetaKnowledgeDistiller", "dynamic_lambda"]


def dynamic_lambda(lambda0: float, acc_teacher: float, acc_student: float,
                   lt: float) -> float:
    """The adaptive distillation weight of Algorithm 2 / Eq. 18.

    Returns 0 when the teacher is no better than the student *and* the
    student is still below the knowledge threshold ``lt`` (Algorithm 2
    line 8-9); otherwise scales ``lambda0`` by
    ``10^(min(1, (acc_tea - acc_stu) * 5) - 1)`` so a much better
    teacher contributes up to ``lambda0`` and an equal teacher
    contributes ``0.1 * lambda0``.
    """
    if lambda0 < 0:
        raise ValueError("lambda0 must be non-negative")
    if acc_teacher <= acc_student and acc_student < lt:
        return 0.0
    exponent = min(1.0, (acc_teacher - acc_student) * 5.0) - 1.0
    return lambda0 * 10.0**exponent


class MetaKnowledgeDistiller:
    """Wraps a frozen teacher model for knowledge distillation.

    Parameters
    ----------
    teacher:
        The pre-trained meta-learner (an :class:`~repro.core.lte.LTEModel`
        in LightTR; any :class:`RecoveryModel` works).
    mask_builder:
        Constraint-mask builder shared with the students.
    lambda0:
        Base distillation weight (paper default 5, Figure 8a).
    lt:
        Validation-accuracy threshold of the lambda gate (paper best
        value 0.4, Figure 8b).
    """

    def __init__(self, teacher: RecoveryModel, mask_builder: ConstraintMaskBuilder,
                 lambda0: float = 5.0, lt: float = 0.4, dynamic: bool = True):
        self.teacher = teacher
        self.mask_builder = mask_builder
        self.lambda0 = lambda0
        self.lt = lt
        self.dynamic = dynamic  # False = fixed lambda0 (design ablation)
        self.teacher.eval()

    def lambda_for_client(self, student: RecoveryModel,
                          valid_set: TrajectoryDataset) -> float:
        """Algorithm 2 lines 6-12: evaluate both models, derive lambda.

        With ``dynamic=False`` the Eq. 18 schedule is bypassed and the
        fixed base weight ``lambda0`` is used (the ablation that shows
        why the adaptive schedule matters).
        """
        if not self.dynamic:
            return self.lambda0
        acc_teacher = model_segment_accuracy(self.teacher, self.mask_builder, valid_set)
        acc_student = model_segment_accuracy(student, self.mask_builder, valid_set)
        return dynamic_lambda(self.lambda0, acc_teacher, acc_student, self.lt)

    def distillation_term(self, student_output: ModelOutput, batch: Batch,
                          log_mask) -> Tensor:
        """Paper Eq. 16: ``||f_tea(T) - f_stu(T)||^2``.

        Both heads are matched: the student's segment probability
        distribution and moving ratios are pulled toward the teacher's.
        The teacher runs without gradient tracking.  ``log_mask`` is
        whatever the student trained with (dense or sparse); it is
        densified if this teacher cannot consume sparse masks.
        """
        if (not isinstance(log_mask, np.ndarray)
                and not getattr(self.teacher, "supports_sparse_mask", False)):
            log_mask = log_mask.to_dense()
        with nn.no_grad():
            teacher_out = self.teacher(batch, log_mask, teacher_forcing=True)
        prob_term = nn.mse_loss(student_output.probs(),
                                teacher_out.probs().detach())
        ratio_term = nn.mse_loss(student_output.ratios,
                                 teacher_out.ratios.detach())
        return prob_term + ratio_term
