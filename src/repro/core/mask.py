"""Constraint mask layer (paper Section IV-B2, Eq. 10-11).

For every timestep to recover, only road segments near the trajectory's
plausible position are viable.  The mask weights each candidate segment
by ``c = exp(-dist^2 / gamma)`` where ``dist`` is the distance from the
guide position (interpolated between the surrounding observed points)
to the segment, and suppresses everything else.  Combined with softmax
(Eq. 11) this both reduces training complexity and enforces
map-matched predictions.

Dense vs sparse layout
----------------------
Guide positions are quantised to a 25 m grid, so a whole neighbourhood
of points shares one mask *row*.  The builder's source of truth is a
**sparse row pool**: for every quantised key it stores just the active
segment ids and their log weights (``_sp_indices`` / ``_sp_values``
slices addressed by per-row ``_sp_starts`` / ``_sp_lens``).  Everything
else is derived from that pool on demand:

* :meth:`ConstraintMaskBuilder.build_sparse` assembles a
  :class:`SparseConstraintMask` — CSR over the ``B * T`` flattened
  batch rows (``indptr`` row offsets into flat ``indices`` /
  ``log_values`` arrays) — with one searchsorted key lookup and one
  pooled gather, never materialising ``(B, T, S)``;
* :meth:`ConstraintMaskBuilder.build` densifies pool rows lazily into a
  ``(U, S)`` row matrix and gathers the dense ``(B, T, S)`` mask from
  it (the reference representation, kept behind
  :func:`repro.nn.use_sparse_masks`);
* :meth:`ConstraintMaskBuilder.build_for` picks between the two based
  on the global sparse-mask flag and the consuming model's
  ``supports_sparse_mask``.

Segments outside the search radius carry the finite ``floor`` log
weight (:data:`_FLOOR_LOG`) in the dense representation; the sparse one
simply omits them, and the sparse-aware
:func:`repro.nn.masked_log_softmax` reconstructs the exact dense
behaviour (including the all-floor *empty-radius fallback* rows, which
get a uniform mask) without touching inactive entries.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Batch
from ..nn.backend import (
    backend_generation,
    get_backend,
    ops,
    register_kernel,
)
from ..nn.dtypes import get_compute_dtype
from ..nn.fusion import sparse_masks_enabled
from ..spatial.geometry import Point
from ..spatial.index import SegmentIndex
from ..spatial.roadnet import RoadNetwork

__all__ = ["ConstraintMaskBuilder", "SparseConstraintMask", "GAMMA_DEFAULT"]

#: The paper sets gamma = 125 (a road-network-related constant).
GAMMA_DEFAULT = 125.0

#: Log-weight assigned to segments outside the search radius.  Finite so
#: gradients stay well-defined, but small enough to never win argmax.
_FLOOR_LOG = -30.0

#: Cache quantisation step in metres: guide points within the same
#: 25 m cell share one mask row.
_QUANT = 25.0


def _gather_csr(starts: np.ndarray, lens: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
    """CSR assembly for rows stored as pool slices.

    Given each output row's ``starts`` / ``lens`` into a flat pool,
    returns the output ``indptr`` and the flat pool positions ``pos``
    such that ``pool[pos]`` concatenates the rows in order.
    """
    indptr = np.zeros(lens.size + 1, dtype=np.int64)
    ops.cumsum(lens, out=indptr[1:])
    pos = (np.arange(int(indptr[-1]), dtype=np.int64)
           + ops.repeat(starts - indptr[:-1], lens))
    return indptr, pos


class SparseConstraintMask:
    """CSR-style constraint mask over flattened ``(B * T)`` rows.

    Row ``r`` (for batch element ``b``, timestep ``t``, ``r = b * T + t``)
    has active segment ids ``indices[indptr[r]:indptr[r + 1]]`` with log
    weights ``log_values`` at the same positions; every other segment
    implicitly carries the constant ``floor`` log weight.  ``shape`` is
    the equivalent dense shape (``(B, T, S)``, or ``(B, S)`` for one
    decode step).  ``identity=True`` marks a disabled mask (dense
    equivalent: all-zero log weights) — consumers fall back to a plain
    log-softmax and the CSR arrays are empty.
    """

    __slots__ = ("shape", "indptr", "indices", "log_values", "floor", "identity")

    def __init__(self, shape: tuple[int, ...], indptr: np.ndarray,
                 indices: np.ndarray, log_values: np.ndarray,
                 floor: float = _FLOOR_LOG, identity: bool = False):
        self.shape = tuple(shape)
        self.indptr = indptr
        self.indices = indices
        self.log_values = log_values
        self.floor = floor
        self.identity = identity
        rows = self.n_rows
        if indptr.shape != (rows + 1,):
            raise ValueError(
                f"indptr shape {indptr.shape} does not match {rows} rows")
        if indices.shape != log_values.shape:
            raise ValueError("indices and log_values must have equal length")

    @classmethod
    def identity_mask(cls, shape: tuple[int, ...]) -> "SparseConstraintMask":
        """The disabled-mask representation (all-zero log weights)."""
        rows = int(np.prod(shape[:-1]))
        return cls(shape, np.zeros(rows + 1, dtype=np.int64),
                   np.empty(0, dtype=np.int64),
                   np.empty(0, dtype=get_compute_dtype()), floor=0.0,
                   identity=True)

    @property
    def n_rows(self) -> int:
        return int(np.prod(self.shape[:-1]))

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """Fraction of dense entries that are active (1.0 for identity)."""
        if self.identity:
            return 1.0
        dense_size = self.n_rows * self.shape[-1]
        return self.nnz / dense_size if dense_size else 0.0

    def step(self, t: int,
             rows: np.ndarray | None = None) -> "SparseConstraintMask":
        """The ``(B, S)`` sub-mask of decode step ``t`` of a ``(B, T, S)``
        mask (used by the autoregressive inference loops).

        ``rows`` restricts the slice to the given batch-row indices (in
        order), yielding an ``(len(rows), S)`` mask — this is how the
        :class:`~repro.serving.DecodeSession` engine slices masks over
        its compacted working set of still-active trajectories.
        """
        if len(self.shape) != 3:
            raise ValueError(f"step() needs a (B, T, S) mask, got {self.shape}")
        b, steps, s = self.shape
        if not 0 <= t < steps:
            raise IndexError(f"step {t} out of range for {steps} timesteps")
        if rows is None:
            rows = np.arange(b, dtype=np.int64)
        else:
            rows = np.asarray(rows, dtype=np.int64)
        if self.identity:
            return SparseConstraintMask.identity_mask((rows.size, s))
        flat_rows = rows * steps + t
        lens = self.indptr[flat_rows + 1] - self.indptr[flat_rows]
        indptr, pos = _gather_csr(self.indptr[flat_rows], lens)
        return SparseConstraintMask((rows.size, s), indptr, self.indices[pos],
                                    self.log_values[pos], floor=self.floor)

    @staticmethod
    def concat_rows(parts: list) -> "SparseConstraintMask":
        """Row-concatenate 2-D step masks (the live-admission join).

        Used by the continuous-batching mux to stack per-request
        ``(A_i, S)`` decode-step masks into one ``(sum A_i, S)``
        working-set mask; per-row CSR slices are preserved exactly, so
        the joined mask is row-for-row bit-identical to its parts.
        Planned step masks (:class:`_PlannedStepMask`) flatten back to a
        plain mask — consumers recompute the row expansion, which
        changes no bits.  All parts must agree on kind: identity masks
        only join identity masks, and the ``floor`` must be uniform
        (mux keys enforce both before admission).
        """
        if len(parts) == 1:
            return parts[0]
        s = int(parts[0].shape[-1])
        total = 0
        for part in parts:
            if len(part.shape) != 2 or int(part.shape[-1]) != s:
                raise ValueError(
                    f"concat_rows needs (A, {s}) step masks, got {part.shape}")
            total += int(part.shape[0])
        if all(part.identity for part in parts):
            return SparseConstraintMask.identity_mask((total, s))
        if any(part.identity for part in parts):
            raise ValueError(
                "cannot concatenate identity and non-identity step masks")
        floor = parts[0].floor
        if any(part.floor != floor for part in parts):
            raise ValueError(
                "cannot concatenate step masks with different floors")
        lens = ops.concatenate([ops.diff(part.indptr) for part in parts])
        indptr = np.zeros(total + 1, dtype=np.int64)
        ops.cumsum(lens, out=indptr[1:])
        return SparseConstraintMask(
            (total, s), indptr,
            ops.concatenate([part.indices for part in parts]),
            ops.concatenate([part.log_values for part in parts]),
            floor=floor)

    def to_dense(self) -> np.ndarray:
        """The equivalent dense log-mask array (tests / reference path).

        Densifies in the mask's own value dtype (= the compute dtype it
        was built under)."""
        if self.identity:
            return np.zeros(self.shape, dtype=self.log_values.dtype)
        s = self.shape[-1]
        out = np.full((self.n_rows, s), self.floor,
                      dtype=self.log_values.dtype)
        lens = ops.diff(self.indptr)
        nz_rows = ops.repeat(np.arange(self.n_rows), lens)
        out[nz_rows, self.indices] = self.log_values
        return out.reshape(self.shape)


class _PlannedStepMask(SparseConstraintMask):
    """One decode step sliced out of a precomputed step plan.

    Carries ``nz_rows`` (the CSR row-expansion the sparse log-softmax
    core would otherwise recompute per step); values are views into the
    plan's t-major table but are bit-identical to the fresh arrays
    :meth:`SparseConstraintMask.step` gathers.
    """

    __slots__ = ("nz_rows",)

    def __init__(self, shape, indptr, indices, log_values, floor, nz_rows):
        # Trusted fast path: plan slices are consistent by construction,
        # so the base-class validation is skipped.
        self.shape = shape
        self.indptr = indptr
        self.indices = indices
        self.log_values = log_values
        self.floor = floor
        self.identity = False
        self.nz_rows = nz_rows


class _MaskStepPlan:
    """T-major transposed CSR table over one decode working set.

    The packed decode engine slices the same ``(mask, rows)`` pair once
    per timestep; the reference kernel pays a full CSR gather each call.
    The plan performs **one** gather covering every remaining step (rows
    re-ordered t-major), after which a step slice is two ``indptr``
    offsets and four array views.  Built from ``t0`` (the step of the
    first call) so a post-compaction working set only pays for its
    remaining steps.
    """

    __slots__ = ("mask", "rows", "t0", "indptr", "indices", "log_values",
                 "nz_all", "_num_rows")

    def __init__(self, mask: SparseConstraintMask, rows: np.ndarray, t0: int):
        steps = mask.shape[1]
        a = rows.size
        span = steps - t0
        flat = (rows[None, :] * steps
                + np.arange(t0, steps, dtype=np.int64)[:, None]).ravel()
        lens = mask.indptr[flat + 1] - mask.indptr[flat]
        self.indptr, pos = _gather_csr(mask.indptr[flat], lens)
        self.indices = mask.indices[pos]
        self.log_values = mask.log_values[pos]
        self.nz_all = ops.repeat(
            ops.broadcast_to(np.arange(a, dtype=np.int64), (span, a)).ravel(),
            lens)
        self.mask = mask
        self.rows = rows
        self.t0 = t0
        self._num_rows = a

    def step(self, t: int) -> _PlannedStepMask:
        a = self._num_rows
        lo = (t - self.t0) * a
        base = int(self.indptr[lo])
        hi = int(self.indptr[lo + a])
        sub_indptr = self.indptr[lo:lo + a + 1] - base
        return _PlannedStepMask(
            (a, self.mask.shape[2]), sub_indptr, self.indices[base:hi],
            self.log_values[base:hi], self.mask.floor, self.nz_all[base:hi])


#: Plans memoised on the mask's identity and the row *contents*: the
#: working set shrinks through the same compaction sequence every time
#: the same batch is decoded, so repeat decodes (the serving shape —
#: and every timed run after the first) reuse the plans the first pass
#: built instead of re-gathering.  The strong ``mask`` reference inside
#: each plan pins the object, so a cached id cannot be reused by a
#: different mask while its entry lives.  Bounded, and cleared whenever
#: the backend generation moves.
_STEP_PLANS: dict[tuple[int, bytes], _MaskStepPlan] = {}
_STEP_PLANS_GENERATION = -1
_STEP_PLANS_CAPACITY = 64


def _mask_step_planned(mask: SparseConstraintMask, t: int,
                       rows: np.ndarray) -> SparseConstraintMask:
    """Workspace kernel ``"sparse_mask_step"``: plan-backed step slices."""
    global _STEP_PLANS_GENERATION
    generation = backend_generation()
    if generation != _STEP_PLANS_GENERATION:
        _STEP_PLANS.clear()
        _STEP_PLANS_GENERATION = generation
    key = (id(mask), rows.tobytes())
    plan = _STEP_PLANS.get(key)
    if plan is None or plan.mask is not mask or t < plan.t0:
        if len(_STEP_PLANS) >= _STEP_PLANS_CAPACITY:
            _STEP_PLANS.clear()
        plan = _MaskStepPlan(mask, rows, t)
        _STEP_PLANS[key] = plan
    return plan.step(t)


register_kernel("workspace", "sparse_mask_step", _mask_step_planned)


class ConstraintMaskBuilder:
    """Builds per-timestep log mask weights over the segment vocabulary.

    Parameters
    ----------
    network:
        Road network (defines the segment vocabulary).
    gamma:
        Distance-decay length scale of Eq. 10, in metres.  We use
        ``exp(-(dist/gamma)^2)`` with the paper's value 125, i.e. the
        weight falls to ``1/e`` at 125 m, which matches the guide-point
        interpolation error at the paper's keep ratios.
    radius:
        Search radius in metres around the guide position.  Segments
        further than this get the floor weight (paper: "we set
        omega(e, p) as 0" for far segments).
    identity:
        When true the mask is disabled (all-zero log weights); used by
        the ablation in Figure 7-style experiments.
    """

    def __init__(self, network: RoadNetwork, gamma: float = GAMMA_DEFAULT,
                 radius: float = 400.0, identity: bool = False,
                 index: SegmentIndex | None = None):
        if gamma <= 0 or radius <= 0:
            raise ValueError("gamma and radius must be positive")
        self.network = network
        self.gamma = gamma
        self.radius = radius
        self.identity = identity
        self.index = index if index is not None else SegmentIndex(network)
        # Sparse row pool — the source of truth.  Row i (the i-th key
        # ever registered) owns _sp_indices[_sp_starts[i] : + _sp_lens[i]]
        # and the matching _sp_values slice.
        self._key_to_row: dict[tuple[int, int], int] = {}
        self._sp_starts = np.empty(0, dtype=np.int64)
        self._sp_lens = np.empty(0, dtype=np.int64)
        self._sp_indices = np.empty(0, dtype=np.int64)
        self._sp_values = np.empty(0)
        self._sp_used = 0  # valid prefix length of the index/value pools
        # Lazily maintained compute-dtype mirror of the float64 value
        # pool (only materialised when the compute dtype is reduced, so
        # float32 builds gather from a float32 pool — one copy, not two).
        self._sp_values_cast: np.ndarray | None = None
        self._sp_cast_used = 0
        self._sp_cast_backend = ""
        # Sorted encoded-key index for vectorized batch lookups: once a
        # batch's keys are all known, building is pure searchsorted+gather.
        self._enc_sorted = np.empty(0, dtype=np.int64)
        self._enc_rows = np.empty(0, dtype=np.int64)
        # Dense mirrors, densified lazily from the pool: the (U, S) row
        # matrix backing `build`, and the per-point row cache backing
        # `log_mask_for_point`.  The sparse hot path never fills them.
        self._cache: dict[tuple[int, int], np.ndarray] = {}
        self._row_matrix = np.empty((0, network.num_segments))
        self._dense_rows = 0  # rows [0, _dense_rows) of _row_matrix are filled
        self._dense_backend = ""  # backend the row matrix was built under

    def __getstate__(self) -> dict:
        """Pickle only the defining knobs, never the memoised rows.

        Worker processes of the parallel round runner rebuild the
        segment index and start with empty caches — the sparse row pool
        and both dense mirrors alike: reconstruction is cheap (workers
        re-warm sparse rows via :meth:`warm`), the rows are
        deterministic functions of the network, and the caches can be
        orders of magnitude larger than the builder.
        """
        return {"network": self.network, "gamma": self.gamma,
                "radius": self.radius, "identity": self.identity}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["network"], gamma=state["gamma"],
                      radius=state["radius"], identity=state["identity"])

    def warm(self, dataset) -> int:
        """Precompute sparse mask rows for every guide point of ``dataset``.

        Fills the quantised-key sparse row pool directly from the
        examples' guide positions — peak memory is the pool (active
        entries only), never a dense ``(B, T, S)`` batch mask or even
        the ``(U, S)`` row matrix — so later epoch loops (or a freshly
        forked worker) run pure searchsorted+gather for sparse builds,
        and dense builds only pay a one-off densify of the warmed rows.
        Returns the number of cached rows.
        """
        if self.identity or len(dataset) == 0:
            return 0
        keys: set[tuple[int, int]] = set()
        for example in dataset.examples:
            quantised = ops.floor_divide(example.guide_xy, _QUANT).astype(np.int64)
            keys.update(zip(quantised[:, 0].tolist(), quantised[:, 1].tolist()))
        for key in sorted(keys):
            self._register_key(key)
        self._refresh_sorted_index()
        return len(self._key_to_row)

    def log_mask_for_point(self, x: float, y: float) -> np.ndarray:
        """Log mask weights ``log c`` over all segments for one guide point.

        Results are cached on a 25 m quantised key: guide positions from
        the same neighbourhood share masks, which makes epoch loops cheap.
        The cached row is returned read-only; copy before mutating.
        """
        if self.identity:
            return np.zeros(self.network.num_segments)
        return self._row_for_key((int(x // _QUANT), int(y // _QUANT)))

    def _register_key(self, key: tuple[int, int]) -> int:
        """Pool row index of ``key``, querying the spatial index once."""
        idx = self._key_to_row.get(key)
        if idx is not None:
            return idx
        qx = (key[0] + 0.5) * _QUANT
        qy = (key[1] + 0.5) * _QUANT
        hits = self.index.query(Point(qx, qy), self.radius)
        ids = np.array([seg.segment_id for seg, _ in hits], dtype=np.int64)
        inv_gamma_sq = 1.0 / (self.gamma * self.gamma)
        values = np.array(
            [max(_FLOOR_LOG, -(dist * dist) * inv_gamma_sq) for _, dist in hits]
        )
        if ids.size:  # store rows id-sorted: deterministic CSR layout
            order = ops.argsort(ids)
            ids = ids[order]
            values = values[order]
        idx = len(self._key_to_row)
        if idx >= self._sp_starts.size:  # grow row arrays geometrically
            capacity = max(64, 2 * self._sp_starts.size)
            self._sp_starts = np.resize(self._sp_starts, capacity)
            self._sp_lens = np.resize(self._sp_lens, capacity)
        needed = self._sp_used + ids.size
        if needed > self._sp_indices.size:  # grow pools geometrically
            capacity = max(1024, 2 * self._sp_indices.size, needed)
            grown_idx = np.empty(capacity, dtype=np.int64)
            grown_idx[: self._sp_used] = self._sp_indices[: self._sp_used]
            self._sp_indices = grown_idx
            grown_val = np.empty(capacity)
            grown_val[: self._sp_used] = self._sp_values[: self._sp_used]
            self._sp_values = grown_val
        self._sp_indices[self._sp_used:needed] = ids
        self._sp_values[self._sp_used:needed] = values
        self._sp_starts[idx] = self._sp_used
        self._sp_lens[idx] = ids.size
        self._sp_used = needed
        self._key_to_row[key] = idx
        return idx

    def _fill_dense_row(self, out: np.ndarray, idx: int) -> None:
        """Densify pool row ``idx`` into the ``(S,)`` array ``out``."""
        out.fill(_FLOOR_LOG)
        start = self._sp_starts[idx]
        stop = start + self._sp_lens[idx]
        out[self._sp_indices[start:stop]] = self._sp_values[start:stop]

    def _row_for_key(self, key: tuple[int, int]) -> np.ndarray:
        """Compute (or fetch) the read-only dense mask row of one key."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        idx = self._register_key(key)
        log_mask = np.empty(self.network.num_segments)
        self._fill_dense_row(log_mask, idx)
        log_mask.flags.writeable = False  # callers share this row
        self._cache[key] = log_mask
        return log_mask

    def _densify_rows(self) -> None:
        """Fill the dense row matrix for every pool row not yet densified.

        The matrix is kept in the active compute dtype (rows fill from
        the float64 pool with one cast per entry on assignment); when
        the compute dtype changes between builds the matrix re-densifies
        from scratch — a rare, experiment-setup-time event.
        """
        dtype = get_compute_dtype()
        backend = get_backend()
        if self._row_matrix.dtype != dtype or self._dense_backend != backend:
            self._row_matrix = np.empty((0, self.network.num_segments),
                                        dtype=dtype)
            self._dense_rows = 0
            self._dense_backend = backend
        n = len(self._key_to_row)
        if self._dense_rows >= n:
            return
        if n > self._row_matrix.shape[0]:  # grow geometrically
            capacity = max(64, 2 * self._row_matrix.shape[0], n)
            grown = np.empty((capacity, self.network.num_segments), dtype=dtype)
            grown[: self._dense_rows] = self._row_matrix[: self._dense_rows]
            self._row_matrix = grown
        for idx in range(self._dense_rows, n):
            self._fill_dense_row(self._row_matrix[idx], idx)
        self._dense_rows = n

    def _batch_rows(self, batch: Batch) -> np.ndarray:
        """Pool row index of every flattened ``(B * T)`` batch position,
        registering any keys not seen before."""
        quantised = ops.floor_divide(batch.guide_xy, _QUANT).astype(np.int64)
        kx = quantised[..., 0].reshape(-1)
        ky = quantised[..., 1].reshape(-1)
        # Injective for |k| < 2^31 (coordinates within ~5e10 m of origin).
        encoded = kx * (np.int64(1) << 32) + ky
        position, hit = self._locate(encoded)
        if not hit.all():
            # Some keys are new: compute each distinct missing key's row
            # once, refresh the sorted index, and look up again (one
            # extra pass; positions shift when the index grows).
            miss_idx = ops.flatnonzero(~hit)
            _, first = ops.unique(encoded[miss_idx], return_index=True)
            for i in miss_idx[first]:
                self._register_key((int(kx[i]), int(ky[i])))
            self._refresh_sorted_index()
            position, _ = self._locate(encoded)
        return self._enc_rows[position]

    def build(self, batch: Batch) -> np.ndarray:
        """Dense log mask for a whole batch: shape ``(B, T, num_segments)``.

        Vectorized over the unique quantised cache keys of the batch:
        each distinct key's row is computed (or fetched) once, and the
        dense ``(B, T, S)`` mask is assembled with a single fancy-index
        gather from the ``(U, S)`` row matrix instead of ``B * T``
        Python-level lookups and row copies.  This is the reference
        representation; the hot path is :meth:`build_sparse` (see
        :meth:`build_for`).
        """
        b, t = batch.guide_xy.shape[:2]
        num_segments = self.network.num_segments
        if self.identity:
            return np.zeros((b, t, num_segments), dtype=get_compute_dtype())
        rows = self._batch_rows(batch)
        self._densify_rows()
        return self._row_matrix[rows].reshape(b, t, num_segments)

    def _values_pool(self) -> np.ndarray:
        """The value pool in the active compute dtype.

        float64 compute reads the master pool directly; a reduced
        compute dtype reads a cast mirror that is re-materialised
        whenever the pool grew (or the dtype changed) since last time.
        """
        dtype = get_compute_dtype()
        if dtype == self._sp_values.dtype:
            return self._sp_values
        backend = get_backend()
        if (self._sp_values_cast is None
                or self._sp_values_cast.dtype != dtype
                or self._sp_cast_used != self._sp_used
                or self._sp_cast_backend != backend):
            self._sp_values_cast = self._sp_values[: self._sp_used].astype(dtype)
            self._sp_cast_used = self._sp_used
            self._sp_cast_backend = backend
        return self._sp_values_cast

    def build_sparse(self, batch: Batch) -> SparseConstraintMask:
        """CSR log mask for a whole batch, straight from the sparse pool.

        One searchsorted key lookup plus one pooled gather; neither the
        dense ``(B, T, S)`` mask nor the ``(U, S)`` row matrix is ever
        materialised.  Values are bit-identical to the active entries of
        :meth:`build`'s output, in the active compute dtype.
        """
        b, t = batch.guide_xy.shape[:2]
        num_segments = self.network.num_segments
        if self.identity:
            return SparseConstraintMask.identity_mask((b, t, num_segments))
        rows = self._batch_rows(batch)
        indptr, pos = _gather_csr(self._sp_starts[rows], self._sp_lens[rows])
        return SparseConstraintMask(
            (b, t, num_segments), indptr, self._sp_indices[pos],
            self._values_pool()[pos], floor=_FLOOR_LOG,
        )

    def build_for(self, batch: Batch, model=None):
        """The mask representation the consuming model should receive.

        Returns :meth:`build_sparse`'s CSR mask when the global
        :func:`repro.nn.use_sparse_masks` flag is on and ``model``
        (when given) advertises ``supports_sparse_mask``; otherwise the
        dense :meth:`build` array.
        """
        if sparse_masks_enabled() and (
                model is None or getattr(model, "supports_sparse_mask", False)):
            return self.build_sparse(batch)
        return self.build(batch)

    def _locate(self, encoded: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One searchsorted pass: ``(positions, hit_mask)`` for ``encoded``."""
        if self._enc_sorted.size == 0:
            return (np.zeros(encoded.shape, dtype=np.int64),
                    np.zeros(encoded.shape, dtype=bool))
        position = ops.minimum(ops.searchsorted(self._enc_sorted, encoded),
                              self._enc_sorted.size - 1)
        return position, self._enc_sorted[position] == encoded

    def _refresh_sorted_index(self) -> None:
        """Rebuild the sorted encoded-key arrays from the key dict."""
        if not self._key_to_row:
            self._enc_sorted = np.empty(0, dtype=np.int64)
            self._enc_rows = np.empty(0, dtype=np.int64)
            return
        keys = np.array([k[0] * (1 << 32) + k[1] for k in self._key_to_row],
                        dtype=np.int64)
        rows = np.fromiter(self._key_to_row.values(), dtype=np.int64,
                           count=len(self._key_to_row))
        order = ops.argsort(keys)
        self._enc_sorted = keys[order]
        self._enc_rows = rows[order]

    def build_reference(self, batch: Batch) -> np.ndarray:
        """Per-point reference build (the pre-vectorization path).

        Kept for equivalence tests and as the baseline leg of the
        hot-path benchmark; ``build`` produces identical values.
        """
        b, t = batch.guide_xy.shape[:2]
        out = np.empty((b, t, self.network.num_segments),
                       dtype=get_compute_dtype())
        for i in range(b):
            for j in range(t):
                out[i, j] = self.log_mask_for_point(
                    batch.guide_xy[i, j, 0], batch.guide_xy[i, j, 1]
                )
        return out

    def clear_cache(self) -> None:
        """Drop memoised masks (tests / after changing parameters)."""
        self._cache.clear()
        self._key_to_row.clear()
        self._sp_starts = np.empty(0, dtype=np.int64)
        self._sp_lens = np.empty(0, dtype=np.int64)
        self._sp_indices = np.empty(0, dtype=np.int64)
        self._sp_values = np.empty(0)
        self._sp_used = 0
        self._sp_values_cast = None
        self._sp_cast_used = 0
        self._sp_cast_backend = ""
        self._row_matrix = np.empty((0, self.network.num_segments))
        self._dense_rows = 0
        self._dense_backend = ""
        self._enc_sorted = np.empty(0, dtype=np.int64)
        self._enc_rows = np.empty(0, dtype=np.int64)
