"""Constraint mask layer (paper Section IV-B2, Eq. 10-11).

For every timestep to recover, only road segments near the trajectory's
plausible position are viable.  The mask weights each candidate segment
by ``c = exp(-dist^2 / gamma)`` where ``dist`` is the distance from the
guide position (interpolated between the surrounding observed points)
to the segment, and suppresses everything else.  Combined with softmax
(Eq. 11) this both reduces training complexity and enforces
map-matched predictions.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Batch
from ..spatial.geometry import Point
from ..spatial.index import SegmentIndex
from ..spatial.roadnet import RoadNetwork

__all__ = ["ConstraintMaskBuilder", "GAMMA_DEFAULT"]

#: The paper sets gamma = 125 (a road-network-related constant).
GAMMA_DEFAULT = 125.0

#: Log-weight assigned to segments outside the search radius.  Finite so
#: gradients stay well-defined, but small enough to never win argmax.
_FLOOR_LOG = -30.0

#: Cache quantisation step in metres: guide points within the same
#: 25 m cell share one mask row.
_QUANT = 25.0


class ConstraintMaskBuilder:
    """Builds per-timestep log mask weights over the segment vocabulary.

    Parameters
    ----------
    network:
        Road network (defines the segment vocabulary).
    gamma:
        Distance-decay length scale of Eq. 10, in metres.  We use
        ``exp(-(dist/gamma)^2)`` with the paper's value 125, i.e. the
        weight falls to ``1/e`` at 125 m, which matches the guide-point
        interpolation error at the paper's keep ratios.
    radius:
        Search radius in metres around the guide position.  Segments
        further than this get the floor weight (paper: "we set
        omega(e, p) as 0" for far segments).
    identity:
        When true the mask is disabled (all-zero log weights); used by
        the ablation in Figure 7-style experiments.
    """

    def __init__(self, network: RoadNetwork, gamma: float = GAMMA_DEFAULT,
                 radius: float = 400.0, identity: bool = False,
                 index: SegmentIndex | None = None):
        if gamma <= 0 or radius <= 0:
            raise ValueError("gamma and radius must be positive")
        self.network = network
        self.gamma = gamma
        self.radius = radius
        self.identity = identity
        self.index = index if index is not None else SegmentIndex(network)
        self._cache: dict[tuple[int, int], np.ndarray] = {}
        # Row-matrix mirror of the cache for batched gathers: row i of
        # ``_row_matrix`` is the mask of the key at ``_key_to_row[key]``.
        self._key_to_row: dict[tuple[int, int], int] = {}
        self._row_matrix = np.empty((0, network.num_segments))
        # Sorted encoded-key index for vectorized batch lookups: once a
        # batch's keys are all known, `build` is pure searchsorted+gather.
        self._enc_sorted = np.empty(0, dtype=np.int64)
        self._enc_rows = np.empty(0, dtype=np.int64)

    def __getstate__(self) -> dict:
        """Pickle only the defining knobs, never the memoised rows.

        Worker processes of the parallel round runner rebuild the
        segment index and start with empty caches: reconstruction is
        cheap, the rows are deterministic functions of the network, and
        the caches can be orders of magnitude larger than the builder.
        """
        return {"network": self.network, "gamma": self.gamma,
                "radius": self.radius, "identity": self.identity}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["network"], gamma=state["gamma"],
                      radius=state["radius"], identity=state["identity"])

    def warm(self, dataset) -> int:
        """Precompute mask rows for every guide point of ``dataset``.

        Fills the quantised-key cache directly from the examples' guide
        positions — peak memory is the ``(U, S)`` row matrix, never a
        dense ``(B, T, S)`` batch mask — so later epoch loops (or a
        freshly forked worker) run pure searchsorted+gather.  Returns
        the number of cached rows.
        """
        if self.identity or len(dataset) == 0:
            return 0
        keys: set[tuple[int, int]] = set()
        for example in dataset.examples:
            quantised = np.floor_divide(example.guide_xy, _QUANT).astype(np.int64)
            keys.update(zip(quantised[:, 0].tolist(), quantised[:, 1].tolist()))
        for key in sorted(keys):
            self._row_index_for_key(key)
        self._refresh_sorted_index()
        return len(self._key_to_row)

    def log_mask_for_point(self, x: float, y: float) -> np.ndarray:
        """Log mask weights ``log c`` over all segments for one guide point.

        Results are cached on a 25 m quantised key: guide positions from
        the same neighbourhood share masks, which makes epoch loops cheap.
        The cached row is returned read-only; copy before mutating.
        """
        if self.identity:
            return np.zeros(self.network.num_segments)
        return self._row_for_key((int(x // _QUANT), int(y // _QUANT)))

    def _row_for_key(self, key: tuple[int, int]) -> np.ndarray:
        """Compute (or fetch) the read-only mask row of one quantised key."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        qx = (key[0] + 0.5) * _QUANT
        qy = (key[1] + 0.5) * _QUANT
        log_mask = np.full(self.network.num_segments, _FLOOR_LOG)
        for seg, dist in self.index.query(Point(qx, qy), self.radius):
            log_mask[seg.segment_id] = max(
                _FLOOR_LOG, -(dist * dist) / (self.gamma * self.gamma)
            )
        log_mask.flags.writeable = False  # callers share this row
        self._cache[key] = log_mask
        return log_mask

    def _row_index_for_key(self, key: tuple[int, int]) -> int:
        """Index of ``key``'s row in the gather matrix (computing it once)."""
        idx = self._key_to_row.get(key)
        if idx is None:
            row = self._row_for_key(key)
            idx = len(self._key_to_row)
            if idx >= self._row_matrix.shape[0]:  # grow geometrically
                capacity = max(64, 2 * self._row_matrix.shape[0])
                grown = np.empty((capacity, self.network.num_segments))
                grown[:idx] = self._row_matrix[:idx]
                self._row_matrix = grown
            self._row_matrix[idx] = row
            self._key_to_row[key] = idx
        return idx

    def build(self, batch: Batch) -> np.ndarray:
        """Log mask weights for a whole batch: shape ``(B, T, num_segments)``.

        Vectorized over the unique quantised cache keys of the batch:
        each distinct key's row is computed (or fetched) once, and the
        dense ``(B, T, S)`` mask is assembled with a single fancy-index
        gather from the ``(U, S)`` row matrix instead of ``B * T``
        Python-level lookups and row copies.
        """
        b, t = batch.guide_xy.shape[:2]
        num_segments = self.network.num_segments
        if self.identity:
            return np.zeros((b, t, num_segments))
        quantised = np.floor_divide(batch.guide_xy, _QUANT).astype(np.int64)
        kx = quantised[..., 0].reshape(-1)
        ky = quantised[..., 1].reshape(-1)
        # Injective for |k| < 2^31 (coordinates within ~5e10 m of origin).
        encoded = kx * (np.int64(1) << 32) + ky
        position, hit = self._locate(encoded)
        if not hit.all():
            # Some keys are new: compute each distinct missing key's row
            # once, refresh the sorted index, and look up again (one
            # extra pass; positions shift when the index grows).
            miss_idx = np.flatnonzero(~hit)
            _, first = np.unique(encoded[miss_idx], return_index=True)
            for i in miss_idx[first]:
                self._row_index_for_key((int(kx[i]), int(ky[i])))
            self._refresh_sorted_index()
            position, _ = self._locate(encoded)
        return self._row_matrix[self._enc_rows[position]].reshape(
            b, t, num_segments)

    def _locate(self, encoded: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One searchsorted pass: ``(positions, hit_mask)`` for ``encoded``."""
        if self._enc_sorted.size == 0:
            return (np.zeros(encoded.shape, dtype=np.int64),
                    np.zeros(encoded.shape, dtype=bool))
        position = np.minimum(np.searchsorted(self._enc_sorted, encoded),
                              self._enc_sorted.size - 1)
        return position, self._enc_sorted[position] == encoded

    def _refresh_sorted_index(self) -> None:
        """Rebuild the sorted encoded-key arrays from the key dict."""
        if not self._key_to_row:
            self._enc_sorted = np.empty(0, dtype=np.int64)
            self._enc_rows = np.empty(0, dtype=np.int64)
            return
        keys = np.array([k[0] * (1 << 32) + k[1] for k in self._key_to_row],
                        dtype=np.int64)
        rows = np.fromiter(self._key_to_row.values(), dtype=np.int64,
                           count=len(self._key_to_row))
        order = np.argsort(keys)
        self._enc_sorted = keys[order]
        self._enc_rows = rows[order]

    def build_reference(self, batch: Batch) -> np.ndarray:
        """Per-point reference build (the pre-vectorization path).

        Kept for equivalence tests and as the baseline leg of the
        hot-path benchmark; ``build`` produces identical values.
        """
        b, t = batch.guide_xy.shape[:2]
        out = np.empty((b, t, self.network.num_segments))
        for i in range(b):
            for j in range(t):
                out[i, j] = self.log_mask_for_point(
                    batch.guide_xy[i, j, 0], batch.guide_xy[i, j, 1]
                )
        return out

    def clear_cache(self) -> None:
        """Drop memoised masks (tests / after changing parameters)."""
        self._cache.clear()
        self._key_to_row.clear()
        self._row_matrix = np.empty((0, self.network.num_segments))
        self._enc_sorted = np.empty(0, dtype=np.int64)
        self._enc_rows = np.empty(0, dtype=np.int64)
