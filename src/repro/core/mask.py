"""Constraint mask layer (paper Section IV-B2, Eq. 10-11).

For every timestep to recover, only road segments near the trajectory's
plausible position are viable.  The mask weights each candidate segment
by ``c = exp(-dist^2 / gamma)`` where ``dist`` is the distance from the
guide position (interpolated between the surrounding observed points)
to the segment, and suppresses everything else.  Combined with softmax
(Eq. 11) this both reduces training complexity and enforces
map-matched predictions.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Batch
from ..spatial.geometry import Point
from ..spatial.index import SegmentIndex
from ..spatial.roadnet import RoadNetwork

__all__ = ["ConstraintMaskBuilder", "GAMMA_DEFAULT"]

#: The paper sets gamma = 125 (a road-network-related constant).
GAMMA_DEFAULT = 125.0

#: Log-weight assigned to segments outside the search radius.  Finite so
#: gradients stay well-defined, but small enough to never win argmax.
_FLOOR_LOG = -30.0


class ConstraintMaskBuilder:
    """Builds per-timestep log mask weights over the segment vocabulary.

    Parameters
    ----------
    network:
        Road network (defines the segment vocabulary).
    gamma:
        Distance-decay length scale of Eq. 10, in metres.  We use
        ``exp(-(dist/gamma)^2)`` with the paper's value 125, i.e. the
        weight falls to ``1/e`` at 125 m, which matches the guide-point
        interpolation error at the paper's keep ratios.
    radius:
        Search radius in metres around the guide position.  Segments
        further than this get the floor weight (paper: "we set
        omega(e, p) as 0" for far segments).
    identity:
        When true the mask is disabled (all-zero log weights); used by
        the ablation in Figure 7-style experiments.
    """

    def __init__(self, network: RoadNetwork, gamma: float = GAMMA_DEFAULT,
                 radius: float = 400.0, identity: bool = False,
                 index: SegmentIndex | None = None):
        if gamma <= 0 or radius <= 0:
            raise ValueError("gamma and radius must be positive")
        self.network = network
        self.gamma = gamma
        self.radius = radius
        self.identity = identity
        self.index = index if index is not None else SegmentIndex(network)
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    def log_mask_for_point(self, x: float, y: float) -> np.ndarray:
        """Log mask weights ``log c`` over all segments for one guide point.

        Results are cached on a 25 m quantised key: guide positions from
        the same neighbourhood share masks, which makes epoch loops cheap.
        """
        num_segments = self.network.num_segments
        if self.identity:
            return np.zeros(num_segments)
        key = (int(x // 25.0), int(y // 25.0))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        qx = (key[0] + 0.5) * 25.0
        qy = (key[1] + 0.5) * 25.0
        log_mask = np.full(num_segments, _FLOOR_LOG)
        for seg, dist in self.index.query(Point(qx, qy), self.radius):
            log_mask[seg.segment_id] = max(
                _FLOOR_LOG, -(dist * dist) / (self.gamma * self.gamma)
            )
        self._cache[key] = log_mask
        return log_mask

    def build(self, batch: Batch) -> np.ndarray:
        """Log mask weights for a whole batch: shape ``(B, T, num_segments)``."""
        b, t = batch.guide_xy.shape[:2]
        out = np.empty((b, t, self.network.num_segments))
        for i in range(b):
            for j in range(t):
                out[i, j] = self.log_mask_for_point(
                    batch.guide_xy[i, j, 0], batch.guide_xy[i, j, 1]
                )
        return out

    def clear_cache(self) -> None:
        """Drop memoised masks (tests / after changing parameters)."""
        self._cache.clear()
